/root/repo/target/release/examples/desktop_grid-27753fbe2a6ed554.d: examples/desktop_grid.rs

/root/repo/target/release/examples/desktop_grid-27753fbe2a6ed554: examples/desktop_grid.rs

examples/desktop_grid.rs:
