/root/repo/target/release/examples/failure_recovery-9ac0cc44c1847bb1.d: examples/failure_recovery.rs

/root/repo/target/release/examples/failure_recovery-9ac0cc44c1847bb1: examples/failure_recovery.rs

examples/failure_recovery.rs:
