/root/repo/target/release/examples/incremental_checkpointing-10a60261fb0d5d82.d: examples/incremental_checkpointing.rs

/root/repo/target/release/examples/incremental_checkpointing-10a60261fb0d5d82: examples/incremental_checkpointing.rs

examples/incremental_checkpointing.rs:
