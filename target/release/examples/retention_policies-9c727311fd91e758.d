/root/repo/target/release/examples/retention_policies-9c727311fd91e758.d: examples/retention_policies.rs

/root/repo/target/release/examples/retention_policies-9c727311fd91e758: examples/retention_policies.rs

examples/retention_policies.rs:
