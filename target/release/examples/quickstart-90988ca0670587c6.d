/root/repo/target/release/examples/quickstart-90988ca0670587c6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-90988ca0670587c6: examples/quickstart.rs

examples/quickstart.rs:
