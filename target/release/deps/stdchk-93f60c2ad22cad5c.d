/root/repo/target/release/deps/stdchk-93f60c2ad22cad5c.d: src/lib.rs

/root/repo/target/release/deps/libstdchk-93f60c2ad22cad5c.rlib: src/lib.rs

/root/repo/target/release/deps/libstdchk-93f60c2ad22cad5c.rmeta: src/lib.rs

src/lib.rs:
