/root/repo/target/release/deps/stdchk_chunker-1434ffc3cf0ccf8f.d: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

/root/repo/target/release/deps/libstdchk_chunker-1434ffc3cf0ccf8f.rlib: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

/root/repo/target/release/deps/libstdchk_chunker-1434ffc3cf0ccf8f.rmeta: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

crates/chunker/src/lib.rs:
crates/chunker/src/cbch.rs:
crates/chunker/src/fsch.rs:
crates/chunker/src/similarity.rs:
crates/chunker/src/stats.rs:
