/root/repo/target/release/deps/stdchk_workloads-b07fdaf1b7c335ed.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/release/deps/libstdchk_workloads-b07fdaf1b7c335ed.rlib: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/release/deps/libstdchk_workloads-b07fdaf1b7c335ed.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
