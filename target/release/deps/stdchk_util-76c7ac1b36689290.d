/root/repo/target/release/deps/stdchk_util-76c7ac1b36689290.d: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

/root/repo/target/release/deps/libstdchk_util-76c7ac1b36689290.rlib: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

/root/repo/target/release/deps/libstdchk_util-76c7ac1b36689290.rmeta: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bytesize.rs:
crates/util/src/rate.rs:
crates/util/src/rolling.rs:
crates/util/src/sha256.rs:
crates/util/src/time.rs:
