/root/repo/target/release/deps/stdchk_fs-1c2dbce84090d550.d: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/release/deps/libstdchk_fs-1c2dbce84090d550.rlib: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/release/deps/libstdchk_fs-1c2dbce84090d550.rmeta: crates/fs/src/lib.rs crates/fs/src/naming.rs

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
