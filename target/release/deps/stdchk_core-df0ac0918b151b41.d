/root/repo/target/release/deps/stdchk_core-df0ac0918b151b41.d: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

/root/repo/target/release/deps/libstdchk_core-df0ac0918b151b41.rlib: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

/root/repo/target/release/deps/libstdchk_core-df0ac0918b151b41.rmeta: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

crates/core/src/lib.rs:
crates/core/src/benefactor.rs:
crates/core/src/config.rs:
crates/core/src/manager/mod.rs:
crates/core/src/manager/maintain.rs:
crates/core/src/manager/replicate.rs:
crates/core/src/manager/write.rs:
crates/core/src/node.rs:
crates/core/src/payload.rs:
crates/core/src/session/mod.rs:
crates/core/src/session/read.rs:
crates/core/src/session/write.rs:
