/root/repo/target/release/deps/stdchk_sim-1e8b7eb692763d15.d: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libstdchk_sim-1e8b7eb692763d15.rlib: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libstdchk_sim-1e8b7eb692763d15.rmeta: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/baselines.rs:
crates/sim/src/cluster.rs:
crates/sim/src/flownet.rs:
crates/sim/src/metrics.rs:
