/root/repo/target/release/deps/stdchk_net-c065804a15220a0b.d: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/release/deps/libstdchk_net-c065804a15220a0b.rlib: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/release/deps/libstdchk_net-c065804a15220a0b.rmeta: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

crates/net/src/lib.rs:
crates/net/src/benefactor_server.rs:
crates/net/src/client.rs:
crates/net/src/conn.rs:
crates/net/src/driver.rs:
crates/net/src/manager_server.rs:
crates/net/src/store.rs:
