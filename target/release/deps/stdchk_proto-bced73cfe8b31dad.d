/root/repo/target/release/deps/stdchk_proto-bced73cfe8b31dad.d: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

/root/repo/target/release/deps/libstdchk_proto-bced73cfe8b31dad.rlib: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

/root/repo/target/release/deps/libstdchk_proto-bced73cfe8b31dad.rmeta: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

crates/proto/src/lib.rs:
crates/proto/src/chunkmap.rs:
crates/proto/src/codec.rs:
crates/proto/src/error.rs:
crates/proto/src/frame.rs:
crates/proto/src/ids.rs:
crates/proto/src/msg.rs:
crates/proto/src/policy.rs:
