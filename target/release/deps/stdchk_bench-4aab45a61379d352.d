/root/repo/target/release/deps/stdchk_bench-4aab45a61379d352.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstdchk_bench-4aab45a61379d352.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstdchk_bench-4aab45a61379d352.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
