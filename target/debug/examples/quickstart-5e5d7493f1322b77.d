/root/repo/target/debug/examples/quickstart-5e5d7493f1322b77.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5e5d7493f1322b77: examples/quickstart.rs

examples/quickstart.rs:
