/root/repo/target/debug/examples/quickstart-e8148e8aeec28150.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e8148e8aeec28150.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
