/root/repo/target/debug/examples/failure_recovery-100dd2c8e37d5a40.d: examples/failure_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_recovery-100dd2c8e37d5a40.rmeta: examples/failure_recovery.rs Cargo.toml

examples/failure_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
