/root/repo/target/debug/examples/retention_policies-8a6950350345efbb.d: examples/retention_policies.rs

/root/repo/target/debug/examples/retention_policies-8a6950350345efbb: examples/retention_policies.rs

examples/retention_policies.rs:
