/root/repo/target/debug/examples/retention_policies-a8945b1c82b7315b.d: examples/retention_policies.rs Cargo.toml

/root/repo/target/debug/examples/libretention_policies-a8945b1c82b7315b.rmeta: examples/retention_policies.rs Cargo.toml

examples/retention_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
