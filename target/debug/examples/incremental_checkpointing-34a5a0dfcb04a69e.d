/root/repo/target/debug/examples/incremental_checkpointing-34a5a0dfcb04a69e.d: examples/incremental_checkpointing.rs

/root/repo/target/debug/examples/incremental_checkpointing-34a5a0dfcb04a69e: examples/incremental_checkpointing.rs

examples/incremental_checkpointing.rs:
