/root/repo/target/debug/examples/desktop_grid-5cd37b7af0365733.d: examples/desktop_grid.rs Cargo.toml

/root/repo/target/debug/examples/libdesktop_grid-5cd37b7af0365733.rmeta: examples/desktop_grid.rs Cargo.toml

examples/desktop_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
