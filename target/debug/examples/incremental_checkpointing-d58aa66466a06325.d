/root/repo/target/debug/examples/incremental_checkpointing-d58aa66466a06325.d: examples/incremental_checkpointing.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_checkpointing-d58aa66466a06325.rmeta: examples/incremental_checkpointing.rs Cargo.toml

examples/incremental_checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
