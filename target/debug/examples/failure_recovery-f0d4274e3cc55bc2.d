/root/repo/target/debug/examples/failure_recovery-f0d4274e3cc55bc2.d: examples/failure_recovery.rs

/root/repo/target/debug/examples/failure_recovery-f0d4274e3cc55bc2: examples/failure_recovery.rs

examples/failure_recovery.rs:
