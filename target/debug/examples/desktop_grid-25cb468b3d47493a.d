/root/repo/target/debug/examples/desktop_grid-25cb468b3d47493a.d: examples/desktop_grid.rs

/root/repo/target/debug/examples/desktop_grid-25cb468b3d47493a: examples/desktop_grid.rs

examples/desktop_grid.rs:
