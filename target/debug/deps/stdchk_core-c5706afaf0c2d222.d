/root/repo/target/debug/deps/stdchk_core-c5706afaf0c2d222.d: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

/root/repo/target/debug/deps/libstdchk_core-c5706afaf0c2d222.rlib: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

/root/repo/target/debug/deps/libstdchk_core-c5706afaf0c2d222.rmeta: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs

crates/core/src/lib.rs:
crates/core/src/benefactor.rs:
crates/core/src/config.rs:
crates/core/src/manager/mod.rs:
crates/core/src/manager/maintain.rs:
crates/core/src/manager/replicate.rs:
crates/core/src/manager/write.rs:
crates/core/src/node.rs:
crates/core/src/payload.rs:
crates/core/src/session/mod.rs:
crates/core/src/session/read.rs:
crates/core/src/session/write.rs:
