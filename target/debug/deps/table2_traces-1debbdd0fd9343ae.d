/root/repo/target/debug/deps/table2_traces-1debbdd0fd9343ae.d: crates/bench/benches/table2_traces.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_traces-1debbdd0fd9343ae.rmeta: crates/bench/benches/table2_traces.rs Cargo.toml

crates/bench/benches/table2_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
