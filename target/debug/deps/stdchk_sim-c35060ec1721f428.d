/root/repo/target/debug/deps/stdchk_sim-c35060ec1721f428.d: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_sim-c35060ec1721f428.rmeta: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/baselines.rs:
crates/sim/src/cluster.rs:
crates/sim/src/flownet.rs:
crates/sim/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
