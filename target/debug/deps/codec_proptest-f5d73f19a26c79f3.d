/root/repo/target/debug/deps/codec_proptest-f5d73f19a26c79f3.d: crates/proto/tests/codec_proptest.rs

/root/repo/target/debug/deps/codec_proptest-f5d73f19a26c79f3: crates/proto/tests/codec_proptest.rs

crates/proto/tests/codec_proptest.rs:
