/root/repo/target/debug/deps/table1_fuse_overhead-800b61fe7a1aed74.d: crates/bench/benches/table1_fuse_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_fuse_overhead-800b61fe7a1aed74.rmeta: crates/bench/benches/table1_fuse_overhead.rs Cargo.toml

crates/bench/benches/table1_fuse_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
