/root/repo/target/debug/deps/stdchk_chunker-6352be31471be4e3.d: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

/root/repo/target/debug/deps/stdchk_chunker-6352be31471be4e3: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

crates/chunker/src/lib.rs:
crates/chunker/src/cbch.rs:
crates/chunker/src/fsch.rs:
crates/chunker/src/similarity.rs:
crates/chunker/src/stats.rs:
