/root/repo/target/debug/deps/table5_blast_e2e-0cbb90b6fb56de4c.d: crates/bench/benches/table5_blast_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_blast_e2e-0cbb90b6fb56de4c.rmeta: crates/bench/benches/table5_blast_e2e.rs Cargo.toml

crates/bench/benches/table5_blast_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
