/root/repo/target/debug/deps/net_cluster-f1aaabd3737dbd95.d: crates/net/tests/net_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libnet_cluster-f1aaabd3737dbd95.rmeta: crates/net/tests/net_cluster.rs Cargo.toml

crates/net/tests/net_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
