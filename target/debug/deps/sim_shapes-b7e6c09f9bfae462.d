/root/repo/target/debug/deps/sim_shapes-b7e6c09f9bfae462.d: crates/sim/tests/sim_shapes.rs

/root/repo/target/debug/deps/sim_shapes-b7e6c09f9bfae462: crates/sim/tests/sim_shapes.rs

crates/sim/tests/sim_shapes.rs:
