/root/repo/target/debug/deps/full_stack-f1fecd33d06735e5.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-f1fecd33d06735e5: tests/full_stack.rs

tests/full_stack.rs:
