/root/repo/target/debug/deps/stdchk_workloads-18a3830e48feb46c.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_workloads-18a3830e48feb46c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
