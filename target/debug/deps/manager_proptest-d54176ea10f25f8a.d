/root/repo/target/debug/deps/manager_proptest-d54176ea10f25f8a.d: crates/core/tests/manager_proptest.rs

/root/repo/target/debug/deps/manager_proptest-d54176ea10f25f8a: crates/core/tests/manager_proptest.rs

crates/core/tests/manager_proptest.rs:
