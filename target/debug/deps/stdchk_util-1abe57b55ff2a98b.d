/root/repo/target/debug/deps/stdchk_util-1abe57b55ff2a98b.d: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_util-1abe57b55ff2a98b.rmeta: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/bytesize.rs:
crates/util/src/rate.rs:
crates/util/src/rolling.rs:
crates/util/src/sha256.rs:
crates/util/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
