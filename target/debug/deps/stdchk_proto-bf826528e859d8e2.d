/root/repo/target/debug/deps/stdchk_proto-bf826528e859d8e2.d: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_proto-bf826528e859d8e2.rmeta: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/chunkmap.rs:
crates/proto/src/codec.rs:
crates/proto/src/error.rs:
crates/proto/src/frame.rs:
crates/proto/src/ids.rs:
crates/proto/src/msg.rs:
crates/proto/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
