/root/repo/target/debug/deps/stdchk-a554702101dff52d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk-a554702101dff52d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
