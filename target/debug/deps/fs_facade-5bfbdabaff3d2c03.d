/root/repo/target/debug/deps/fs_facade-5bfbdabaff3d2c03.d: crates/fs/tests/fs_facade.rs

/root/repo/target/debug/deps/fs_facade-5bfbdabaff3d2c03: crates/fs/tests/fs_facade.rs

crates/fs/tests/fs_facade.rs:
