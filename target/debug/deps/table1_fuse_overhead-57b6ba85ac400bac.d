/root/repo/target/debug/deps/table1_fuse_overhead-57b6ba85ac400bac.d: crates/bench/benches/table1_fuse_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_fuse_overhead-57b6ba85ac400bac.rmeta: crates/bench/benches/table1_fuse_overhead.rs Cargo.toml

crates/bench/benches/table1_fuse_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
