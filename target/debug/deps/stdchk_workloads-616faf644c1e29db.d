/root/repo/target/debug/deps/stdchk_workloads-616faf644c1e29db.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_workloads-616faf644c1e29db.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
