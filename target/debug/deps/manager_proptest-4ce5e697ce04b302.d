/root/repo/target/debug/deps/manager_proptest-4ce5e697ce04b302.d: crates/core/tests/manager_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libmanager_proptest-4ce5e697ce04b302.rmeta: crates/core/tests/manager_proptest.rs Cargo.toml

crates/core/tests/manager_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
