/root/repo/target/debug/deps/stdchk_fs-1d5335b763c8be86.d: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/debug/deps/libstdchk_fs-1d5335b763c8be86.rlib: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/debug/deps/libstdchk_fs-1d5335b763c8be86.rmeta: crates/fs/src/lib.rs crates/fs/src/naming.rs

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
