/root/repo/target/debug/deps/stdchk_util-6d67fa4dc6f87804.d: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libstdchk_util-6d67fa4dc6f87804.rmeta: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bytesize.rs:
crates/util/src/rate.rs:
crates/util/src/rolling.rs:
crates/util/src/sha256.rs:
crates/util/src/time.rs:
