/root/repo/target/debug/deps/stdchk_fs-3fa4066cc452504e.d: crates/fs/src/lib.rs crates/fs/src/naming.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_fs-3fa4066cc452504e.rmeta: crates/fs/src/lib.rs crates/fs/src/naming.rs Cargo.toml

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
