/root/repo/target/debug/deps/ablation_write_semantics-33759fe2c1d0c750.d: crates/bench/benches/ablation_write_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libablation_write_semantics-33759fe2c1d0c750.rmeta: crates/bench/benches/ablation_write_semantics.rs Cargo.toml

crates/bench/benches/ablation_write_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
