/root/repo/target/debug/deps/ablation_write_semantics-fce91a9761f9ab23.d: crates/bench/benches/ablation_write_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libablation_write_semantics-fce91a9761f9ab23.rmeta: crates/bench/benches/ablation_write_semantics.rs Cargo.toml

crates/bench/benches/ablation_write_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
