/root/repo/target/debug/deps/table5_blast_e2e-6338790d625711c8.d: crates/bench/benches/table5_blast_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_blast_e2e-6338790d625711c8.rmeta: crates/bench/benches/table5_blast_e2e.rs Cargo.toml

crates/bench/benches/table5_blast_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
