/root/repo/target/debug/deps/stdchk_chunker-55c8c22d139acd36.d: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_chunker-55c8c22d139acd36.rmeta: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs Cargo.toml

crates/chunker/src/lib.rs:
crates/chunker/src/cbch.rs:
crates/chunker/src/fsch.rs:
crates/chunker/src/similarity.rs:
crates/chunker/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
