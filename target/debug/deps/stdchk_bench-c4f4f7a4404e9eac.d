/root/repo/target/debug/deps/stdchk_bench-c4f4f7a4404e9eac.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_bench-c4f4f7a4404e9eac.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
