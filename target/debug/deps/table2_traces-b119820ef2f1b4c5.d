/root/repo/target/debug/deps/table2_traces-b119820ef2f1b4c5.d: crates/bench/benches/table2_traces.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_traces-b119820ef2f1b4c5.rmeta: crates/bench/benches/table2_traces.rs Cargo.toml

crates/bench/benches/table2_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
