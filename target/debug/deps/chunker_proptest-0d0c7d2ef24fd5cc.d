/root/repo/target/debug/deps/chunker_proptest-0d0c7d2ef24fd5cc.d: crates/chunker/tests/chunker_proptest.rs

/root/repo/target/debug/deps/chunker_proptest-0d0c7d2ef24fd5cc: crates/chunker/tests/chunker_proptest.rs

crates/chunker/tests/chunker_proptest.rs:
