/root/repo/target/debug/deps/fs_facade-1008e9e894f7ee7a.d: crates/fs/tests/fs_facade.rs Cargo.toml

/root/repo/target/debug/deps/libfs_facade-1008e9e894f7ee7a.rmeta: crates/fs/tests/fs_facade.rs Cargo.toml

crates/fs/tests/fs_facade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
