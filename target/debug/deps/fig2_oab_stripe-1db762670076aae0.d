/root/repo/target/debug/deps/fig2_oab_stripe-1db762670076aae0.d: crates/bench/benches/fig2_oab_stripe.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_oab_stripe-1db762670076aae0.rmeta: crates/bench/benches/fig2_oab_stripe.rs Cargo.toml

crates/bench/benches/fig2_oab_stripe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
