/root/repo/target/debug/deps/fig5_sw_asb_buffers-27c16f67b2e87a06.d: crates/bench/benches/fig5_sw_asb_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sw_asb_buffers-27c16f67b2e87a06.rmeta: crates/bench/benches/fig5_sw_asb_buffers.rs Cargo.toml

crates/bench/benches/fig5_sw_asb_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
