/root/repo/target/debug/deps/fig8_scalability-774d4d3f53ddfe44.d: crates/bench/benches/fig8_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_scalability-774d4d3f53ddfe44.rmeta: crates/bench/benches/fig8_scalability.rs Cargo.toml

crates/bench/benches/fig8_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
