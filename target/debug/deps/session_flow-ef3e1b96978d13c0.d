/root/repo/target/debug/deps/session_flow-ef3e1b96978d13c0.d: crates/core/tests/session_flow.rs Cargo.toml

/root/repo/target/debug/deps/libsession_flow-ef3e1b96978d13c0.rmeta: crates/core/tests/session_flow.rs Cargo.toml

crates/core/tests/session_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
