/root/repo/target/debug/deps/sim_shapes-497051912d84bf8e.d: crates/sim/tests/sim_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libsim_shapes-497051912d84bf8e.rmeta: crates/sim/tests/sim_shapes.rs Cargo.toml

crates/sim/tests/sim_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
