/root/repo/target/debug/deps/fig5_sw_asb_buffers-b2db47cdbb345d31.d: crates/bench/benches/fig5_sw_asb_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sw_asb_buffers-b2db47cdbb345d31.rmeta: crates/bench/benches/fig5_sw_asb_buffers.rs Cargo.toml

crates/bench/benches/fig5_sw_asb_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
