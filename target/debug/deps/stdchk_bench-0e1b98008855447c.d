/root/repo/target/debug/deps/stdchk_bench-0e1b98008855447c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_bench-0e1b98008855447c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
