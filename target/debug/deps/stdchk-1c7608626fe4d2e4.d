/root/repo/target/debug/deps/stdchk-1c7608626fe4d2e4.d: src/lib.rs

/root/repo/target/debug/deps/libstdchk-1c7608626fe4d2e4.rlib: src/lib.rs

/root/repo/target/debug/deps/libstdchk-1c7608626fe4d2e4.rmeta: src/lib.rs

src/lib.rs:
