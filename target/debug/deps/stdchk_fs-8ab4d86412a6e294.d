/root/repo/target/debug/deps/stdchk_fs-8ab4d86412a6e294.d: crates/fs/src/lib.rs crates/fs/src/naming.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_fs-8ab4d86412a6e294.rmeta: crates/fs/src/lib.rs crates/fs/src/naming.rs Cargo.toml

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
