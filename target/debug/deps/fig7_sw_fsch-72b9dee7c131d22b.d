/root/repo/target/debug/deps/fig7_sw_fsch-72b9dee7c131d22b.d: crates/bench/benches/fig7_sw_fsch.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_sw_fsch-72b9dee7c131d22b.rmeta: crates/bench/benches/fig7_sw_fsch.rs Cargo.toml

crates/bench/benches/fig7_sw_fsch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
