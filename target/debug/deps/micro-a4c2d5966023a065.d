/root/repo/target/debug/deps/micro-a4c2d5966023a065.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-a4c2d5966023a065.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
