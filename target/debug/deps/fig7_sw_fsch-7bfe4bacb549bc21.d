/root/repo/target/debug/deps/fig7_sw_fsch-7bfe4bacb549bc21.d: crates/bench/benches/fig7_sw_fsch.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_sw_fsch-7bfe4bacb549bc21.rmeta: crates/bench/benches/fig7_sw_fsch.rs Cargo.toml

crates/bench/benches/fig7_sw_fsch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
