/root/repo/target/debug/deps/flownet_proptest-d582a632566b33de.d: crates/sim/tests/flownet_proptest.rs

/root/repo/target/debug/deps/flownet_proptest-d582a632566b33de: crates/sim/tests/flownet_proptest.rs

crates/sim/tests/flownet_proptest.rs:
