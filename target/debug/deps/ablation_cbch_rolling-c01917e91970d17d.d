/root/repo/target/debug/deps/ablation_cbch_rolling-c01917e91970d17d.d: crates/bench/benches/ablation_cbch_rolling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cbch_rolling-c01917e91970d17d.rmeta: crates/bench/benches/ablation_cbch_rolling.rs Cargo.toml

crates/bench/benches/ablation_cbch_rolling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
