/root/repo/target/debug/deps/stdchk_proto-ea2c570366abc09f.d: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

/root/repo/target/debug/deps/libstdchk_proto-ea2c570366abc09f.rmeta: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

crates/proto/src/lib.rs:
crates/proto/src/chunkmap.rs:
crates/proto/src/codec.rs:
crates/proto/src/error.rs:
crates/proto/src/frame.rs:
crates/proto/src/ids.rs:
crates/proto/src/msg.rs:
crates/proto/src/policy.rs:
