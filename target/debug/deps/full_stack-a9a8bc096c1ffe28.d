/root/repo/target/debug/deps/full_stack-a9a8bc096c1ffe28.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-a9a8bc096c1ffe28.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
