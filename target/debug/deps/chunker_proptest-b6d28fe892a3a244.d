/root/repo/target/debug/deps/chunker_proptest-b6d28fe892a3a244.d: crates/chunker/tests/chunker_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libchunker_proptest-b6d28fe892a3a244.rmeta: crates/chunker/tests/chunker_proptest.rs Cargo.toml

crates/chunker/tests/chunker_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
