/root/repo/target/debug/deps/crossbeam-ab60e58cc5ea60c4.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ab60e58cc5ea60c4.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
