/root/repo/target/debug/deps/stdchk-39a0c81a381552f5.d: src/lib.rs

/root/repo/target/debug/deps/libstdchk-39a0c81a381552f5.rmeta: src/lib.rs

src/lib.rs:
