/root/repo/target/debug/deps/session_flow-ce60330cd198d8f7.d: crates/core/tests/session_flow.rs

/root/repo/target/debug/deps/session_flow-ce60330cd198d8f7: crates/core/tests/session_flow.rs

crates/core/tests/session_flow.rs:
