/root/repo/target/debug/deps/stdchk_util-d71a964b05543592.d: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

/root/repo/target/debug/deps/stdchk_util-d71a964b05543592: crates/util/src/lib.rs crates/util/src/bytesize.rs crates/util/src/rate.rs crates/util/src/rolling.rs crates/util/src/sha256.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bytesize.rs:
crates/util/src/rate.rs:
crates/util/src/rolling.rs:
crates/util/src/sha256.rs:
crates/util/src/time.rs:
