/root/repo/target/debug/deps/stdchk-aa34b1ddedd13678.d: src/lib.rs

/root/repo/target/debug/deps/stdchk-aa34b1ddedd13678: src/lib.rs

src/lib.rs:
