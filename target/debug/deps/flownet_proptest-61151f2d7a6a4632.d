/root/repo/target/debug/deps/flownet_proptest-61151f2d7a6a4632.d: crates/sim/tests/flownet_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libflownet_proptest-61151f2d7a6a4632.rmeta: crates/sim/tests/flownet_proptest.rs Cargo.toml

crates/sim/tests/flownet_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
