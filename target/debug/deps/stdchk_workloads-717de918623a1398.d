/root/repo/target/debug/deps/stdchk_workloads-717de918623a1398.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/debug/deps/libstdchk_workloads-717de918623a1398.rlib: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/debug/deps/libstdchk_workloads-717de918623a1398.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
