/root/repo/target/debug/deps/node_trait-acec60b9b78ca712.d: crates/core/tests/node_trait.rs

/root/repo/target/debug/deps/node_trait-acec60b9b78ca712: crates/core/tests/node_trait.rs

crates/core/tests/node_trait.rs:
