/root/repo/target/debug/deps/fig6_10gbps-b2447ad04c63fe4c.d: crates/bench/benches/fig6_10gbps.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_10gbps-b2447ad04c63fe4c.rmeta: crates/bench/benches/fig6_10gbps.rs Cargo.toml

crates/bench/benches/fig6_10gbps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
