/root/repo/target/debug/deps/stdchk_sim-2bcd48052362f5ff.d: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/libstdchk_sim-2bcd48052362f5ff.rmeta: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/baselines.rs:
crates/sim/src/cluster.rs:
crates/sim/src/flownet.rs:
crates/sim/src/metrics.rs:
