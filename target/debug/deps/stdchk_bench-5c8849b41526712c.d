/root/repo/target/debug/deps/stdchk_bench-5c8849b41526712c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstdchk_bench-5c8849b41526712c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstdchk_bench-5c8849b41526712c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
