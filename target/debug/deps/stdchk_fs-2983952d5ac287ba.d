/root/repo/target/debug/deps/stdchk_fs-2983952d5ac287ba.d: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/debug/deps/libstdchk_fs-2983952d5ac287ba.rmeta: crates/fs/src/lib.rs crates/fs/src/naming.rs

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
