/root/repo/target/debug/deps/node_trait-bfa95f8f44771d8e.d: crates/core/tests/node_trait.rs Cargo.toml

/root/repo/target/debug/deps/libnode_trait-bfa95f8f44771d8e.rmeta: crates/core/tests/node_trait.rs Cargo.toml

crates/core/tests/node_trait.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
