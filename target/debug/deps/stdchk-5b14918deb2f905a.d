/root/repo/target/debug/deps/stdchk-5b14918deb2f905a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk-5b14918deb2f905a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
