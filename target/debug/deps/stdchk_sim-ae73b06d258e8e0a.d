/root/repo/target/debug/deps/stdchk_sim-ae73b06d258e8e0a.d: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/stdchk_sim-ae73b06d258e8e0a: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/baselines.rs:
crates/sim/src/cluster.rs:
crates/sim/src/flownet.rs:
crates/sim/src/metrics.rs:
