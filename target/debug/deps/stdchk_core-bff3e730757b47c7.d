/root/repo/target/debug/deps/stdchk_core-bff3e730757b47c7.d: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/manager/tests.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_core-bff3e730757b47c7.rmeta: crates/core/src/lib.rs crates/core/src/benefactor.rs crates/core/src/config.rs crates/core/src/manager/mod.rs crates/core/src/manager/maintain.rs crates/core/src/manager/replicate.rs crates/core/src/manager/write.rs crates/core/src/manager/tests.rs crates/core/src/node.rs crates/core/src/payload.rs crates/core/src/session/mod.rs crates/core/src/session/read.rs crates/core/src/session/write.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/benefactor.rs:
crates/core/src/config.rs:
crates/core/src/manager/mod.rs:
crates/core/src/manager/maintain.rs:
crates/core/src/manager/replicate.rs:
crates/core/src/manager/write.rs:
crates/core/src/manager/tests.rs:
crates/core/src/node.rs:
crates/core/src/payload.rs:
crates/core/src/session/mod.rs:
crates/core/src/session/read.rs:
crates/core/src/session/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
