/root/repo/target/debug/deps/stdchk_net-9a655d2c93c0fcdd.d: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/debug/deps/stdchk_net-9a655d2c93c0fcdd: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

crates/net/src/lib.rs:
crates/net/src/benefactor_server.rs:
crates/net/src/client.rs:
crates/net/src/conn.rs:
crates/net/src/driver.rs:
crates/net/src/manager_server.rs:
crates/net/src/store.rs:
