/root/repo/target/debug/deps/stdchk_proto-e57b431c17931143.d: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

/root/repo/target/debug/deps/stdchk_proto-e57b431c17931143: crates/proto/src/lib.rs crates/proto/src/chunkmap.rs crates/proto/src/codec.rs crates/proto/src/error.rs crates/proto/src/frame.rs crates/proto/src/ids.rs crates/proto/src/msg.rs crates/proto/src/policy.rs

crates/proto/src/lib.rs:
crates/proto/src/chunkmap.rs:
crates/proto/src/codec.rs:
crates/proto/src/error.rs:
crates/proto/src/frame.rs:
crates/proto/src/ids.rs:
crates/proto/src/msg.rs:
crates/proto/src/policy.rs:
