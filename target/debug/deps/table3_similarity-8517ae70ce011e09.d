/root/repo/target/debug/deps/table3_similarity-8517ae70ce011e09.d: crates/bench/benches/table3_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_similarity-8517ae70ce011e09.rmeta: crates/bench/benches/table3_similarity.rs Cargo.toml

crates/bench/benches/table3_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
