/root/repo/target/debug/deps/fig3_asb_stripe-45947e78aa556f6f.d: crates/bench/benches/fig3_asb_stripe.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_asb_stripe-45947e78aa556f6f.rmeta: crates/bench/benches/fig3_asb_stripe.rs Cargo.toml

crates/bench/benches/fig3_asb_stripe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
