/root/repo/target/debug/deps/stdchk_fs-9aaf694967a0b717.d: crates/fs/src/lib.rs crates/fs/src/naming.rs

/root/repo/target/debug/deps/stdchk_fs-9aaf694967a0b717: crates/fs/src/lib.rs crates/fs/src/naming.rs

crates/fs/src/lib.rs:
crates/fs/src/naming.rs:
