/root/repo/target/debug/deps/stdchk_sim-dfd9076539a3610f.d: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_sim-dfd9076539a3610f.rmeta: crates/sim/src/lib.rs crates/sim/src/baselines.rs crates/sim/src/cluster.rs crates/sim/src/flownet.rs crates/sim/src/metrics.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/baselines.rs:
crates/sim/src/cluster.rs:
crates/sim/src/flownet.rs:
crates/sim/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
