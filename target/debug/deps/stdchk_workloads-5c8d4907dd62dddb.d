/root/repo/target/debug/deps/stdchk_workloads-5c8d4907dd62dddb.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/debug/deps/stdchk_workloads-5c8d4907dd62dddb: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
