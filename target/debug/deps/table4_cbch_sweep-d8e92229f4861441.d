/root/repo/target/debug/deps/table4_cbch_sweep-d8e92229f4861441.d: crates/bench/benches/table4_cbch_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_cbch_sweep-d8e92229f4861441.rmeta: crates/bench/benches/table4_cbch_sweep.rs Cargo.toml

crates/bench/benches/table4_cbch_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
