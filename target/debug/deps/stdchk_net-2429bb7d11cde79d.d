/root/repo/target/debug/deps/stdchk_net-2429bb7d11cde79d.d: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/debug/deps/libstdchk_net-2429bb7d11cde79d.rlib: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/debug/deps/libstdchk_net-2429bb7d11cde79d.rmeta: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

crates/net/src/lib.rs:
crates/net/src/benefactor_server.rs:
crates/net/src/client.rs:
crates/net/src/conn.rs:
crates/net/src/driver.rs:
crates/net/src/manager_server.rs:
crates/net/src/store.rs:
