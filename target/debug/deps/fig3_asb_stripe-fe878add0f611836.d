/root/repo/target/debug/deps/fig3_asb_stripe-fe878add0f611836.d: crates/bench/benches/fig3_asb_stripe.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_asb_stripe-fe878add0f611836.rmeta: crates/bench/benches/fig3_asb_stripe.rs Cargo.toml

crates/bench/benches/fig3_asb_stripe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
