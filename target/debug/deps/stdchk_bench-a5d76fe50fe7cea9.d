/root/repo/target/debug/deps/stdchk_bench-a5d76fe50fe7cea9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstdchk_bench-a5d76fe50fe7cea9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
