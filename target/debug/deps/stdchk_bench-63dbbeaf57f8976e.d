/root/repo/target/debug/deps/stdchk_bench-63dbbeaf57f8976e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_bench-63dbbeaf57f8976e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
