/root/repo/target/debug/deps/stdchk_net-43429fb6782716b2.d: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libstdchk_net-43429fb6782716b2.rmeta: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/benefactor_server.rs:
crates/net/src/client.rs:
crates/net/src/conn.rs:
crates/net/src/driver.rs:
crates/net/src/manager_server.rs:
crates/net/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
