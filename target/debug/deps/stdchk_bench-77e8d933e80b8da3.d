/root/repo/target/debug/deps/stdchk_bench-77e8d933e80b8da3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/stdchk_bench-77e8d933e80b8da3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
