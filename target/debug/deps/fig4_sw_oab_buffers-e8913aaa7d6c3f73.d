/root/repo/target/debug/deps/fig4_sw_oab_buffers-e8913aaa7d6c3f73.d: crates/bench/benches/fig4_sw_oab_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_sw_oab_buffers-e8913aaa7d6c3f73.rmeta: crates/bench/benches/fig4_sw_oab_buffers.rs Cargo.toml

crates/bench/benches/fig4_sw_oab_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
