/root/repo/target/debug/deps/stdchk_chunker-0c10edff3d42fdf1.d: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

/root/repo/target/debug/deps/libstdchk_chunker-0c10edff3d42fdf1.rmeta: crates/chunker/src/lib.rs crates/chunker/src/cbch.rs crates/chunker/src/fsch.rs crates/chunker/src/similarity.rs crates/chunker/src/stats.rs

crates/chunker/src/lib.rs:
crates/chunker/src/cbch.rs:
crates/chunker/src/fsch.rs:
crates/chunker/src/similarity.rs:
crates/chunker/src/stats.rs:
