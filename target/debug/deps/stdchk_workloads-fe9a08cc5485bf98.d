/root/repo/target/debug/deps/stdchk_workloads-fe9a08cc5485bf98.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

/root/repo/target/debug/deps/libstdchk_workloads-fe9a08cc5485bf98.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/traces.rs crates/workloads/src/virt.rs

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/traces.rs:
crates/workloads/src/virt.rs:
