/root/repo/target/debug/deps/codec_proptest-ec2be5c615a3c4fb.d: crates/proto/tests/codec_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_proptest-ec2be5c615a3c4fb.rmeta: crates/proto/tests/codec_proptest.rs Cargo.toml

crates/proto/tests/codec_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
