/root/repo/target/debug/deps/net_cluster-0f5cf5c2c50ae945.d: crates/net/tests/net_cluster.rs

/root/repo/target/debug/deps/net_cluster-0f5cf5c2c50ae945: crates/net/tests/net_cluster.rs

crates/net/tests/net_cluster.rs:
