/root/repo/target/debug/deps/fig6_10gbps-fa27ffd8994f7afa.d: crates/bench/benches/fig6_10gbps.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_10gbps-fa27ffd8994f7afa.rmeta: crates/bench/benches/fig6_10gbps.rs Cargo.toml

crates/bench/benches/fig6_10gbps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
