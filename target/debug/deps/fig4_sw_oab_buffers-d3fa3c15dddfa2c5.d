/root/repo/target/debug/deps/fig4_sw_oab_buffers-d3fa3c15dddfa2c5.d: crates/bench/benches/fig4_sw_oab_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_sw_oab_buffers-d3fa3c15dddfa2c5.rmeta: crates/bench/benches/fig4_sw_oab_buffers.rs Cargo.toml

crates/bench/benches/fig4_sw_oab_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
