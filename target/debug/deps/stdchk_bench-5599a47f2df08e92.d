/root/repo/target/debug/deps/stdchk_bench-5599a47f2df08e92.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/stdchk_bench-5599a47f2df08e92: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
