/root/repo/target/debug/deps/stdchk_net-cdcfe23c8edea585.d: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

/root/repo/target/debug/deps/libstdchk_net-cdcfe23c8edea585.rmeta: crates/net/src/lib.rs crates/net/src/benefactor_server.rs crates/net/src/client.rs crates/net/src/conn.rs crates/net/src/driver.rs crates/net/src/manager_server.rs crates/net/src/store.rs

crates/net/src/lib.rs:
crates/net/src/benefactor_server.rs:
crates/net/src/client.rs:
crates/net/src/conn.rs:
crates/net/src/driver.rs:
crates/net/src/manager_server.rs:
crates/net/src/store.rs:
