/root/repo/target/debug/deps/micro-c29f053ccaa41a60.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-c29f053ccaa41a60.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
