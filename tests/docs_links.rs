//! Markdown link checker over the repo docs.
//!
//! CI's docs job runs this: every relative link in `README.md` and
//! `docs/*.md` must point at a file that exists, and every fragment
//! (`#anchor`) must match a heading in the target document — so the
//! architecture/paper-map docs cannot silently rot as files move.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Markdown files under check: the README plus everything in `docs/`.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

/// GitHub-style heading anchor: lowercase, spaces to dashes, punctuation
/// (other than dashes/underscores) dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| match c {
            ' ' => Some('-'),
            '-' | '_' => Some(c),
            c if c.is_alphanumeric() => Some(c.to_ascii_lowercase()),
            _ => None,
        })
        .collect()
}

/// Anchors defined by a markdown file (its `#`-prefixed headings).
fn anchors_of(path: &Path) -> HashSet<String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut in_code = false;
    let mut out = HashSet::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        let trimmed = line.trim_start();
        let level = trimmed.chars().take_while(|c| *c == '#').count();
        if level > 0 && trimmed.chars().nth(level) == Some(' ') {
            out.insert(slug(&trimmed[level + 1..]));
        }
    }
    out
}

/// Extracts `[text](target)` links, skipping fenced and inline code.
fn links_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    out.push(line[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file).expect("read doc");
        let dir = file.parent().expect("doc has a parent");
        for link in links_of(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue; // external; availability is not this test's job
            }
            let (target, fragment) = match link.split_once('#') {
                Some((t, f)) => (t, Some(f.to_string())),
                None => (link.as_str(), None),
            };
            let target_path = if target.is_empty() {
                file.clone() // same-document anchor
            } else {
                dir.join(target)
            };
            if !target_path.exists() {
                broken.push(format!("{}: missing target {link}", file.display()));
                continue;
            }
            if let Some(fragment) = fragment {
                if target_path.extension().is_some_and(|e| e == "md")
                    && !anchors_of(&target_path).contains(&fragment)
                {
                    broken.push(format!("{}: missing anchor {link}", file.display()));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn docs_cover_the_new_metadata_layer() {
    // The architecture doc and paper map must keep describing the durable
    // metadata design shipped with it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).expect("arch doc");
    for needle in ["MetaLog", "write-ahead", "snapshot", "replay"] {
        assert!(arch.contains(needle), "ARCHITECTURE.md lost '{needle}'");
    }
    let map = std::fs::read_to_string(root.join("docs/PAPER_MAP.md")).expect("paper map");
    for needle in ["§IV.A", "crates/core", "metalog"] {
        assert!(map.contains(needle), "PAPER_MAP.md lost '{needle}'");
    }
}
