//! Workspace-level integration test: the full stack working together —
//! fs facade over the net deployment, checkpoint naming, incremental
//! checkpointing, policies, and a sim/net cross-check.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::session::write::{SessionConfig, WriteProtocol};
use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::fs::naming::CheckpointName;
use stdchk::fs::{MountOptions, StdchkFs};
use stdchk::net::store::MemStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
use stdchk::proto::RetentionPolicy;
use stdchk::sim::{SimCluster, SimConfig, WriteJob};
use stdchk::util::Dur;

#[test]
fn checkpoint_lifecycle_end_to_end() {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg).expect("manager");
    let _benefactors: Vec<_> = (0..3)
        .map(|_| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 256 << 20,
                cfg: BenefactorConfig::fast_for_tests(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 3 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut mount = MountOptions::default();
    mount.write.session.dedup = true;
    let fs = StdchkFs::mount(
        Grid::connect(&mgr.addr().to_string()).expect("connect"),
        mount,
    );
    fs.set_policy("/jobs", RetentionPolicy::AutomatedReplace { keep_last: 2 })
        .expect("policy");

    // A "parallel application": two processes checkpoint three timesteps.
    let mut images = Vec::new();
    for node in 0..2u32 {
        let mut image: Vec<u8> = (0..256 << 10)
            .map(|i| stdchk::util::mix64(node as u64 ^ (i as u64) << 7) as u8)
            .collect();
        for t in 0..3u64 {
            if t > 0 {
                // Dirty ~25% of the image between timesteps.
                for b in image.iter_mut().take(64 << 10) {
                    *b = b.wrapping_add(t as u8);
                }
            }
            let mut w = fs
                .checkpoint("/jobs", &CheckpointName::new("solver", node, t))
                .expect("checkpoint");
            w.write_all(&image).expect("write");
            let stats = w.finish().expect("finish");
            if t > 0 {
                assert!(
                    stats.bytes_deduped > stats.bytes_written / 2,
                    "incremental checkpointing must dedup unchanged chunks"
                );
            }
        }
        images.push(image);
    }

    // The replace policy keeps two versions per logical file.
    for node in 0..2u32 {
        let path = format!("/jobs/solver.n{node}");
        let versions = fs.versions(&path).expect("versions");
        assert_eq!(versions.len(), 2, "{path} should keep 2 versions");
        // Restart from the newest.
        let (_, data) = fs.restart_latest("/jobs", "solver", node).expect("restart");
        assert_eq!(data, images[node as usize]);
    }
    // Namespace reflects both logical files.
    let names: Vec<String> = fs
        .readdir("/jobs")
        .expect("readdir")
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["solver.n0", "solver.n1"]);
    mgr.check_invariants();
}

#[test]
fn simulator_and_deployment_agree_on_protocol_semantics() {
    // The same session code runs under both drivers; cross-check that a
    // sliding-window write under the simulator moves exactly the bytes the
    // real deployment would (dedup accounting identical).
    let mut sim = SimCluster::new(SimConfig::gige(4, 1));
    let chunks = 32u64;
    let mut trace = stdchk::workloads::VirtualTrace::new(chunks as usize, 0.5, 5);
    for _ in 0..2 {
        let mut job = WriteJob::new(
            "/x/f",
            chunks << 20,
            SessionConfig {
                protocol: WriteProtocol::SlidingWindow { buffer: 64 << 20 },
                dedup: true,
                ..SessionConfig::default()
            },
        );
        job.tags = Some(trace.next_tags());
        sim.submit(0, job);
    }
    let report = sim.run(Dur::from_secs(1));
    let v2 = &report.results[1].stats;
    assert_eq!(v2.bytes_written, chunks << 20);
    assert_eq!(
        v2.bytes_deduped + v2.bytes_stored,
        v2.bytes_written,
        "every byte is either shipped or deduped"
    );
}
