//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Implements the subset stdchk's property tests use: the [`Strategy`]
//! trait with `prop_map`/`boxed`, `any::<T>()` for primitive types, range
//! and tuple strategies, `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! the `proptest!` macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`), and failing inputs are
//! reported but **not shrunk**. Failures print the offending case number and
//! seed so a run is exactly reproducible.

use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    //! The deterministic random source behind every strategy.

    /// SplitMix64 generator seeding each property test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name (stable across runs) or
        /// the `PROPTEST_SEED` environment variable when set.
        pub fn for_test(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng { state: seed };
                }
            }
            // FNV-1a over the test name: deterministic, well spread.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The current seed (printed on failure for reproduction).
        pub fn seed(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy mapping another strategy's output (from [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (behind `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `any::<T>()`: the full range of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategy: real proptest interprets `&str` as a regex. This shim
/// generates short printable-ASCII strings regardless of the pattern, which
/// is the intent of every `".*"` use in this workspace.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(12) as usize;
        (0..len)
            .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespace alias matching real proptest's `prop::` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// mid-generation) with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a normal `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let seed = rng.seed();
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case}/{} failed (seed {seed}): {e}",
                        cfg.cases
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, v in collection::vec(any::<u16>(), 0..4)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u32..10).prop_map(|n| n * 2),
            Just(100u32),
        ]) {
            prop_assert!(y == 100 || y < 20, "unexpected {y}");
        }
    }
}
