//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape stdchk uses: `Mutex::lock` returns the
//! guard directly (poisoning is ignored — a panic while holding a lock does
//! not wedge every later user), and `Condvar::wait`/`wait_for` re-acquire
//! through a `&mut` guard instead of consuming it.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock()` never fails (poisoning is dissolved).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`], parking_lot-style: waits take
/// `&mut MutexGuard` and re-establish the guard in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

/// Moves the inner std guard out of `guard`, through `f`, and back in.
/// If `f` unwinds the process aborts (the guard slot would be invalid), so
/// `f` must be panic-free; `Condvar::wait*` only fail on poison, which is
/// dissolved before returning.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let bomb = AbortOnUnwind;
        let inner = f(inner);
        std::mem::forget(bomb);
        std::ptr::write(&mut guard.0, inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
