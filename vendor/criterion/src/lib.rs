//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the stdchk benches use and measures with
//! plain wall-clock timing: a short warm-up, then `sample_size` timed
//! samples, reporting median time per iteration (and throughput when
//! declared). No statistics machinery, no HTML reports — numbers on stdout.

use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One finished benchmark's measurement (stdout is the primary report;
/// harnesses that also emit machine-readable files drain these through
/// [`take_results`]).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group name (`Criterion::benchmark_group` argument).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Declared per-iteration throughput basis, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Bytes per second, when byte throughput was declared and time was
    /// measurable.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(n)) if self.median_ns > 0 => {
                Some(n as f64 / (self.median_ns as f64 / 1e9))
            }
            _ => None,
        }
    }
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every result recorded by benchmarks run so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results poisoned"))
}

/// Records (and prints, in the standard report format) an externally
/// measured result — for harnesses that interleave the competitors inside
/// one sampling loop (A/B pairing against environment noise) and so cannot
/// time through [`Bencher`].
pub fn record(group: &str, id: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let bps = n as f64 / median.as_secs_f64();
            format!("  {:>10.1} MiB/s", bps / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{group}/{id}: median {median:?}{rate}");
    RESULTS.lock().expect("results poisoned").push(BenchResult {
        group: group.to_string(),
        id: id.to_string(),
        median_ns: median.as_nanos(),
        throughput,
    });
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored; every batch is
/// one setup + one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Declared throughput for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, one sample per call batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    /// Times `routine` over fresh state from `setup` (setup cost excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        // Warm-up pass (also lets `iter` calibrate nothing — keep simple).
        f(&mut b);
        let med = b.median();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                let bps = n as f64 / med.as_secs_f64();
                format!("  {:>10.1} MiB/s", bps / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                let eps = n as f64 / med.as_secs_f64();
                format!("  {eps:>10.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {med:?}{rate}", self.name);
        RESULTS.lock().expect("results poisoned").push(BenchResult {
            group: self.name.clone(),
            id: id.to_string(),
            median_ns: med.as_nanos(),
            throughput: self.throughput,
        });
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .throughput(Throughput::Bytes(8))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
