//! Minimal vendored stand-in for the pieces of `crossbeam` stdchk uses:
//! the `channel` module, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// Sending half of a channel (unbounded or bounded).
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`].
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; blocks on a full bounded channel.
        ///
        /// # Errors
        ///
        /// [`SendError`] if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a value.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`mpsc::TryRecvError`] if empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// A bounded FIFO channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_both_kinds() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            let (tx, rx) = bounded(1);
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }
    }
}
