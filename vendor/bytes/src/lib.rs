//! Minimal vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, sliceable byte
//! buffer. Clones and slices share the underlying allocation via `Arc`;
//! `from_static` borrows `'static` data without allocating. Only the API
//! surface stdchk uses is implemented.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps `'static` data without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds (len {len})"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(2..);
        assert_eq!(&tail[..], &[4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn static_and_eq() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(s, Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }
}
