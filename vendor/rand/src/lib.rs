//! Minimal vendored stand-in for the `rand` crate.
//!
//! Deterministic, seedable, fast — exactly what the stdchk workload
//! generators need (they always seed explicitly for reproducibility).
//! The generator is SplitMix64, which passes casual statistical scrutiny
//! and is more than adequate for synthetic trace content.

/// Core random-number source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods.
pub trait Rng: RngCore {
    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
