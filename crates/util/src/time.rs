//! Nanosecond-precision time newtypes shared across stdchk.
//!
//! The sans-IO protocol core never reads a wall clock: every event carries a
//! [`Time`], and timers are expressed as `Time + Dur`. The discrete-event
//! simulator advances a virtual [`Time`]; the real network driver maps
//! `std::time::Instant` onto it. Keeping one representation means the exact
//! same state-machine code runs under both drivers.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant, in nanoseconds since an arbitrary epoch (simulation start or
/// process start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The epoch.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" for idle timers.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since the epoch.
    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e9).round().max(0.0) as u64)
    }

    /// Seconds since the epoch, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never wraps past [`Time::MAX`].
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Dur {
        Dur((s * 1e9).round().max(0.0) as u64)
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time needed to move `bytes` at `bytes_per_sec` (rounds up to 1 ns for
    /// any non-zero transfer so events always make progress).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive while `bytes > 0`.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Dur {
        if bytes == 0 {
            return Dur::ZERO;
        }
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid rate {bytes_per_sec}"
        );
        let ns = (bytes as f64 / bytes_per_sec * 1e9).ceil();
        Dur((ns as u64).max(1))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from_secs(10);
        let d = Dur::from_millis(1500);
        assert_eq!((t + d).as_secs_f64(), 11.5);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), Dur::ZERO); // saturating
    }

    #[test]
    fn for_bytes_matches_expected_transfer_times() {
        // 1 MiB at 1 MiB/s is one second.
        let d = Dur::for_bytes(1 << 20, (1 << 20) as f64);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6);
        // Zero bytes is free.
        assert_eq!(Dur::for_bytes(0, 1.0), Dur::ZERO);
        // Tiny transfers still take at least 1 ns.
        assert!(Dur::for_bytes(1, 1e18).as_nanos() >= 1);
    }

    #[test]
    #[should_panic]
    fn for_bytes_rejects_zero_rate() {
        let _ = Dur::for_bytes(10, 0.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(32)), "32.000µs");
        assert_eq!(format!("{}", Dur::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
    }
}
