//! Human-readable byte and throughput formatting for harness output.
//!
//! The benchmark harnesses print tables in the same units the paper uses
//! (MB = 10^6 bytes for throughput, matching "MB/s" in the evaluation).

/// One decimal megabyte (10^6 bytes), the paper's throughput unit.
pub const MB: u64 = 1_000_000;
/// One binary mebibyte (2^20 bytes), the chunk-size unit.
pub const MIB: u64 = 1 << 20;
/// One binary kibibyte.
pub const KIB: u64 = 1 << 10;
/// One decimal gigabyte.
pub const GB: u64 = 1_000_000_000;
/// One binary gibibyte.
pub const GIB: u64 = 1 << 30;

/// Formats a byte count with a binary-unit suffix (`KiB`, `MiB`, `GiB`).
///
/// # Examples
///
/// ```
/// assert_eq!(stdchk_util::bytesize::fmt_bytes(1536), "1.50 KiB");
/// assert_eq!(stdchk_util::bytesize::fmt_bytes(3 << 20), "3.00 MiB");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a throughput in the paper's MB/s (decimal megabytes).
///
/// # Examples
///
/// ```
/// assert_eq!(stdchk_util::bytesize::fmt_rate(110_000_000.0), "110.0 MB/s");
/// ```
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    format!("{:.1} MB/s", bytes_per_sec / MB as f64)
}

/// Converts a throughput to the paper's MB/s value (decimal megabytes).
pub fn to_mbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec / MB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_rounding() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(1024), "1.00 KiB");
        assert_eq!(fmt_bytes(GIB), "1.00 GiB");
        assert_eq!(fmt_rate(24_800_000.0), "24.8 MB/s");
        assert!((to_mbps(86_200_000.0) - 86.2).abs() < 1e-9);
    }
}
