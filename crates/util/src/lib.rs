//! Shared utilities for the stdchk checkpoint storage system.
//!
//! This crate is dependency-free and hosts the primitives every other stdchk
//! crate builds on:
//!
//! - [`sha256`]: a from-scratch SHA-256 implementation used for
//!   content-addressed chunk naming and integrity verification.
//! - [`crc32`]: CRC-32C record checksums for the segment-log storage
//!   engine's framing and torn-tail detection.
//! - [`rolling`]: the polynomial window hashes used by the content-based
//!   chunking (CbCH) heuristics.
//! - [`time`]: nanosecond-precision [`Time`]/[`Dur`] newtypes shared by the
//!   sans-IO protocol core and the discrete-event simulator.
//! - [`rate`]: a token-bucket rate limiter.
//! - [`ordlock`]: rank-ordered mutexes whose debug builds panic at the
//!   moment of a lock-order inversion, turning potential deadlocks into
//!   deterministic test failures.
//! - [`bytesize`]: human-readable byte/throughput formatting for benchmark
//!   harness output.
//!
//! # Examples
//!
//! ```
//! use stdchk_util::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"checkpoint image bytes");
//! assert_eq!(digest.len(), 32);
//! ```

pub mod bytesize;
pub mod crc32;
pub mod ordlock;
pub mod rate;
pub mod rolling;
pub mod sha256;
pub mod time;

pub use time::{Dur, Time};

/// Finalizing 64-bit mixer (the SplitMix64 finalizer).
///
/// Used to whiten weak polynomial rolling-hash states before their low bits
/// are inspected for chunk-boundary decisions, and as a cheap deterministic
/// PRNG step in tests.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(1), mix64(2));
        let a = mix64(0xdead_beef);
        assert_eq!(a, mix64(0xdead_beef));
    }

    #[test]
    fn mix64_low_bits_vary() {
        // The low 16 bits over consecutive inputs should not be constant.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            seen.insert(mix64(i) & 0xffff);
        }
        assert!(seen.len() > 200, "low bits collapse: {}", seen.len());
    }
}
