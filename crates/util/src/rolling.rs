//! Window hashes for content-based chunking (CbCH).
//!
//! The paper's CbCH heuristic (§IV.C) scans a checkpoint image with a window
//! of `m` bytes and computes a hash at each window position; a chunk boundary
//! is declared when the lowest `k` bits of the hash are zero. Two scanning
//! regimes exist:
//!
//! - **overlap**: the window advances 1 byte at a time (`p = 1`). The paper
//!   computes a *full* hash of the window at every position, which is why it
//!   measures ~1 MB/s.
//! - **no-overlap**: the window advances by its own size (`p = m`), hashing
//!   each byte once.
//!
//! [`WindowHash`] is the one-shot window hash used to reproduce the paper's
//! behaviour faithfully. [`RollingHash`] is an O(1)-slide Rabin–Karp variant
//! we ship as an extension: it makes the overlap regime cheap, and an
//! ablation benchmark shows the throughput gap closing.

use crate::mix64;

/// Multiplier for the polynomial hash. An odd constant with good bit
/// dispersion; the final [`mix64`] whitening is what boundary decisions rely
/// on, so the base only needs to avoid degenerate cycles.
const BASE: u64 = 0x0100_0000_01b3; // FNV-ish prime, 2^40 scale

/// One-shot polynomial hash of a byte window.
///
/// `H(w) = mix64( Σ w[i] · BASE^(m-1-i) )` with wrapping arithmetic.
///
/// This is intentionally *recomputed from scratch per position* by the
/// paper-faithful CbCH overlap mode; see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowHash;

impl WindowHash {
    /// Hashes an entire window.
    #[inline]
    pub fn hash(window: &[u8]) -> u64 {
        let mut acc: u64 = 0;
        for &b in window {
            acc = acc.wrapping_mul(BASE).wrapping_add(b as u64 + 1);
        }
        mix64(acc)
    }
}

/// An O(1)-slide rolling hash over a fixed-size window (Rabin–Karp style).
///
/// Maintains the same polynomial accumulator as [`WindowHash`] — sliding the
/// window by one byte removes the oldest byte's term and appends the new
/// byte — so `RollingHash` over window `w` always equals
/// [`WindowHash::hash`]`(w)`. That equivalence is property-tested.
///
/// # Examples
///
/// ```
/// use stdchk_util::rolling::{RollingHash, WindowHash};
///
/// let data = b"the quick brown fox jumps over the lazy dog";
/// let m = 8;
/// let mut rh = RollingHash::new(m);
/// for &b in &data[..m] {
///     rh.push(b);
/// }
/// assert_eq!(rh.value(), WindowHash::hash(&data[..m]));
/// rh.slide(data[0], data[m]);
/// assert_eq!(rh.value(), WindowHash::hash(&data[1..m + 1]));
/// ```
#[derive(Clone, Debug)]
pub struct RollingHash {
    acc: u64,
    /// BASE^(m-1), the weight of the outgoing byte.
    top_weight: u64,
    window: usize,
    filled: usize,
}

impl RollingHash {
    /// Creates a rolling hash for windows of `window` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        let mut w: u64 = 1;
        for _ in 0..window - 1 {
            w = w.wrapping_mul(BASE);
        }
        RollingHash {
            acc: 0,
            top_weight: w,
            window,
            filled: 0,
        }
    }

    /// The configured window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// True once `window` bytes have been pushed.
    pub fn is_full(&self) -> bool {
        self.filled == self.window
    }

    /// Appends a byte while the window is still filling.
    ///
    /// # Panics
    ///
    /// Panics if the window is already full (use [`RollingHash::slide`]).
    #[inline]
    pub fn push(&mut self, b: u8) {
        assert!(self.filled < self.window, "window full; use slide");
        self.acc = self.acc.wrapping_mul(BASE).wrapping_add(b as u64 + 1);
        self.filled += 1;
    }

    /// Slides the full window one byte: removes `out`, appends `inc`.
    ///
    /// # Panics
    ///
    /// Panics if the window is not yet full.
    #[inline]
    pub fn slide(&mut self, out: u8, inc: u8) {
        debug_assert!(self.is_full(), "window not full; use push");
        self.acc = self
            .acc
            .wrapping_sub((out as u64 + 1).wrapping_mul(self.top_weight))
            .wrapping_mul(BASE)
            .wrapping_add(inc as u64 + 1);
    }

    /// The whitened hash of the current window contents.
    #[inline]
    pub fn value(&self) -> u64 {
        mix64(self.acc)
    }

    /// Clears the window so it can refill from scratch.
    pub fn reset(&mut self) {
        self.acc = 0;
        self.filled = 0;
    }
}

/// Returns true when the low `k` bits of `hash` are all zero — the CbCH
/// chunk-boundary predicate. Statistically this fires once every `2^k`
/// positions, so `k` controls the expected chunk size.
#[inline]
pub fn is_boundary(hash: u64, k: u32) -> bool {
    debug_assert!(k < 64);
    hash & ((1u64 << k) - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_equals_oneshot_over_text() {
        let data: Vec<u8> = (0..4096u32).map(|i| mix64(i as u64) as u8).collect();
        for m in [1usize, 2, 7, 20, 32, 64] {
            let mut rh = RollingHash::new(m);
            for &b in &data[..m] {
                rh.push(b);
            }
            assert_eq!(rh.value(), WindowHash::hash(&data[..m]), "fill m={m}");
            for i in 0..data.len() - m - 1 {
                rh.slide(data[i], data[i + m]);
                assert_eq!(
                    rh.value(),
                    WindowHash::hash(&data[i + 1..i + 1 + m]),
                    "slide i={i} m={m}"
                );
            }
        }
    }

    #[test]
    fn boundary_rate_is_close_to_expected() {
        // With whitened hashes, boundaries should appear at roughly 2^-k.
        let data: Vec<u8> = (0..200_000u64).map(|i| mix64(i) as u8).collect();
        let m = 20;
        let k = 8;
        let mut rh = RollingHash::new(m);
        for &b in &data[..m] {
            rh.push(b);
        }
        let mut boundaries = 0u64;
        let mut positions = 0u64;
        for i in 0..data.len() - m - 1 {
            rh.slide(data[i], data[i + m]);
            positions += 1;
            if is_boundary(rh.value(), k) {
                boundaries += 1;
            }
        }
        let rate = boundaries as f64 / positions as f64;
        let expect = 1.0 / 2f64.powi(k as i32);
        assert!(
            (rate - expect).abs() < expect * 0.3,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn reset_refills_cleanly() {
        let mut rh = RollingHash::new(4);
        for b in b"abcd" {
            rh.push(*b);
        }
        let v = rh.value();
        rh.reset();
        assert!(!rh.is_full());
        for b in b"abcd" {
            rh.push(*b);
        }
        assert_eq!(rh.value(), v);
    }

    #[test]
    #[should_panic]
    fn push_past_full_panics() {
        let mut rh = RollingHash::new(2);
        rh.push(1);
        rh.push(2);
        rh.push(3);
    }
}
