//! A token-bucket rate limiter.
//!
//! Used by the real network driver to optionally emulate constrained NICs in
//! integration tests, and by the benefactor to throttle background
//! replication below fresh client writes.

use crate::{Dur, Time};

/// A classic token bucket: `rate` tokens accrue per second up to `capacity`;
/// a consumer takes tokens to perform work.
///
/// The bucket is clock-agnostic: callers pass the current [`Time`], so the
/// same code works under the simulator's virtual clock and the real clock.
///
/// # Examples
///
/// ```
/// use stdchk_util::{rate::TokenBucket, Dur, Time};
///
/// // 100 bytes/s, burst of 50.
/// let mut tb = TokenBucket::new(100.0, 50.0);
/// let t0 = Time::ZERO;
/// assert!(tb.try_take(50.0, t0));
/// assert!(!tb.try_take(1.0, t0));
/// // After a second, 100 more tokens are available (capped at capacity).
/// assert!(tb.try_take(50.0, t0 + Dur::from_secs(1)));
/// ```
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    capacity: f64,
    tokens: f64,
    last: Time,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate` tokens/second with the given
    /// burst `capacity`. The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `capacity` is not finite and positive.
    pub fn new(rate: f64, capacity: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "invalid capacity {capacity}"
        );
        TokenBucket {
            rate,
            capacity,
            tokens: capacity,
            last: Time::ZERO,
        }
    }

    /// The refill rate in tokens per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn refill(&mut self, now: Time) {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
            self.last = now;
        }
    }

    /// Takes `n` tokens if available at `now`; returns whether it succeeded.
    pub fn try_take(&mut self, n: f64, now: Time) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// How long from `now` until `n` tokens would be available.
    ///
    /// Returns [`Dur::ZERO`] if they already are. `n` may exceed the burst
    /// capacity; the wait is computed against accrual, so large requests
    /// simply wait longer.
    pub fn time_until(&mut self, n: f64, now: Time) -> Dur {
        self.refill(now);
        if self.tokens + 1e-9 >= n {
            Dur::ZERO
        } else {
            Dur::from_secs_f64((n - self.tokens) / self.rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_refills() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        assert!(tb.try_take(10.0, Time::ZERO));
        assert!(!tb.try_take(0.1, Time::ZERO));
        let later = Time::ZERO + Dur::from_millis(500);
        assert!(tb.try_take(5.0, later));
    }

    #[test]
    fn capacity_caps_accrual() {
        let mut tb = TokenBucket::new(1000.0, 10.0);
        let much_later = Time::from_secs(100);
        assert!(tb.try_take(10.0, much_later));
        assert!(!tb.try_take(1.0, much_later));
    }

    #[test]
    fn time_until_is_consistent_with_try_take() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        assert!(tb.try_take(10.0, Time::ZERO));
        let wait = tb.time_until(10.0, Time::ZERO);
        assert!((wait.as_secs_f64() - 0.1).abs() < 1e-6, "wait {wait}");
        let then = Time::ZERO + wait;
        assert!(tb.try_take(10.0, then));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_rate() {
        let _ = TokenBucket::new(0.0, 1.0);
    }
}
