//! CRC-32C (Castagnoli) for storage record framing.
//!
//! The segment-log storage engine frames every record with a CRC so a
//! reopen can detect a torn tail (a record cut short by a crash) and a read
//! can detect bit rot without paying the full SHA-256 cost. CRC-32C is the
//! polynomial used by iSCSI, ext4 and Btrfs for exactly this job: strong
//! burst-error detection at a few cycles per byte.
//!
//! On x86-64 with SSE4.2 the dedicated `crc32` instruction is used (the
//! reason CRC-32C is *the* storage polynomial — several bytes per cycle);
//! elsewhere a table-driven slice-by-8 implementation (8 bytes folded per
//! step, ~8× the single-table rate). Dependency-free like the rest of
//! this crate.
//!
//! # Examples
//!
//! ```
//! use stdchk_util::crc32::Crc32;
//!
//! let sum = Crc32::checksum(b"segment record payload");
//! let mut inc = Crc32::new();
//! inc.update(b"segment record ");
//! inc.update(b"payload");
//! assert_eq!(inc.finalize(), sum);
//! ```

/// CRC-32C polynomial, reversed bit order.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` advances a byte `k` extra
/// positions so eight bytes fold in one step.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32C state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: sse4.2 presence was just verified at runtime.
            self.state = unsafe { update_hw(self.state, data) };
            return;
        }
        self.update_sw(data);
    }

    /// Portable slice-by-8 fold.
    fn update_sw(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for d in &mut chunks {
            let lo = u32::from_le_bytes(d[0..4].try_into().unwrap()) ^ crc;
            let hi = u32::from_le_bytes(d[4..8].try_into().unwrap());
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }

    /// One-shot checksum of `data`.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finalize()
    }
}

/// Hardware fold via the SSE4.2 `crc32` instruction, 8 bytes per issue.
///
/// # Safety
///
/// Caller must have verified SSE4.2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = state as u64;
    let mut chunks = data.chunks_exact(8);
    for d in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(d.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::Crc32;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) CRC-32C test vectors.
        assert_eq!(Crc32::checksum(b""), 0);
        assert_eq!(Crc32::checksum(b"123456789"), 0xE306_9283);
        assert_eq!(Crc32::checksum(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(Crc32::checksum(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn hw_and_sw_paths_agree() {
        let data: Vec<u8> = (0..4099u32).map(|i| (i.wrapping_mul(31)) as u8).collect();
        let mut sw = Crc32::new();
        sw.update_sw(&data);
        assert_eq!(sw.finalize(), Crc32::checksum(&data));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7) as u8).collect();
        for split in [0, 1, 13, 512, 1023, 1024] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), Crc32::checksum(&data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 256];
        let base = Crc32::checksum(&data);
        data[100] ^= 0x04;
        assert_ne!(Crc32::checksum(&data), base);
    }
}
