//! Rank-ordered mutexes: deadlock detection as a debug-build panic.
//!
//! Two deadlocks in this project's history (the client route-lock
//! dial-failover hang, the zero-copy offer-window wedge) shared one
//! shape: two threads acquiring the same pair of locks in opposite
//! orders, found late because nothing *enforced* an order. An
//! [`OrderedMutex`] carries a static *rank*; every thread keeps a
//! (debug-build) stack of the ranks it currently holds, and acquiring a
//! lock whose rank is not strictly greater than every held rank panics
//! immediately — turning a once-in-a-bench production hang into a unit
//! test failure at the first wrong acquisition, on any interleaving.
//!
//! Discipline: a thread may only acquire locks in **strictly
//! increasing** rank order. Two locks of equal rank therefore cannot
//! nest (sequential, non-overlapping acquisition is fine). The rank
//! table itself lives with the locks' owner (for the network stack, see
//! `stdchk-net`'s `ranks` module).
//!
//! Semantics (matching the vendored `parking_lot` shape this replaces):
//!
//! - `lock()` returns the guard directly; poisoning is dissolved (a
//!   panic while holding a lock does not wedge later users — subsystems
//!   that cannot tolerate a half-applied mutation carry their own sticky
//!   poison flags, like the log engine's `GroupCommit`).
//! - [`Condvar::wait`]/[`Condvar::wait_for`] re-acquire through a
//!   `&mut` guard. The rank stays on the waiter's held stack for the
//!   duration of the wait: the thread still *logically* owns the slot
//!   (it re-acquires before returning), and a blocked thread acquires
//!   nothing anyway, so keeping the entry cannot produce false cycles.
//! - `try_lock()` skips the order check — it never blocks, so it can
//!   never complete a cycle — but its rank is still pushed while held,
//!   so later blocking acquisitions are checked against it.
//!
//! Release-build cost: one `#[cfg]`'d-out field per guard; the lock
//! compiles down to a plain `std::sync::Mutex`.

use std::sync::{self, PoisonError};
use std::time::Duration;

#[cfg(debug_assertions)]
mod held {
    //! The per-thread held-rank stack (debug builds only).
    use std::cell::{Cell, RefCell};

    thread_local! {
        /// Ranks this thread currently holds: `(rank, entry id, name)`.
        static STACK: RefCell<Vec<(u16, u64, &'static str)>> = const { RefCell::new(Vec::new()) };
        /// Entry-id source: guards can be dropped out of acquisition
        /// order (that is legal), so releases erase by id, not by pop.
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    /// Records an acquisition; panics on rank inversion when `check`.
    pub fn acquire(rank: u16, name: &'static str, check: bool) -> u64 {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if check {
                if let Some(&(held_rank, _, held_name)) = stack.iter().find(|&&(r, _, _)| r >= rank)
                {
                    panic!(
                        "lock rank inversion: acquiring `{name}` (rank {rank}) while holding \
                         `{held_name}` (rank {held_rank}); ranks must strictly increase \
                         (held: {:?})",
                        stack.iter().map(|&(r, _, n)| (n, r)).collect::<Vec<_>>()
                    );
                }
            }
            let id = NEXT_ID.with(|n| {
                let id = n.get();
                n.set(id + 1);
                id
            });
            stack.push((rank, id, name));
            id
        })
    }

    /// Erases entry `id` (guards may drop in any order).
    pub fn release(id: u64) {
        // `let _ = ...` instead of unwrap: thread-local storage may
        // already be torn down when guards drop during thread exit.
        let _ = STACK.try_with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, i, _)| i == id) {
                stack.remove(pos);
            }
        });
    }
}

/// A mutex with a static acquisition rank (see the module docs).
pub struct OrderedMutex<T> {
    rank: u16,
    name: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex named `name` at acquisition rank `rank`,
    /// protecting `value`.
    pub const fn new(rank: u16, name: &'static str, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            rank,
            name,
            inner: sync::Mutex::new(value),
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// This lock's name (used in inversion panics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Debug builds panic if this thread already holds a lock of equal
    /// or greater rank (a lock-order violation: some other thread could
    /// legally acquire the same pair in the opposite order and deadlock).
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let entry = held::acquire(self.rank, self.name, true);
        OrderedGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(debug_assertions)]
            entry,
        }
    }

    /// Tries to acquire without blocking. Exempt from the order check
    /// (a non-blocking acquisition can never complete a wait cycle),
    /// but the held rank is recorded for later checks.
    pub fn try_lock(&self) -> Option<OrderedGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let entry = held::acquire(self.rank, self.name, false);
        Some(OrderedGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            entry,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard returned by [`OrderedMutex::lock`].
///
/// The inner `Option` is an implementation detail of [`Condvar`]: a wait
/// takes the `std` guard out, parks, and puts the re-acquired guard
/// back. It is `Some` at every point user code can observe.
pub struct OrderedGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    entry: u64,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::release(self.entry);
    }
}

/// Result of a timed [`Condvar::wait_for`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`OrderedMutex`], parking_lot-style:
/// waits take `&mut` guard and re-establish it in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the lock while waiting. The
    /// lock's rank stays on this thread's held stack for the duration
    /// (see the module docs).
    pub fn wait<T>(&self, guard: &mut OrderedGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, r) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(r.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = OrderedMutex::new(10, "m", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn increasing_rank_acquisition_is_fine() {
        let low = OrderedMutex::new(10, "low", ());
        let high = OrderedMutex::new(20, "high", ());
        let _a = low.lock();
        let _b = high.lock();
    }

    #[test]
    fn out_of_order_guard_drops_are_fine() {
        let a = OrderedMutex::new(10, "a", ());
        let b = OrderedMutex::new(20, "b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
        // The stack is clean: a fresh low-rank acquisition must pass.
        let _ = a.lock();
    }

    #[test]
    fn sequential_same_rank_is_fine() {
        let a = OrderedMutex::new(10, "a", ());
        let b = OrderedMutex::new(10, "b", ());
        drop(a.lock());
        drop(b.lock());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank inversion"))]
    fn rank_inversion_panics_in_debug() {
        let low = OrderedMutex::new(10, "low", ());
        let high = OrderedMutex::new(20, "high", ());
        let _b = high.lock();
        let _a = low.lock();
        // Release builds compile the check out; make the test fail its
        // `should_panic` expectation only where the teeth exist.
        #[cfg(not(debug_assertions))]
        panic!("lock rank inversion checks are debug-only");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank inversion"))]
    fn same_rank_nesting_panics_in_debug() {
        let a = OrderedMutex::new(10, "a", ());
        let b = OrderedMutex::new(10, "b", ());
        let _ga = a.lock();
        let _gb = b.lock();
        #[cfg(not(debug_assertions))]
        panic!("lock rank inversion checks are debug-only");
    }

    #[test]
    fn try_lock_skips_the_order_check_but_records_the_rank() {
        let low = OrderedMutex::new(10, "low", ());
        let high = OrderedMutex::new(20, "high", ());
        let _b = high.lock();
        // Non-blocking: allowed even though the order is wrong.
        let _a = low.try_lock().expect("uncontended");
        // ...but `low` is now on the stack, so a blocking acquisition
        // ranked at or under 10 must still trip in debug builds.
        #[cfg(debug_assertions)]
        {
            let c = OrderedMutex::new(5, "c", ());
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = c.lock();
            }));
            assert!(r.is_err(), "rank recorded by try_lock must be checked");
        }
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((OrderedMutex::new(10, "gate", false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = OrderedMutex::new(10, "m", ());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn guard_usable_after_wait() {
        let m = OrderedMutex::new(10, "m", 7);
        let cv = Condvar::new();
        let mut g = m.lock();
        let _ = cv.wait_for(&mut g, Duration::from_millis(1));
        *g += 1;
        assert_eq!(*g, 8);
    }
}
