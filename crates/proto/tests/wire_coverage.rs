//! Exhaustive wire coverage: one literal value of **every** [`Msg`]
//! variant and every concrete `Wire` type, pushed through roundtrip,
//! truncation, and byte-mutation decoding.
//!
//! The `stdchk-analyze` `wire-msg-coverage` rule checks that each name
//! in the protocol's tag table and each `impl Wire for` target is
//! referenced by this directory — this file is where a new message
//! variant must show up before the linter goes green, which forces the
//! garbage-decode guarantee ("corrupt bytes error, never panic") to
//! extend to every new decoder arm from the day it is merged.

use bytes::Bytes;
use proptest::prelude::*;

use stdchk_proto::chunkmap::{ChunkEntry, ChunkMap, FileVersionView};
use stdchk_proto::codec::Wire;
use stdchk_proto::error::ErrorCode;
use stdchk_proto::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::meta::{MetaRecord, MetaSnapshot, SnapshotChunk, SnapshotFile, SnapshotVersion};
use stdchk_proto::msg::{DedupSummary, DirEntry, FileAttr, Msg, ReplicaCopy, Role, VersionInfo};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

fn attr() -> FileAttr {
    FileAttr {
        size: 4096,
        versions: 3,
        latest: VersionId(7),
        mtime: Time(1_000_000),
        is_dir: false,
    }
}

fn entries() -> Vec<ChunkEntry> {
    vec![
        ChunkEntry {
            id: ChunkId::test_id(1),
            size: 1024,
        },
        ChunkEntry {
            id: ChunkId::test_id(2),
            size: 512,
        },
    ]
}

fn placements() -> Vec<(ChunkId, Vec<NodeId>)> {
    vec![
        (ChunkId::test_id(1), vec![NodeId(4), NodeId(5)]),
        (ChunkId::test_id(2), vec![NodeId(6)]),
    ]
}

/// One literal value per `Msg` variant, in wire-tag order.
fn one_of_each() -> Vec<Msg> {
    let req = RequestId(42);
    vec![
        Msg::Hello {
            role: Role::Benefactor,
            node: NodeId(3),
        },
        Msg::Ack { req },
        Msg::ErrorReply {
            req,
            code: ErrorCode::NotFound,
            detail: String::from("no such path"),
        },
        Msg::Ping { nonce: 9 },
        Msg::Pong { nonce: 9 },
        Msg::CreateFile {
            req,
            client: NodeId(1),
            path: "/app/ckpt.0".into(),
            stripe_width: 4,
            replication: 2,
            expected_chunks: 128,
        },
        Msg::CreateFileOk {
            req,
            file: FileId(10),
            version: VersionId(11),
            reservation: ReservationId(12),
            stripe: vec![NodeId(4), NodeId(5)],
            prev_chunks: entries(),
            chunk_size: 1 << 20,
        },
        Msg::ExtendReservation {
            req,
            reservation: ReservationId(12),
            additional_chunks: 16,
        },
        Msg::ExtendOk {
            req,
            stripe: vec![NodeId(4)],
        },
        Msg::CommitChunkMap {
            req,
            reservation: ReservationId(12),
            entries: entries(),
            placements: placements(),
            pessimistic: true,
            dedup: DedupSummary {
                offered: 2,
                wanted: 1,
                reused_bytes: 1024,
                delta_bytes: 0,
                full_bytes: 512,
            },
        },
        Msg::CommitOk {
            req,
            file: FileId(10),
            version: VersionId(11),
            suggested_interval: Dur::from_nanos(30_000_000_000),
        },
        Msg::AbortWrite {
            req,
            reservation: ReservationId(12),
        },
        Msg::GetFile {
            req,
            path: "/app/ckpt.0".into(),
            version: Some(VersionId(11)),
        },
        Msg::FileViewReply {
            req,
            view: FileVersionView {
                version: VersionId(11),
                map: ChunkMap::from_entries(entries()),
                locations: placements(),
            },
        },
        Msg::ListDir {
            req,
            path: "/app".into(),
        },
        Msg::DirListingReply {
            req,
            entries: vec![DirEntry {
                name: "ckpt.0".into(),
                attr: attr(),
            }],
        },
        Msg::GetAttr {
            req,
            path: "/app/ckpt.0".into(),
        },
        Msg::AttrReply { req, attr: attr() },
        Msg::ListVersions {
            req,
            path: "/app/ckpt.0".into(),
        },
        Msg::VersionListReply {
            req,
            versions: vec![VersionInfo {
                version: VersionId(11),
                size: 4096,
                mtime: Time(1_000_000),
            }],
        },
        Msg::DeleteFile {
            req,
            path: "/app/ckpt.0".into(),
        },
        Msg::SetPolicy {
            req,
            dir: "/app".into(),
            policy: RetentionPolicy::AutomatedReplace { keep_last: 2 },
            repl_bounds: Some((1, 4)),
        },
        Msg::ResolveNodes {
            req,
            nodes: vec![NodeId(4), NodeId(5)],
        },
        Msg::NodeAddrsReply {
            req,
            addrs: vec![(NodeId(4), String::from("127.0.0.1:4000"))],
        },
        Msg::OfferChunks {
            req,
            reservation: ReservationId(12),
            entries: entries(),
        },
        Msg::WantChunks {
            req,
            wanted: vec![0, 1],
        },
        Msg::JoinRequest {
            req,
            addr: "127.0.0.1:5000".into(),
            total_space: 1 << 30,
        },
        Msg::JoinOk {
            req,
            node: NodeId(4),
            heartbeat_every: Dur::from_nanos(5_000_000_000),
        },
        Msg::Heartbeat {
            node: NodeId(4),
            free_space: 1 << 29,
            total_space: 1 << 30,
            addr: "127.0.0.1:5000".into(),
        },
        Msg::HeartbeatAck {
            node: NodeId(4),
            gc_due: true,
        },
        Msg::GcReport {
            req,
            node: NodeId(4),
            chunks: vec![ChunkId::test_id(1)],
        },
        Msg::GcReply {
            req,
            deletable: vec![ChunkId::test_id(2)],
        },
        Msg::ReplicateCmd {
            job: 77,
            copies: vec![ReplicaCopy {
                chunk: ChunkId::test_id(1),
                target: NodeId(5),
            }],
        },
        Msg::ReplicateReport {
            job: 77,
            node: NodeId(4),
            done: vec![ReplicaCopy {
                chunk: ChunkId::test_id(1),
                target: NodeId(5),
            }],
            failed: vec![],
        },
        Msg::DeleteChunks {
            chunks: vec![ChunkId::test_id(2)],
        },
        Msg::StashCommit {
            req,
            path: "/app/ckpt.0".into(),
            entries: entries(),
            placements: placements(),
        },
        Msg::ReofferCommit {
            req,
            node: NodeId(4),
            path: "/app/ckpt.0".into(),
            entries: entries(),
            placements: placements(),
        },
        Msg::PutChunk {
            req,
            chunk: ChunkId::test_id(1),
            size: 4,
            data: Bytes::from_static(b"data"),
            background: false,
        },
        Msg::PutChunkOk {
            req,
            chunk: ChunkId::test_id(1),
            node: NodeId(4),
        },
        Msg::GetChunk {
            req,
            chunk: ChunkId::test_id(1),
        },
        Msg::GetChunkOk {
            req,
            chunk: ChunkId::test_id(1),
            size: 4,
            data: Bytes::from_static(b"data"),
        },
        Msg::DeltaPutChunk {
            req,
            chunk: ChunkId::test_id(3),
            basis: ChunkId::test_id(1),
            size: 4,
            delta: Bytes::from_static(b"\x01\x02"),
        },
    ]
}

/// The protocol's full tag table. A variant added to `msg_tags!` without
/// a matching entry in [`one_of_each`] fails the completeness test
/// below (and the analyzer's `wire-msg-coverage` rule names it).
const ALL_TAGS: &[u8] = &[
    0, 1, 2, 3, 4, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29,
    30, 40, 41, 42, 43, 44, 45, 46, 47, 48, 50, 51, 60, 61, 62, 63, 64,
];

#[test]
fn one_of_each_covers_every_wire_tag() {
    let mut tags: Vec<u8> = one_of_each().iter().map(Msg::wire_tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, ALL_TAGS, "one_of_each() out of sync with msg_tags!");
}

#[test]
fn every_variant_roundtrips() {
    for m in one_of_each() {
        let bytes = m.to_wire_bytes();
        let back = Msg::from_wire_bytes(&bytes)
            .unwrap_or_else(|e| panic!("tag {} failed to decode: {e:?}", m.wire_tag()));
        assert_eq!(m, back, "tag {} did not roundtrip", m.wire_tag());
    }
}

#[test]
fn every_truncation_errors_without_panic() {
    // Every strict prefix of every encoding must produce a clean error:
    // a truncated frame is the normal shape of a torn WAL tail or a cut
    // connection, never a panic.
    for m in one_of_each() {
        let bytes = m.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Msg::from_wire_bytes(&bytes[..cut]).is_err(),
                "tag {} decoded from a {cut}-byte prefix of {} bytes",
                m.wire_tag(),
                bytes.len()
            );
        }
    }
}

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_wire_bytes();
    assert_eq!(v, &T::from_wire_bytes(&bytes).expect("decode"));
}

#[test]
fn primitive_and_aggregate_wire_impls_roundtrip() {
    roundtrip(&0x5au8);
    roundtrip(&0xdead_beefu32);
    roundtrip(&0x0123_4567_89ab_cdefu64);
    roundtrip(&true);
    roundtrip(&String::from("π/2 and a \0 byte"));
    roundtrip(&Bytes::from_static(b"\x00\x01\xff"));
    roundtrip(&ChunkId::test_id(99));
    roundtrip(&Time(123_456_789));
    roundtrip(&Dur::from_nanos(42));
    roundtrip(&Role::Manager);
    roundtrip(&ErrorCode::Unavailable);
    roundtrip(&attr());
    roundtrip(&DirEntry {
        name: "x".into(),
        attr: attr(),
    });
    roundtrip(&VersionInfo {
        version: VersionId(1),
        size: 2,
        mtime: Time(3),
    });
    roundtrip(&ReplicaCopy {
        chunk: ChunkId::test_id(1),
        target: NodeId(2),
    });
    roundtrip(&DedupSummary::default());
    roundtrip(&ChunkEntry {
        id: ChunkId::test_id(1),
        size: 7,
    });
    roundtrip(&RetentionPolicy::AutomatedPurge {
        after: Dur::from_nanos(1),
    });
}

fn snapshot() -> MetaSnapshot {
    MetaSnapshot {
        next_node: 5,
        next_file: 11,
        next_version: 12,
        benefactors: vec![(NodeId(4), String::from("127.0.0.1:5000"), 1 << 30)],
        files: vec![SnapshotFile {
            path: "/app/ckpt.0".into(),
            id: FileId(10),
            replication: 2,
            versions: vec![SnapshotVersion {
                version: VersionId(11),
                mtime: Time(1_000_000),
                entries: entries(),
            }],
        }],
        dirs: vec![(String::from("/app"), RetentionPolicy::NoIntervention)],
        repl_bounds: vec![(String::from("/app"), (1, 4))],
        chunks: vec![SnapshotChunk {
            id: ChunkId::test_id(1),
            size: 1024,
            target: 2,
            locations: vec![NodeId(4), NodeId(5)],
        }],
    }
}

#[test]
fn meta_snapshot_and_records_roundtrip() {
    roundtrip(&snapshot());
    let records = vec![
        MetaRecord::Commit {
            path: "/app/ckpt.0".into(),
            file: FileId(10),
            version: VersionId(11),
            mtime: Time(1_000_000),
            entries: entries(),
            placements: placements(),
            replication: 2,
        },
        MetaRecord::Prune {
            path: "/app/ckpt.0".into(),
            versions: vec![VersionId(9)],
        },
        MetaRecord::Delete {
            path: "/app/ckpt.0".into(),
        },
        MetaRecord::SetPolicy {
            dir: "/app".into(),
            policy: RetentionPolicy::AutomatedReplace { keep_last: 2 },
            repl_bounds: None,
        },
        MetaRecord::Benefactor {
            node: NodeId(4),
            addr: "127.0.0.1:5000".into(),
            total: 1 << 30,
        },
        MetaRecord::Churn {
            node: NodeId(4),
            session: Dur::from_nanos(60_000_000_000),
        },
    ];
    for r in &records {
        roundtrip(r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Single-byte corruption of a valid encoding of any variant must
    // decode to Ok (an accidental valid reading) or Err — never panic,
    // never hang. Exercises every decoder arm with near-valid input,
    // which random byte soup essentially never reaches.
    #[test]
    fn mutated_encodings_never_panic(
        which in 0usize..42,
        pos_seed in any::<usize>(),
        xor in 1u8..255,
    ) {
        let msgs = one_of_each();
        let mut bytes = msgs[which % msgs.len()].to_wire_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        let _ = Msg::from_wire_bytes(&bytes);
    }

    // Same, for the WAL snapshot decoder (bit rot that still passes the
    // log CRC must surface as an error).
    #[test]
    fn mutated_snapshot_never_panics(pos_seed in any::<usize>(), xor in 1u8..255) {
        let mut bytes = snapshot().to_wire_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        let _ = MetaSnapshot::from_wire_bytes(&bytes);
    }
}
