//! Property tests for the incremental frame codec: under *any*
//! fragmentation of the byte stream — 1-byte drips, frame-straddling
//! chunks, many frames coalesced into one read — [`FrameDecoder`] must
//! decode exactly the messages the blocking [`read_frame`] reader yields,
//! and agree with it on oversize-frame rejection and torn-EOF detection.

use bytes::Bytes;
use proptest::prelude::*;

use stdchk_proto::frame::{encode_frame, read_frame, FrameDecoder, FrameEncoder, MAX_FRAME};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::{Msg, Role};

/// Messages skewed toward the shapes that stress an incremental decoder:
/// payload-bearing data-path frames next to tiny control frames.
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        any::<u64>().prop_map(|r| Msg::Ack { req: RequestId(r) }),
        any::<u64>().prop_map(|n| Msg::Ping { nonce: n }),
        (any::<u64>(), 0u8..2).prop_map(|(n, r)| Msg::Hello {
            role: if r == 0 {
                Role::Client
            } else {
                Role::Benefactor
            },
            node: NodeId(n),
        }),
        (any::<u64>(), ".{0,40}").prop_map(|(r, path)| Msg::GetAttr {
            req: RequestId(r),
            path,
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            any::<bool>()
        )
            .prop_map(|(r, data, background)| Msg::PutChunk {
                req: RequestId(r),
                chunk: ChunkId::for_content(&data),
                size: data.len() as u32,
                data: Bytes::from(data),
                background,
            }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(|(r, data)| {
            Msg::GetChunkOk {
                req: RequestId(r),
                chunk: ChunkId::for_content(&data),
                size: data.len() as u32,
                data: Bytes::from(data),
            }
        }),
    ]
}

/// Decodes `wire` with the blocking reader until EOF; `Err` means the
/// stream ended mid-frame or carried an undecodable body.
fn blocking_decode(wire: &[u8]) -> Result<Vec<Msg>, ()> {
    let mut cursor = std::io::Cursor::new(wire);
    let mut out = Vec::new();
    loop {
        match read_frame(&mut cursor) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => return Ok(out),
            Err(_) => return Err(()),
        }
    }
}

/// Feeds `wire` to an incremental decoder in pieces given by cycling
/// `cuts`; mirrors `blocking_decode`'s result shape (torn EOF = `Err`).
fn incremental_decode(wire: &[u8], cuts: &[usize]) -> Result<Vec<Msg>, ()> {
    let mut dec = FrameDecoder::new(MAX_FRAME);
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut cut_iter = cuts.iter().cycle();
    while pos < wire.len() {
        let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
        dec.feed(&wire[pos..pos + step], &mut out).map_err(|_| ())?;
        pos += step;
    }
    if dec.mid_frame() {
        return Err(());
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Well-formed streams: every fragmentation decodes the same messages
    // the blocking reader sees, including drips of a single byte.
    #[test]
    fn incremental_equals_blocking_on_clean_streams(
        msgs in proptest::collection::vec(arb_msg(), 0..6),
        cuts in proptest::collection::vec(1usize..96, 1..24),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        let blocking = blocking_decode(&wire).expect("clean stream");
        prop_assert_eq!(&blocking, &msgs);
        prop_assert_eq!(incremental_decode(&wire, &cuts).expect("clean stream"), msgs.clone());
        prop_assert_eq!(incremental_decode(&wire, &[1]).expect("1-byte drip"), msgs);
    }

    // Truncated streams: wherever the stream tears, blocking and
    // incremental agree on the prefix of messages decoded before the torn
    // frame, and both flag the tear (unless the cut lands exactly on a
    // frame boundary — a clean EOF for both).
    #[test]
    fn incremental_equals_blocking_on_torn_streams(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        cuts in proptest::collection::vec(1usize..64, 1..16),
        tear_seed in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        let cut = ((wire.len() as f64) * tear_seed) as usize;
        let torn = &wire[..cut];
        let blocking = blocking_decode(torn);
        let incremental = incremental_decode(torn, &cuts);
        match (blocking, incremental) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(()), Err(())) => {}
            (a, b) => prop_assert!(false, "blocking={a:?} incremental={b:?} at cut {cut}"),
        }
    }

    // Oversize declarations: both readers reject a header whose length
    // exceeds the limit, regardless of how the header bytes arrive.
    #[test]
    fn oversize_frames_rejected_like_blocking(
        excess in 1u32..1024,
        limit in 8u32..4096,
        cuts in proptest::collection::vec(1usize..8, 1..8),
    ) {
        let declared = limit + excess;
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&vec![0u8; (declared as usize).min(64)]);
        // Blocking reader with the same limit semantics: MAX_FRAME is
        // compile-time there, so emulate by checking the decoder only.
        let mut dec = FrameDecoder::new(limit);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        let mut rejected = false;
        while pos < wire.len() {
            let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
            if dec.feed(&wire[pos..pos + step], &mut out).is_err() {
                rejected = true;
                break;
            }
            pos += step;
        }
        prop_assert!(rejected, "declared {declared} > limit {limit} must be rejected");
        prop_assert!(out.is_empty());
        prop_assert!(dec.is_poisoned());
    }

    // Encoder → decoder: a stream produced through the resumable encoder
    // under arbitrary write budgets decodes to the original messages.
    #[test]
    fn encoder_stream_roundtrips(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        budgets in proptest::collection::vec(1usize..48, 1..16),
    ) {
        struct Throttle<'a> {
            out: Vec<u8>,
            budgets: std::iter::Cycle<std::slice::Iter<'a, usize>>,
        }
        impl std::io::Write for Throttle<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = (*self.budgets.next().unwrap()).min(buf.len());
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut enc = FrameEncoder::new();
        for (i, m) in msgs.iter().enumerate() {
            enc.push_tracked(m, Some(i as u64));
        }
        let mut sink = Throttle { out: Vec::new(), budgets: budgets.iter().cycle() };
        let mut completed = Vec::new();
        while !enc.write_to(&mut sink, &mut completed).unwrap() {}
        prop_assert_eq!(completed, (0..msgs.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(blocking_decode(&sink.out).unwrap(), msgs);
    }
}
