//! Property tests for the incremental frame codec: under *any*
//! fragmentation of the byte stream — 1-byte drips, frame-straddling
//! chunks, many frames coalesced into one read — [`FrameDecoder`] must
//! decode exactly the messages the blocking [`read_frame`] reader yields,
//! and agree with it on oversize-frame rejection and torn-EOF detection.

use bytes::Bytes;
use proptest::prelude::*;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::frame::{encode_frame, read_frame, FrameDecoder, FrameEncoder, MAX_FRAME};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, ReservationId};
use stdchk_proto::msg::{Msg, Role};

/// Offer batches as the dedup negotiation produces them: hashes of small
/// arbitrary contents with independent sizes.
fn arb_entries() -> impl Strategy<Value = Vec<ChunkEntry>> {
    proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 0..16), 1u32..1 << 20),
        0..12,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(content, size)| ChunkEntry {
                id: ChunkId::for_content(&content),
                size,
            })
            .collect()
    })
}

/// The dedup negotiation's wire messages (have/want + delta transfer).
fn arb_dedup_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_entries()).prop_map(|(r, res, entries)| {
            Msg::OfferChunks {
                req: RequestId(r),
                reservation: ReservationId(res),
                entries,
            }
        }),
        (any::<u64>(), proptest::collection::vec(any::<u32>(), 0..16)).prop_map(|(r, wanted)| {
            Msg::WantChunks {
                req: RequestId(r),
                wanted,
            }
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            proptest::collection::vec(any::<u8>(), 0..16),
            any::<u32>(),
        )
            .prop_map(|(r, delta, basis, size)| Msg::DeltaPutChunk {
                req: RequestId(r),
                chunk: ChunkId::for_content(&delta),
                basis: ChunkId::for_content(&basis),
                size,
                delta: Bytes::from(delta),
            }),
    ]
}

/// Messages skewed toward the shapes that stress an incremental decoder:
/// payload-bearing data-path frames next to tiny control frames.
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_dedup_msg(),
        any::<u64>().prop_map(|r| Msg::Ack { req: RequestId(r) }),
        any::<u64>().prop_map(|n| Msg::Ping { nonce: n }),
        (any::<u64>(), 0u8..2).prop_map(|(n, r)| Msg::Hello {
            role: if r == 0 {
                Role::Client
            } else {
                Role::Benefactor
            },
            node: NodeId(n),
        }),
        (any::<u64>(), ".{0,40}").prop_map(|(r, path)| Msg::GetAttr {
            req: RequestId(r),
            path,
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            any::<bool>()
        )
            .prop_map(|(r, data, background)| Msg::PutChunk {
                req: RequestId(r),
                chunk: ChunkId::for_content(&data),
                size: data.len() as u32,
                data: Bytes::from(data),
                background,
            }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(|(r, data)| {
            Msg::GetChunkOk {
                req: RequestId(r),
                chunk: ChunkId::for_content(&data),
                size: data.len() as u32,
                data: Bytes::from(data),
            }
        }),
    ]
}

/// Decodes `wire` with the blocking reader until EOF; `Err` means the
/// stream ended mid-frame or carried an undecodable body.
fn blocking_decode(wire: &[u8]) -> Result<Vec<Msg>, ()> {
    let mut cursor = std::io::Cursor::new(wire);
    let mut out = Vec::new();
    loop {
        match read_frame(&mut cursor) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => return Ok(out),
            Err(_) => return Err(()),
        }
    }
}

/// Feeds `wire` to an incremental decoder in pieces given by cycling
/// `cuts`; mirrors `blocking_decode`'s result shape (torn EOF = `Err`).
fn incremental_decode(wire: &[u8], cuts: &[usize]) -> Result<Vec<Msg>, ()> {
    let mut dec = FrameDecoder::new(MAX_FRAME);
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut cut_iter = cuts.iter().cycle();
    while pos < wire.len() {
        let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
        dec.feed(&wire[pos..pos + step], &mut out).map_err(|_| ())?;
        pos += step;
    }
    if dec.mid_frame() {
        return Err(());
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Well-formed streams: every fragmentation decodes the same messages
    // the blocking reader sees, including drips of a single byte.
    #[test]
    fn incremental_equals_blocking_on_clean_streams(
        msgs in proptest::collection::vec(arb_msg(), 0..6),
        cuts in proptest::collection::vec(1usize..96, 1..24),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        let blocking = blocking_decode(&wire).expect("clean stream");
        prop_assert_eq!(&blocking, &msgs);
        prop_assert_eq!(incremental_decode(&wire, &cuts).expect("clean stream"), msgs.clone());
        prop_assert_eq!(incremental_decode(&wire, &[1]).expect("1-byte drip"), msgs);
    }

    // Truncated streams: wherever the stream tears, blocking and
    // incremental agree on the prefix of messages decoded before the torn
    // frame, and both flag the tear (unless the cut lands exactly on a
    // frame boundary — a clean EOF for both).
    #[test]
    fn incremental_equals_blocking_on_torn_streams(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        cuts in proptest::collection::vec(1usize..64, 1..16),
        tear_seed in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        let cut = ((wire.len() as f64) * tear_seed) as usize;
        let torn = &wire[..cut];
        let blocking = blocking_decode(torn);
        let incremental = incremental_decode(torn, &cuts);
        match (blocking, incremental) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(()), Err(())) => {}
            (a, b) => prop_assert!(false, "blocking={a:?} incremental={b:?} at cut {cut}"),
        }
    }

    // Oversize declarations: both readers reject a header whose length
    // exceeds the limit, regardless of how the header bytes arrive.
    #[test]
    fn oversize_frames_rejected_like_blocking(
        excess in 1u32..1024,
        limit in 8u32..4096,
        cuts in proptest::collection::vec(1usize..8, 1..8),
    ) {
        let declared = limit + excess;
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&vec![0u8; (declared as usize).min(64)]);
        // Blocking reader with the same limit semantics: MAX_FRAME is
        // compile-time there, so emulate by checking the decoder only.
        let mut dec = FrameDecoder::new(limit);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        let mut rejected = false;
        while pos < wire.len() {
            let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
            if dec.feed(&wire[pos..pos + step], &mut out).is_err() {
                rejected = true;
                break;
            }
            pos += step;
        }
        prop_assert!(rejected, "declared {declared} > limit {limit} must be rejected");
        prop_assert!(out.is_empty());
        prop_assert!(dec.is_poisoned());
    }

    // Encoder → decoder: a stream produced through the resumable encoder
    // under arbitrary write budgets decodes to the original messages.
    #[test]
    fn encoder_stream_roundtrips(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        budgets in proptest::collection::vec(1usize..48, 1..16),
    ) {
        struct Throttle<'a> {
            out: Vec<u8>,
            budgets: std::iter::Cycle<std::slice::Iter<'a, usize>>,
        }
        impl std::io::Write for Throttle<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = (*self.budgets.next().unwrap()).min(buf.len());
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut enc = FrameEncoder::new();
        for (i, m) in msgs.iter().enumerate() {
            enc.push_tracked(m, Some(i as u64));
        }
        let mut sink = Throttle { out: Vec::new(), budgets: budgets.iter().cycle() };
        let mut completed = Vec::new();
        while !enc.write_to(&mut sink, &mut completed).unwrap() {}
        prop_assert_eq!(completed, (0..msgs.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(blocking_decode(&sink.out).unwrap(), msgs);
    }

    // Vectored transmit byte-identity: the writev encoder (payloads kept
    // as shared segments, header/payload/tail gathered into IoSlices)
    // must put exactly the bytes on the wire that flattening every frame
    // with `encode_frame` would, under arbitrary short-write schedules
    // that cut mid-header, mid-payload and mid-tail — and complete
    // tracked frames in the same order.
    #[test]
    fn vectored_encoder_matches_flattened_bytes(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        budgets in proptest::collection::vec(1usize..48, 1..16),
    ) {
        struct VectoredThrottle<'a> {
            out: Vec<u8>,
            budgets: std::iter::Cycle<std::slice::Iter<'a, usize>>,
        }
        impl std::io::Write for VectoredThrottle<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = (*self.budgets.next().unwrap()).min(buf.len());
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
                // A real writev: one budget spread across the slices.
                let mut budget = *self.budgets.next().unwrap();
                let mut written = 0usize;
                for b in bufs {
                    let n = budget.min(b.len());
                    self.out.extend_from_slice(&b[..n]);
                    written += n;
                    budget -= n;
                    if budget == 0 {
                        break;
                    }
                }
                Ok(written)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut baseline = Vec::new();
        for m in &msgs {
            baseline.extend_from_slice(&encode_frame(m));
        }
        let mut enc = FrameEncoder::with_vectored(true);
        for (i, m) in msgs.iter().enumerate() {
            enc.push_tracked(m, Some(i as u64));
        }
        let mut sink = VectoredThrottle { out: Vec::new(), budgets: budgets.iter().cycle() };
        let mut completed = Vec::new();
        while !enc.write_to(&mut sink, &mut completed).unwrap() {}
        prop_assert_eq!(completed, (0..msgs.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(&sink.out, &baseline);
        prop_assert_eq!(blocking_decode(&sink.out).unwrap(), msgs);
    }

    // Dedup negotiation messages survive a frame round trip exactly.
    #[test]
    fn dedup_messages_roundtrip(msg in arb_dedup_msg()) {
        let wire = encode_frame(&msg);
        let body = Bytes::from(wire[4..].to_vec());
        prop_assert_eq!(Msg::from_frame(&body).expect("clean frame"), msg);
    }

    // Mangled dedup frames: truncations, trailing garbage, and byte flips
    // must yield a decode error (or a different message), never a panic.
    #[test]
    fn mangled_dedup_frames_never_panic(
        msg in arb_dedup_msg(),
        cut_seed in 0.0f64..1.0,
        flip_seed in 0.0f64..1.0,
        flip_bit in 0u8..8,
        trailing in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let body = encode_frame(&msg)[4..].to_vec();
        // Truncation: anything short of the full body is torn.
        let cut = ((body.len() as f64) * cut_seed) as usize;
        if cut < body.len() {
            let torn = Bytes::from(body[..cut].to_vec());
            prop_assert!(Msg::from_frame(&torn).is_err(), "truncated at {cut}");
        }
        // Trailing bytes: from_frame demands full consumption.
        let mut padded = body.clone();
        padded.extend_from_slice(&trailing);
        prop_assert!(Msg::from_frame(&Bytes::from(padded)).is_err());
        // A flipped bit decodes to an error or to something != original —
        // the decoder must stay total either way.
        let mut flipped = body.clone();
        let at = ((flipped.len() as f64) * flip_seed) as usize;
        if at < flipped.len() {
            flipped[at] ^= 1 << flip_bit;
            if let Ok(decoded) = Msg::from_frame(&Bytes::from(flipped)) {
                prop_assert_ne!(decoded, msg);
            }
        }
    }

    // Zero-copy delta payloads: `Msg::from_frame` must hand back a `delta`
    // that aliases the frame's backing buffer, not a fresh allocation —
    // the reactor's decode path depends on this to avoid copying every
    // delta body.
    #[test]
    fn delta_payload_slices_frame_buffer(
        delta in proptest::collection::vec(any::<u8>(), 1..2048),
        req in any::<u64>(),
        size in any::<u32>(),
    ) {
        let msg = Msg::DeltaPutChunk {
            req: RequestId(req),
            chunk: ChunkId::for_content(&delta),
            basis: ChunkId::for_content(b"basis"),
            size,
            delta: Bytes::from(delta),
        };
        let frame = Bytes::from(encode_frame(&msg)[4..].to_vec());
        let Msg::DeltaPutChunk { delta: decoded, .. } = Msg::from_frame(&frame).unwrap() else {
            panic!("wrong variant");
        };
        let buf = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        let got = decoded.as_ptr() as usize;
        prop_assert!(
            buf.contains(&got) && buf.contains(&(got + decoded.len() - 1)),
            "delta payload was copied out of the frame buffer"
        );
    }
}
