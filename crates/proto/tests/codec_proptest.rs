//! Property tests: randomized messages round-trip through the wire codec,
//! and arbitrary byte soup never panics the decoder.

use bytes::Bytes;
use proptest::prelude::*;

use stdchk_proto::chunkmap::{ChunkEntry, ChunkMap, FileVersionView};
use stdchk_proto::codec::Wire;
use stdchk_proto::frame::FrameBuf;
use stdchk_proto::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::msg::{DedupSummary, FileAttr, Msg, ReplicaCopy, Role};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

fn arb_chunk_id() -> impl Strategy<Value = ChunkId> {
    any::<u64>().prop_map(ChunkId::test_id)
}

fn arb_entry() -> impl Strategy<Value = ChunkEntry> {
    (any::<u64>(), 0u32..(8 << 20)).prop_map(|(n, size)| ChunkEntry {
        id: ChunkId::test_id(n),
        size,
    })
}

fn arb_placements() -> impl Strategy<Value = Vec<(ChunkId, Vec<NodeId>)>> {
    proptest::collection::vec(
        (
            arb_chunk_id(),
            proptest::collection::vec(any::<u64>().prop_map(NodeId), 0..4),
        ),
        0..8,
    )
}

fn arb_policy() -> impl Strategy<Value = RetentionPolicy> {
    prop_oneof![
        Just(RetentionPolicy::NoIntervention),
        any::<u32>().prop_map(|k| RetentionPolicy::AutomatedReplace { keep_last: k }),
        any::<u64>().prop_map(|n| RetentionPolicy::AutomatedPurge {
            after: Dur::from_nanos(n)
        }),
    ]
}

fn arb_entries() -> impl Strategy<Value = Vec<ChunkEntry>> {
    proptest::collection::vec(arb_entry(), 0..16)
}

fn arb_dedup() -> impl Strategy<Value = DedupSummary> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(offered, wanted, reused, delta, full)| DedupSummary {
            offered,
            wanted,
            reused_bytes: reused,
            delta_bytes: delta,
            full_bytes: full,
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), 0u8..3).prop_map(|(n, r)| Msg::Hello {
            role: match r {
                0 => Role::Client,
                1 => Role::Benefactor,
                _ => Role::Manager,
            },
            node: NodeId(n),
        }),
        any::<u64>().prop_map(|r| Msg::Ack { req: RequestId(r) }),
        (any::<u64>(), ".*").prop_map(|(r, path)| Msg::GetFile {
            req: RequestId(r),
            path,
            version: None,
        }),
        (
            any::<u64>(),
            any::<u64>(),
            ".*",
            0u32..64,
            0u32..8,
            0u32..1024
        )
            .prop_map(|(r, c, path, sw, rep, exp)| Msg::CreateFile {
                req: RequestId(r),
                client: NodeId(c),
                path,
                stripe_width: sw,
                replication: rep,
                expected_chunks: exp,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            arb_entries(),
            arb_placements(),
            any::<bool>(),
            arb_dedup()
        )
            .prop_map(
                |(r, res, entries, placements, p, dedup)| Msg::CommitChunkMap {
                    req: RequestId(r),
                    reservation: ReservationId(res),
                    entries,
                    placements,
                    pessimistic: p,
                    dedup,
                },
            ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(r, f, v, g)| {
            Msg::CommitOk {
                req: RequestId(r),
                file: FileId(f),
                version: VersionId(v),
                suggested_interval: Dur::from_nanos(g),
            }
        }),
        (
            any::<u64>(),
            arb_chunk_id(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            any::<bool>()
        )
            .prop_map(|(r, c, data, bg)| Msg::PutChunk {
                req: RequestId(r),
                chunk: c,
                size: data.len() as u32,
                data: Bytes::from(data),
                background: bg,
            }),
        (any::<u64>(), arb_entries(), arb_placements(), any::<u64>()).prop_map(
            |(r, entries, locations, v)| {
                Msg::FileViewReply {
                    req: RequestId(r),
                    view: FileVersionView {
                        version: VersionId(v),
                        map: ChunkMap::from_entries(entries),
                        locations,
                    },
                }
            }
        ),
        (
            any::<u64>(),
            ".*",
            arb_policy(),
            prop_oneof![Just(None), (any::<u32>(), any::<u32>()).prop_map(Some)]
        )
            .prop_map(|(r, dir, policy, repl_bounds)| Msg::SetPolicy {
                req: RequestId(r),
                dir,
                policy,
                repl_bounds,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_chunk_id(), 0..64)
        )
            .prop_map(|(r, n, chunks)| Msg::GcReport {
                req: RequestId(r),
                node: NodeId(n),
                chunks,
            }),
        (
            any::<u64>(),
            proptest::collection::vec((arb_chunk_id(), any::<u64>()), 0..16)
        )
            .prop_map(|(job, pairs)| Msg::ReplicateCmd {
                job,
                copies: pairs
                    .into_iter()
                    .map(|(chunk, t)| ReplicaCopy {
                        chunk,
                        target: NodeId(t),
                    })
                    .collect(),
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(r, size, versions, mtime, is_dir)| Msg::AttrReply {
                req: RequestId(r),
                attr: FileAttr {
                    size,
                    versions,
                    latest: VersionId(1),
                    mtime: Time(mtime),
                    is_dir,
                },
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn msg_roundtrip(m in arb_msg()) {
        let bytes = m.to_wire_bytes();
        let back = Msg::from_wire_bytes(&bytes).expect("roundtrip decode");
        prop_assert_eq!(m, back);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok or Err, never panic.
        let _ = Msg::from_wire_bytes(&data);
    }

    #[test]
    fn meta_record_decoder_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        // WAL payloads go through the same codec; corrupt bytes that pass
        // the log CRC (bit rot) must error, never panic or OOM.
        let _ = stdchk_proto::meta::MetaRecord::from_wire_bytes(&data);
        let _ = stdchk_proto::meta::MetaSnapshot::from_wire_bytes(&data);
    }

    #[test]
    fn framebuf_reassembles_under_any_fragmentation(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        cuts in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&stdchk_proto::frame::encode_frame(m));
        }
        let mut fb = FrameBuf::new(stdchk_proto::frame::MAX_FRAME);
        let mut frames = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        while pos < wire.len() {
            let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
            frames.extend(fb.feed(&wire[pos..pos + step]).unwrap());
            pos += step;
        }
        prop_assert_eq!(frames.len(), msgs.len());
        for (f, m) in frames.iter().zip(&msgs) {
            prop_assert_eq!(&Msg::from_wire_bytes(f).unwrap(), m);
        }
    }
}
