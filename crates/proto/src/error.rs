//! Protocol-level error types and wire status codes.

use std::error::Error;
use std::fmt;

/// Status codes carried inside reply messages.
///
/// These describe *semantic* failures the remote side reports (file missing,
/// pool out of space, …), as opposed to [`ProtoError`] which describes
/// failures to parse bytes at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The named file, version or chunk does not exist.
    NotFound,
    /// The storage pool cannot satisfy the space reservation.
    NoSpace,
    /// The operation conflicts with current state (e.g. commit against a
    /// stale reservation, double-commit of a version).
    Conflict,
    /// The request was malformed at the semantic level.
    BadRequest,
    /// The contacted node cannot serve the request right now (e.g. benefactor
    /// departing, manager in recovery).
    Unavailable,
    /// Stored data failed its content-hash integrity check.
    Corrupt,
}

impl ErrorCode {
    /// Stable wire value of the code.
    pub fn to_wire(self) -> u8 {
        match self {
            ErrorCode::NotFound => 1,
            ErrorCode::NoSpace => 2,
            ErrorCode::Conflict => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Unavailable => 5,
            ErrorCode::Corrupt => 6,
        }
    }

    /// Parses a wire value.
    pub fn from_wire(v: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match v {
            1 => ErrorCode::NotFound,
            2 => ErrorCode::NoSpace,
            3 => ErrorCode::Conflict,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Unavailable,
            6 => ErrorCode::Corrupt,
            _ => return Err(ProtoError::bad(format!("unknown error code {v}"))),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::NotFound => "not found",
            ErrorCode::NoSpace => "no space",
            ErrorCode::Conflict => "conflict",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Corrupt => "corrupt data",
        };
        f.write_str(s)
    }
}

impl Error for ErrorCode {}

/// Failure to decode or frame protocol bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A tag, code, or length field held an invalid value.
    Malformed {
        /// Human-readable description.
        detail: String,
    },
    /// A frame length exceeded the configured maximum.
    FrameTooLarge {
        /// Length declared by the frame header.
        declared: u32,
        /// Maximum the reader accepts.
        max: u32,
    },
}

impl ProtoError {
    /// Convenience constructor for [`ProtoError::Malformed`].
    pub fn bad(detail: impl Into<String>) -> ProtoError {
        ProtoError::Malformed {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            ProtoError::Malformed { detail } => write!(f, "malformed message: {detail}"),
            ProtoError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds maximum {max}")
            }
        }
    }
}

impl Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_roundtrip() {
        for c in [
            ErrorCode::NotFound,
            ErrorCode::NoSpace,
            ErrorCode::Conflict,
            ErrorCode::BadRequest,
            ErrorCode::Unavailable,
            ErrorCode::Corrupt,
        ] {
            assert_eq!(ErrorCode::from_wire(c.to_wire()).unwrap(), c);
        }
        assert!(ErrorCode::from_wire(0).is_err());
        assert!(ErrorCode::from_wire(200).is_err());
    }

    #[test]
    fn displays_are_lowercase_no_punctuation() {
        let s = ProtoError::bad("x").to_string();
        assert!(!s.ends_with('.'));
        assert_eq!(ErrorCode::NoSpace.to_string(), "no space");
    }
}
