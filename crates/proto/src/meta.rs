//! Durable manager-metadata mutation records and snapshots.
//!
//! The manager's namespace — files, version history, chunk reference
//! counts, retention policies, benefactor membership — is soft state in
//! the paper: a crashed manager restarts empty and relies on benefactor
//! re-offers, which can recover chunk *commits* but not names, version
//! ids, or policies. To close that gap the manager write-ahead-logs every
//! namespace mutation as a [`MetaRecord`] and periodically serializes its
//! whole durable state as a [`MetaSnapshot`]; a restarted manager replays
//! snapshot + log and serves `stat`/`list`/`open` immediately, demoting
//! re-offers to a consistency-repair path.
//!
//! Both types use the same hand-written [`Wire`] encoding as the protocol
//! messages, so the log format inherits the codec's round-trip property
//! tests. Framing (length prefix, CRC, torn-tail recovery) is the log
//! engine's job (`stdchk-net`'s `log` module), not this module's: a
//! record here is just a self-describing payload.

use crate::chunkmap::{ChunkEntry, ChunkMap};
use crate::codec::{Reader, Wire, Writer};
use crate::error::ProtoError;
use crate::ids::{ChunkId, FileId, NodeId, VersionId};
use crate::msg::DedupSummary;
use crate::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

/// One durable mutation of the manager's metadata, in commit order.
///
/// Records log *observable namespace state* only. Transient state —
/// reservations, in-flight replication jobs, pending pessimistic commits,
/// re-offer tallies — is deliberately not logged: a restart drops it and
/// the protocols re-establish it (clients retry, maintenance re-plans).
#[derive(Clone, Debug, PartialEq)]
pub enum MetaRecord {
    /// A version was sealed and became visible — by a client
    /// `CommitChunkMap` or by an accepted benefactor re-offer. Carries
    /// everything replay needs to rebuild the file entry, the chunk
    /// reference counts, and the primary placements.
    Commit {
        /// Normalized file path.
        path: String,
        /// File id the version was committed under (stable across restarts).
        file: FileId,
        /// The sealed version.
        version: VersionId,
        /// Commit time (becomes the version's `mtime`).
        mtime: Time,
        /// Chunk-map entries in file order.
        entries: Vec<ChunkEntry>,
        /// Where each distinct chunk was stored at commit time.
        placements: Vec<(ChunkId, Vec<NodeId>)>,
        /// Replication target requested for this version's chunks.
        replication: u32,
    },
    /// Versions were dropped from a file (retention policies, explicit
    /// pruning). Replay decrements the dropped maps' chunk refcounts.
    Prune {
        /// Normalized file path.
        path: String,
        /// The version ids removed.
        versions: Vec<VersionId>,
    },
    /// The file was deleted outright (its remaining versions decref'd).
    Delete {
        /// Normalized file path.
        path: String,
    },
    /// A retention policy was attached to a directory.
    SetPolicy {
        /// Normalized directory path.
        dir: String,
        /// The policy now in force.
        policy: RetentionPolicy,
        /// Optional `(min, max)` clamp on adaptive replication targets.
        repl_bounds: Option<(u32, u32)>,
    },
    /// A benefactor joined the pool, or re-registered with a new address.
    /// Liveness stays soft state (heartbeats); the durable part is the id
    /// assignment (so a restart never reissues it) and the dial address
    /// (so clients can reach replicas before the first heartbeat).
    Benefactor {
        /// The node id the manager assigned.
        node: NodeId,
        /// Dial address (empty under the simulator).
        addr: String,
        /// Donated space in bytes.
        total: u64,
    },
    /// A benefactor's heartbeat lease expired, ending one online session.
    /// Replay folds the session length and the departure count into the
    /// manager's churn totals (like the dedup totals below) so failure-rate
    /// estimates survive restarts; liveness itself stays soft state.
    Churn {
        /// The departed node.
        node: NodeId,
        /// How long the node was continuously online before expiring.
        session: Dur,
    },
    /// How a committed version's bytes travelled under have/want
    /// negotiation. Logged alongside the matching `Commit` record so
    /// restart-surviving dedup totals can be audited; replay folds it into
    /// the manager's dedup counters and nothing else (the namespace effect
    /// is entirely in the `Commit` record).
    Dedup {
        /// The committed file.
        file: FileId,
        /// The committed version.
        version: VersionId,
        /// Offered/wanted counts and reused/delta/full byte totals.
        summary: DedupSummary,
    },
}

const TAG_COMMIT: u8 = 0;
const TAG_PRUNE: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_SET_POLICY: u8 = 3;
const TAG_BENEFACTOR: u8 = 4;
const TAG_DEDUP: u8 = 5;
const TAG_CHURN: u8 = 6;

impl MetaRecord {
    /// Stable wire discriminant.
    pub fn wire_tag(&self) -> u8 {
        match self {
            MetaRecord::Commit { .. } => TAG_COMMIT,
            MetaRecord::Prune { .. } => TAG_PRUNE,
            MetaRecord::Delete { .. } => TAG_DELETE,
            MetaRecord::SetPolicy { .. } => TAG_SET_POLICY,
            MetaRecord::Benefactor { .. } => TAG_BENEFACTOR,
            MetaRecord::Churn { .. } => TAG_CHURN,
            MetaRecord::Dedup { .. } => TAG_DEDUP,
        }
    }

    /// Encoded size in bytes (what one log append costs, pre-framing).
    pub fn wire_size(&self) -> u64 {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len() as u64
    }
}

impl Wire for MetaRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.wire_tag());
        match self {
            MetaRecord::Commit {
                path,
                file,
                version,
                mtime,
                entries,
                placements,
                replication,
            } => {
                path.encode(w);
                file.encode(w);
                version.encode(w);
                mtime.encode(w);
                entries.encode(w);
                placements.encode(w);
                w.put_u32(*replication);
            }
            MetaRecord::Prune { path, versions } => {
                path.encode(w);
                versions.encode(w);
            }
            MetaRecord::Delete { path } => path.encode(w),
            MetaRecord::SetPolicy {
                dir,
                policy,
                repl_bounds,
            } => {
                dir.encode(w);
                policy.encode(w);
                repl_bounds.encode(w);
            }
            MetaRecord::Benefactor { node, addr, total } => {
                node.encode(w);
                addr.encode(w);
                w.put_u64(*total);
            }
            MetaRecord::Churn { node, session } => {
                node.encode(w);
                session.encode(w);
            }
            MetaRecord::Dedup {
                file,
                version,
                summary,
            } => {
                file.encode(w);
                version.encode(w);
                summary.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(match r.get_u8()? {
            TAG_COMMIT => MetaRecord::Commit {
                path: String::decode(r)?,
                file: FileId::decode(r)?,
                version: VersionId::decode(r)?,
                mtime: Time::decode(r)?,
                entries: Vec::decode(r)?,
                placements: Vec::decode(r)?,
                replication: r.get_u32()?,
            },
            TAG_PRUNE => MetaRecord::Prune {
                path: String::decode(r)?,
                versions: Vec::decode(r)?,
            },
            TAG_DELETE => MetaRecord::Delete {
                path: String::decode(r)?,
            },
            TAG_SET_POLICY => MetaRecord::SetPolicy {
                dir: String::decode(r)?,
                policy: RetentionPolicy::decode(r)?,
                repl_bounds: Option::decode(r)?,
            },
            TAG_BENEFACTOR => MetaRecord::Benefactor {
                node: NodeId::decode(r)?,
                addr: String::decode(r)?,
                total: r.get_u64()?,
            },
            TAG_CHURN => MetaRecord::Churn {
                node: NodeId::decode(r)?,
                session: Dur::decode(r)?,
            },
            TAG_DEDUP => MetaRecord::Dedup {
                file: FileId::decode(r)?,
                version: VersionId::decode(r)?,
                summary: DedupSummary::decode(r)?,
            },
            t => return Err(ProtoError::bad(format!("unknown meta record tag {t}"))),
        })
    }
}

/// One committed version inside a [`MetaSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotVersion {
    /// The version id.
    pub version: VersionId,
    /// Commit time.
    pub mtime: Time,
    /// Chunk-map entries in file order.
    pub entries: Vec<ChunkEntry>,
}

impl Wire for SnapshotVersion {
    fn encode(&self, w: &mut Writer) {
        self.version.encode(w);
        self.mtime.encode(w);
        self.entries.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(SnapshotVersion {
            version: VersionId::decode(r)?,
            mtime: Time::decode(r)?,
            entries: Vec::decode(r)?,
        })
    }
}

/// One file entry inside a [`MetaSnapshot`], versions in commit order.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotFile {
    /// Normalized path.
    pub path: String,
    /// Stable file id.
    pub id: FileId,
    /// Highest replication target requested for this file.
    pub replication: u32,
    /// Committed versions, oldest first.
    pub versions: Vec<SnapshotVersion>,
}

impl Wire for SnapshotFile {
    fn encode(&self, w: &mut Writer) {
        self.path.encode(w);
        self.id.encode(w);
        w.put_u32(self.replication);
        self.versions.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(SnapshotFile {
            path: String::decode(r)?,
            id: FileId::decode(r)?,
            replication: r.get_u32()?,
            versions: Vec::decode(r)?,
        })
    }
}

/// Per-chunk durable metadata inside a [`MetaSnapshot`]. Reference counts
/// are not stored: replay recomputes them from the version maps, so the
/// refcount invariant holds by construction after a restore.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotChunk {
    /// Content hash.
    pub id: ChunkId,
    /// Size in bytes.
    pub size: u32,
    /// Replication target.
    pub target: u32,
    /// Known replica holders at snapshot time (repaired by GC reports).
    pub locations: Vec<NodeId>,
}

impl Wire for SnapshotChunk {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_u32(self.size);
        w.put_u32(self.target);
        self.locations.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(SnapshotChunk {
            id: ChunkId::decode(r)?,
            size: r.get_u32()?,
            target: r.get_u32()?,
            locations: Vec::decode(r)?,
        })
    }
}

/// A full serialized image of the manager's durable state, written
/// periodically so log replay stays bounded (snapshot + tail instead of
/// the whole history).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetaSnapshot {
    /// Next benefactor node id to assign.
    pub next_node: u64,
    /// Next file id to assign.
    pub next_file: u64,
    /// Next version id to assign.
    pub next_version: u64,
    /// Benefactor membership: `(id, dial address, donated bytes)`.
    pub benefactors: Vec<(NodeId, String, u64)>,
    /// Every file with at least one committed version.
    pub files: Vec<SnapshotFile>,
    /// Directory retention policies.
    pub dirs: Vec<(String, RetentionPolicy)>,
    /// Per-directory `(min, max)` adaptive-replication bounds.
    pub repl_bounds: Vec<(String, (u32, u32))>,
    /// Durable per-chunk metadata (size, target, last known locations).
    pub chunks: Vec<SnapshotChunk>,
}

impl MetaSnapshot {
    /// Rebuilds a [`ChunkMap`] from a snapshot version's entries.
    pub fn map_of(v: &SnapshotVersion) -> ChunkMap {
        ChunkMap::from_entries(v.entries.clone())
    }
}

impl Wire for MetaSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.next_node);
        w.put_u64(self.next_file);
        w.put_u64(self.next_version);
        self.benefactors.encode(w);
        self.files.encode(w);
        self.dirs.encode(w);
        self.repl_bounds.encode(w);
        self.chunks.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(MetaSnapshot {
            next_node: r.get_u64()?,
            next_file: r.get_u64()?,
            next_version: r.get_u64()?,
            benefactors: Vec::decode(r)?,
            files: Vec::decode(r)?,
            dirs: Vec::decode(r)?,
            repl_bounds: Vec::decode(r)?,
            chunks: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire_bytes();
        assert_eq!(T::from_wire_bytes(&bytes).expect("decode"), v);
    }

    fn entry(n: u64, size: u32) -> ChunkEntry {
        ChunkEntry {
            id: ChunkId::test_id(n),
            size,
        }
    }

    #[test]
    fn record_roundtrips() {
        roundtrip(MetaRecord::Commit {
            path: "/app/ck.n0".into(),
            file: FileId(7),
            version: VersionId(12),
            mtime: Time::from_secs(99),
            entries: vec![entry(1, 64), entry(2, 32), entry(1, 64)],
            placements: vec![
                (ChunkId::test_id(1), vec![NodeId(3), NodeId(4)]),
                (ChunkId::test_id(2), vec![NodeId(3)]),
            ],
            replication: 2,
        });
        roundtrip(MetaRecord::Prune {
            path: "/app/ck.n0".into(),
            versions: vec![VersionId(3), VersionId(4)],
        });
        roundtrip(MetaRecord::Delete {
            path: "/gone".into(),
        });
        roundtrip(MetaRecord::SetPolicy {
            dir: "/jobs".into(),
            policy: RetentionPolicy::AutomatedReplace { keep_last: 2 },
            repl_bounds: Some((2, 5)),
        });
        roundtrip(MetaRecord::Benefactor {
            node: NodeId(5),
            addr: "10.0.0.2:4402".into(),
            total: 1 << 40,
        });
        roundtrip(MetaRecord::Churn {
            node: NodeId(5),
            session: Dur::from_secs(7200),
        });
        roundtrip(MetaRecord::Dedup {
            file: FileId(7),
            version: VersionId(12),
            summary: DedupSummary {
                offered: 8,
                wanted: 3,
                reused_bytes: 5 << 16,
                delta_bytes: 900,
                full_bytes: 2 << 16,
            },
        });
    }

    #[test]
    fn snapshot_roundtrips() {
        roundtrip(MetaSnapshot {
            next_node: 9,
            next_file: 4,
            next_version: 17,
            benefactors: vec![
                (NodeId(1), "a:1".into(), 10),
                (NodeId(2), String::new(), 20),
            ],
            files: vec![SnapshotFile {
                path: "/f".into(),
                id: FileId(1),
                replication: 2,
                versions: vec![SnapshotVersion {
                    version: VersionId(5),
                    mtime: Time::from_secs(1),
                    entries: vec![entry(9, 128)],
                }],
            }],
            dirs: vec![(
                "/jobs".into(),
                RetentionPolicy::AutomatedPurge {
                    after: stdchk_util::Dur::from_secs(60),
                },
            )],
            repl_bounds: vec![("/jobs".into(), (1, 3))],
            chunks: vec![SnapshotChunk {
                id: ChunkId::test_id(9),
                size: 128,
                target: 2,
                locations: vec![NodeId(1)],
            }],
        });
        roundtrip(MetaSnapshot::default());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(MetaRecord::from_wire_bytes(&[200]).is_err());
    }

    #[test]
    fn wire_size_matches_encoding() {
        let rec = MetaRecord::Delete {
            path: "/app/x".into(),
        };
        assert_eq!(rec.wire_size(), rec.to_wire_bytes().len() as u64);
    }
}
