//! Automated, time-sensitive data-management policies (paper §IV.D).
//!
//! Checkpoint images are transient: stdchk attaches a retention policy to
//! each application folder and the manager enforces it automatically. The
//! three scenarios supported by the paper map directly onto
//! [`RetentionPolicy`].

use stdchk_util::Dur;

/// Per-directory retention policy for checkpoint images.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RetentionPolicy {
    /// *No intervention*: all versions are persistently stored indefinitely
    /// (debugging / speculative-execution scenario).
    #[default]
    NoIntervention,
    /// *Automated replace*: a newly committed checkpoint makes older ones
    /// obsolete; the manager retains only the newest `keep_last` versions.
    AutomatedReplace {
        /// How many trailing versions survive (the paper's scenario is 1).
        keep_last: u32,
    },
    /// *Automated purge*: versions are deleted once older than `after`.
    AutomatedPurge {
        /// Age at which a version becomes purgeable.
        after: Dur,
    },
}

impl RetentionPolicy {
    /// The paper's default "new images replace old" behaviour.
    pub const REPLACE: RetentionPolicy = RetentionPolicy::AutomatedReplace { keep_last: 1 };

    /// Stable wire discriminant.
    pub fn wire_tag(self) -> u8 {
        match self {
            RetentionPolicy::NoIntervention => 0,
            RetentionPolicy::AutomatedReplace { .. } => 1,
            RetentionPolicy::AutomatedPurge { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_intervention() {
        assert_eq!(RetentionPolicy::default(), RetentionPolicy::NoIntervention);
    }

    #[test]
    fn replace_keeps_one() {
        match RetentionPolicy::REPLACE {
            RetentionPolicy::AutomatedReplace { keep_last } => assert_eq!(keep_last, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
