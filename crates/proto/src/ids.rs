//! Strongly-typed identifiers.
//!
//! Newtypes keep node/file/version/reservation identifiers from being mixed
//! up at compile time (C-NEWTYPE). [`ChunkId`] is special: it is the SHA-256
//! digest of the chunk *content*, which gives stdchk content-based
//! addressability — equal content is the same chunk everywhere, enabling
//! cross-version dedup and end-to-end integrity verification.

use std::fmt;

use stdchk_util::sha256::{Digest, Sha256};

macro_rules! u64_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

u64_id!(
    /// Identifies a node (client or benefactor) in the storage pool.
    ///
    /// The metadata manager assigns ids on first registration; drivers may
    /// also pre-assign them in closed-world deployments (the simulator does).
    NodeId,
    "n"
);
u64_id!(
    /// Identifies a logical file in the manager's namespace.
    FileId,
    "f"
);
u64_id!(
    /// Identifies one committed version of a file (a checkpoint timestep).
    VersionId,
    "v"
);
u64_id!(
    /// Identifies an eager space reservation granted by the manager.
    ReservationId,
    "r"
);
u64_id!(
    /// Correlates a request with its reply on one connection.
    RequestId,
    "q"
);

/// Content-addressed chunk identifier: the SHA-256 digest of the chunk bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub Digest);

impl ChunkId {
    /// Computes the id of a chunk from its content.
    ///
    /// # Examples
    ///
    /// ```
    /// use stdchk_proto::ids::ChunkId;
    ///
    /// let a = ChunkId::for_content(b"hello");
    /// let b = ChunkId::for_content(b"hello");
    /// assert_eq!(a, b);
    /// assert_ne!(a, ChunkId::for_content(b"world"));
    /// ```
    pub fn for_content(data: &[u8]) -> ChunkId {
        ChunkId(Sha256::digest(data))
    }

    /// Verifies that `data` matches this id.
    pub fn verify(&self, data: &[u8]) -> bool {
        ChunkId::for_content(data) == *self
    }

    /// The raw 32-byte digest.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// A deterministic id for tests: digest of the little-endian `n`.
    pub fn test_id(n: u64) -> ChunkId {
        ChunkId::for_content(&n.to_le_bytes())
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{:02x}{:02x}{:02x}{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", FileId(3)), "f3");
        assert_eq!(format!("{}", VersionId(1)), "v1");
    }

    #[test]
    fn chunk_id_verifies_content() {
        let id = ChunkId::for_content(b"data");
        assert!(id.verify(b"data"));
        assert!(!id.verify(b"tampered"));
    }

    #[test]
    fn chunk_id_debug_is_short_hex() {
        let id = ChunkId::for_content(b"x");
        let s = format!("{id:?}");
        assert!(s.starts_with('c') && s.len() == 9, "{s}");
    }
}
