//! Length-prefixed framing for byte streams.
//!
//! Each frame is a little-endian `u32` length followed by that many payload
//! bytes (one encoded [`Msg`]). Three tiers of API:
//!
//! - [`FrameDecoder`] / [`FrameEncoder`] — the incremental sans-IO codec
//!   the event-driven reactor transport runs on: the decoder accumulates
//!   arbitrary partial reads and yields decoded messages (chunk payloads
//!   sliced zero-copy out of the frame buffer), the encoder keeps a
//!   resumable outbound buffer that survives short writes on nonblocking
//!   sockets;
//! - [`FrameBuf`] — a simpler incremental splitter yielding raw frame
//!   bodies;
//! - [`read_frame`] / [`write_frame`] — blocking helpers for `std::io`
//!   streams (handshakes, legacy thread-per-connection paths).

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};

use bytes::Bytes;

use crate::codec::{Wire, Writer};
use crate::error::ProtoError;
use crate::ids::{ChunkId, RequestId};
use crate::msg::Msg;

/// Default maximum accepted frame: 64 MiB (comfortably above the largest
/// chunk payload stdchk ships).
pub const MAX_FRAME: u32 = 64 << 20;

/// Incremental frame decoder for sans-IO use.
///
/// # Examples
///
/// ```
/// use stdchk_proto::frame::FrameBuf;
///
/// let mut fb = FrameBuf::new(1024);
/// let frame = [3u8, 0, 0, 0, b'a', b'b', b'c'];
/// // Feed byte-by-byte: no frame until complete.
/// for (i, b) in frame.iter().enumerate() {
///     let got = fb.feed(std::slice::from_ref(b)).unwrap();
///     if i < frame.len() - 1 {
///         assert!(got.is_empty());
///     } else {
///         assert_eq!(got, vec![b"abc".to_vec()]);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameBuf {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: u32) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends incoming bytes and returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] if a header declares a frame
    /// beyond the configured maximum; the decoder is then poisoned and the
    /// connection should be dropped.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, ProtoError> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
            if len > self.max_frame {
                return Err(ProtoError::FrameTooLarge {
                    declared: len,
                    max: self.max_frame,
                });
            }
            let total = 4 + len as usize;
            if self.buf.len() < total {
                break;
            }
            out.push(self.buf[4..total].to_vec());
            self.buf.drain(..total);
        }
        Ok(out)
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Decode state of one in-flight frame.
#[derive(Debug)]
enum DecodeState {
    /// Accumulating the 4-byte length header.
    Header { buf: [u8; 4], have: usize },
    /// Accumulating the frame body (`buf.len()` of `need` bytes present).
    Body { buf: Vec<u8>, need: usize },
}

/// Incremental frame **message** decoder for readiness-based transports.
///
/// Feed it whatever byte slices the socket produces — single bytes,
/// frame-straddling chunks, many coalesced frames — and it yields decoded
/// [`Msg`]s exactly as the blocking [`read_frame`] would have. Byte
/// payloads (`PutChunk::data`, `GetChunkOk::data`) are sliced out of the
/// accumulated frame buffer as shared [`Bytes`] without copying.
///
/// Errors (oversized frame declaration, undecodable body) poison the
/// decoder: the connection is beyond resynchronization and must be
/// dropped, exactly like the blocking reader's `InvalidData`.
///
/// # Examples
///
/// ```
/// use stdchk_proto::frame::{encode_frame, FrameDecoder, MAX_FRAME};
/// use stdchk_proto::ids::RequestId;
/// use stdchk_proto::msg::Msg;
///
/// let wire = encode_frame(&Msg::Ack { req: RequestId(7) });
/// let mut dec = FrameDecoder::new(MAX_FRAME);
/// let mut out = Vec::new();
/// for b in &wire {
///     dec.feed(std::slice::from_ref(b), &mut out).unwrap();
/// }
/// assert_eq!(out, vec![Msg::Ack { req: RequestId(7) }]);
/// assert!(!dec.mid_frame());
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    state: DecodeState,
    max_frame: u32,
    poisoned: bool,
}

impl FrameDecoder {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: u32) -> FrameDecoder {
        FrameDecoder {
            state: DecodeState::Header {
                buf: [0; 4],
                have: 0,
            },
            max_frame,
            poisoned: false,
        }
    }

    /// Appends incoming bytes, pushing every message they complete onto
    /// `out`.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] for an over-limit header,
    /// [`ProtoError::Malformed`]/[`ProtoError::Truncated`] for an
    /// undecodable body. Any error poisons the decoder; subsequent feeds
    /// keep failing.
    pub fn feed(&mut self, mut data: &[u8], out: &mut Vec<Msg>) -> Result<(), ProtoError> {
        if self.poisoned {
            return Err(ProtoError::bad("frame decoder poisoned"));
        }
        while !data.is_empty() {
            match &mut self.state {
                DecodeState::Header { buf, have } => {
                    let n = (4 - *have).min(data.len());
                    buf[*have..*have + n].copy_from_slice(&data[..n]);
                    *have += n;
                    data = &data[n..];
                    if *have == 4 {
                        let len = u32::from_le_bytes(*buf);
                        if len > self.max_frame {
                            self.poisoned = true;
                            return Err(ProtoError::FrameTooLarge {
                                declared: len,
                                max: self.max_frame,
                            });
                        }
                        self.state = DecodeState::Body {
                            buf: Vec::with_capacity(len as usize),
                            need: len as usize,
                        };
                    }
                }
                DecodeState::Body { buf, need } => {
                    let n = (*need - buf.len()).min(data.len());
                    buf.extend_from_slice(&data[..n]);
                    data = &data[n..];
                    if buf.len() == *need {
                        let frame = Bytes::from(std::mem::take(buf));
                        self.state = DecodeState::Header {
                            buf: [0; 4],
                            have: 0,
                        };
                        match Msg::from_frame(&frame) {
                            Ok(msg) => out.push(msg),
                            Err(e) => {
                                self.poisoned = true;
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// True while a frame is partially accumulated: EOF now would be a
    /// torn frame (the blocking reader's `UnexpectedEof` mid-body), not a
    /// clean close.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            DecodeState::Header { have, .. } => *have != 0,
            DecodeState::Body { .. } => true,
        }
    }

    /// True once a feed failed; the connection must be dropped.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// One queued outbound frame. The bytes on the wire are
/// `head ‖ payload ‖ tail`: for chunk-bearing messages the payload stays a
/// shared [`Bytes`] slice (no copy into the outbound buffer) and `head`
/// carries everything up to and including the payload length prefix; for
/// all other messages `head` is the whole encoded frame.
#[derive(Debug)]
struct OutFrame {
    head: Vec<u8>,
    payload: Bytes,
    tail: Vec<u8>,
    token: Option<u64>,
}

impl OutFrame {
    fn len(&self) -> usize {
        self.head.len() + self.payload.len() + self.tail.len()
    }

    fn segments(&self) -> [&[u8]; 3] {
        [&self.head, &self.payload, &self.tail]
    }
}

/// Most slices handed to one `writev`: enough to coalesce several small
/// frames (or a few header+payload pairs) per syscall without building an
/// unbounded iovec for a deep queue.
const MAX_WRITE_VEC: usize = 16;

/// Resumable frame encoder for readiness-based transports.
///
/// [`FrameEncoder::push`] serializes a message onto the outbound buffer;
/// [`FrameEncoder::write_to`] flushes as much as the (typically
/// nonblocking) sink accepts and can be resumed after `WouldBlock` —
/// partial frames pick up exactly where the previous short write stopped.
/// Each frame may carry a completion token reported once its last byte
/// reaches the sink (drivers use this to end transmit windows).
///
/// By default chunk payloads (`PutChunk::data`, `GetChunkOk::data`,
/// `DeltaPutChunk::delta`) are kept as shared [`Bytes`] segments and
/// flushed together with their frame header in one gathered
/// `write_vectored` call — the byte stream is identical to the flattened
/// encoding, but the payload is never copied into the outbound buffer.
/// [`FrameEncoder::with_vectored`]`(false)` restores the copying baseline
/// for A/B measurement.
#[derive(Debug)]
pub struct FrameEncoder {
    /// Encoded frames awaiting transmission; the front frame may be
    /// partially written (`head_off` bytes already gone).
    frames: VecDeque<OutFrame>,
    head_off: usize,
    pending: usize,
    vectored: bool,
    copied_payload: u64,
    shared_payload: u64,
}

impl Default for FrameEncoder {
    fn default() -> FrameEncoder {
        FrameEncoder::with_vectored(true)
    }
}

impl FrameEncoder {
    /// An empty encoder with the zero-copy vectored payload path enabled.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// An empty encoder; `vectored: false` flattens every frame into one
    /// contiguous buffer (the pre-zero-copy baseline).
    pub fn with_vectored(vectored: bool) -> FrameEncoder {
        FrameEncoder {
            frames: VecDeque::new(),
            head_off: 0,
            pending: 0,
            vectored,
            copied_payload: 0,
            shared_payload: 0,
        }
    }

    /// Serializes `msg` onto the outbound buffer.
    pub fn push(&mut self, msg: &Msg) {
        self.push_tracked(msg, None);
    }

    /// Serializes `msg`, tagging the frame with a completion `token`
    /// reported by [`FrameEncoder::write_to`] once fully written.
    pub fn push_tracked(&mut self, msg: &Msg, token: Option<u64>) {
        let frame = match self.vectored.then(|| split_frame(msg)).flatten() {
            Some((head, payload, tail)) => {
                self.shared_payload += payload.len() as u64;
                OutFrame {
                    head,
                    payload,
                    tail,
                    token,
                }
            }
            None => {
                self.copied_payload += payload_len(msg);
                OutFrame {
                    head: encode_frame(msg),
                    payload: Bytes::new(),
                    tail: Vec::new(),
                    token,
                }
            }
        };
        self.pending += frame.len();
        self.frames.push_back(frame);
    }

    /// Bytes not yet accepted by the sink.
    pub fn pending_bytes(&self) -> usize {
        self.pending
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Cumulative payload bytes enqueued flattened (copied into the
    /// outbound buffer) over this encoder's lifetime.
    pub fn copied_payload_bytes(&self) -> u64 {
        self.copied_payload
    }

    /// Cumulative payload bytes enqueued as shared slices (zero-copy) over
    /// this encoder's lifetime.
    pub fn shared_payload_bytes(&self) -> u64 {
        self.shared_payload
    }

    /// Writes as much as `w` accepts, gathering up to `MAX_WRITE_VEC`
    /// frame segments per `write_vectored` call. Tokens of frames whose
    /// last byte was written are appended to `completed`. Returns
    /// `Ok(true)` when the buffer drained, `Ok(false)` when the sink would
    /// block.
    ///
    /// # Errors
    ///
    /// Propagates sink errors other than `WouldBlock` (`Interrupted` is
    /// retried); a sink accepting zero bytes surfaces as `WriteZero`.
    pub fn write_to<W: Write>(&mut self, w: &mut W, completed: &mut Vec<u64>) -> io::Result<bool> {
        while !self.frames.is_empty() {
            let res = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_VEC);
                let mut skip = self.head_off;
                'gather: for f in &self.frames {
                    for seg in f.segments() {
                        if skip >= seg.len() {
                            skip -= seg.len();
                            continue;
                        }
                        slices.push(IoSlice::new(&seg[skip..]));
                        skip = 0;
                        if slices.len() == MAX_WRITE_VEC {
                            break 'gather;
                        }
                    }
                }
                w.write_vectored(&slices)
            };
            match res {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.advance(n, completed),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Accounts `n` freshly written bytes: pops completed frames (reporting
    /// their tokens) and leaves `head_off` mid-frame for the remainder.
    fn advance(&mut self, n: usize, completed: &mut Vec<u64>) {
        self.pending -= n;
        let mut n = self.head_off + n;
        while let Some(f) = self.frames.front() {
            let flen = f.len();
            if n < flen {
                self.head_off = n;
                return;
            }
            n -= flen;
            if let Some(t) = f.token {
                completed.push(t);
            }
            self.frames.pop_front();
        }
        self.head_off = 0;
        debug_assert_eq!(n, 0, "advanced past the queued bytes");
    }
}

/// Splits a chunk-bearing message into (head, shared payload, tail) whose
/// concatenation is byte-identical to [`encode_frame`]. Returns `None` for
/// messages without a `Bytes` payload.
fn split_frame(msg: &Msg) -> Option<(Vec<u8>, Bytes, Vec<u8>)> {
    let (payload, tail) = match msg {
        Msg::PutChunk {
            data, background, ..
        } => (data.clone(), vec![*background as u8]),
        Msg::GetChunkOk { data, .. } => (data.clone(), Vec::new()),
        Msg::DeltaPutChunk { delta, .. } => (delta.clone(), Vec::new()),
        _ => return None,
    };
    let head = frame_head(msg, payload.len() as u32, tail.len())?;
    Some((head, payload, tail))
}

/// Payload bytes a flattened encode of `msg` copies into the frame buffer.
fn payload_len(msg: &Msg) -> u64 {
    match msg {
        Msg::PutChunk { data, .. } | Msg::GetChunkOk { data, .. } => data.len() as u64,
        Msg::DeltaPutChunk { delta, .. } => delta.len() as u64,
        _ => 0,
    }
}

/// Encodes the frame length prefix, message tag, leading fields, and the
/// `u32` payload length prefix of a chunk-bearing message — everything on
/// the wire *before* the payload bytes. The frame length accounts for
/// `payload_len` payload bytes plus `tail_len` trailing field bytes.
fn frame_head(msg: &Msg, payload_len: u32, tail_len: usize) -> Option<Vec<u8>> {
    let mut w = Writer::with_capacity(96);
    w.put_u32(0); // frame length, patched below
    w.put_u8(msg.wire_tag());
    match msg {
        Msg::PutChunk {
            req, chunk, size, ..
        }
        | Msg::GetChunkOk {
            req, chunk, size, ..
        } => {
            req.encode(&mut w);
            chunk.encode(&mut w);
            w.put_u32(*size);
        }
        Msg::DeltaPutChunk {
            req,
            chunk,
            basis,
            size,
            ..
        } => {
            req.encode(&mut w);
            chunk.encode(&mut w);
            basis.encode(&mut w);
            w.put_u32(*size);
        }
        _ => return None,
    }
    w.put_u32(payload_len);
    let mut head = w.into_bytes();
    let body = head.len() - 4 + payload_len as usize + tail_len;
    head[..4].copy_from_slice(&(body as u32).to_le_bytes());
    Some(head)
}

/// Frame head for a `GetChunkOk` whose `payload_len` payload bytes the
/// transport will append from an external source (e.g. `sendfile` straight
/// out of a sealed segment file). The caller must follow these bytes with
/// exactly `payload_len` raw payload bytes to complete the frame.
pub fn get_chunk_ok_frame_head(
    req: RequestId,
    chunk: ChunkId,
    size: u32,
    payload_len: u32,
) -> Vec<u8> {
    let msg = Msg::GetChunkOk {
        req,
        chunk,
        size,
        data: Bytes::new(),
    };
    frame_head(&msg, payload_len, 0).expect("GetChunkOk always splits")
}

/// Encodes `msg` as one frame into a fresh buffer.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let body = msg.to_wire_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Writes `msg` as one frame to a blocking stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(mut w: W, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads one complete frame from a blocking stream and decodes the message.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary. EOF *inside* a
/// frame — even inside the 4-byte header — is a torn frame and errors
/// (`UnexpectedEof`), matching [`FrameDecoder::mid_frame`].
///
/// # Errors
///
/// I/O errors propagate; decode failures and oversized frames surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Option<Msg>> {
    let mut hdr = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut hdr[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::FrameTooLarge {
                declared: len,
                max: MAX_FRAME,
            },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    // Decode through the shared-buffer path: byte payloads slice out of
    // the frame allocation instead of being copied a second time.
    let body = Bytes::from(body);
    let msg = Msg::from_frame(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RequestId};
    use crate::msg::Role;

    fn sample() -> Msg {
        Msg::Hello {
            role: Role::Client,
            node: NodeId(3),
        }
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = vec![
            sample(),
            Msg::Ack { req: RequestId(1) },
            Msg::Ack { req: RequestId(2) },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn framebuf_handles_arbitrary_splits() {
        let msgs = vec![sample(), Msg::Ack { req: RequestId(7) }];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        for split in 1..wire.len().min(40) {
            let mut fb = FrameBuf::new(MAX_FRAME);
            let mut frames = Vec::new();
            for part in wire.chunks(split) {
                frames.extend(fb.feed(part).unwrap());
            }
            assert_eq!(frames.len(), msgs.len(), "split={split}");
            for (f, m) in frames.iter().zip(&msgs) {
                assert_eq!(&Msg::from_wire_bytes(f).unwrap(), m);
            }
            assert_eq!(fb.pending(), 0);
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fb = FrameBuf::new(16);
        let mut data = (17u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[0; 17]);
        assert!(matches!(
            fb.feed(&data),
            Err(ProtoError::FrameTooLarge {
                declared: 17,
                max: 16
            })
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut wire = encode_frame(&sample());
        wire.truncate(wire.len() - 1);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn decoder_yields_messages_across_splits() {
        let msgs = vec![
            sample(),
            Msg::Ack { req: RequestId(7) },
            Msg::PutChunk {
                req: RequestId(8),
                chunk: crate::ids::ChunkId::for_content(b"xyz"),
                size: 3,
                data: Bytes::from_static(b"xyz"),
                background: false,
            },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        for split in 1..wire.len().min(48) {
            let mut dec = FrameDecoder::new(MAX_FRAME);
            let mut out = Vec::new();
            for part in wire.chunks(split) {
                dec.feed(part, &mut out).unwrap();
            }
            assert_eq!(out, msgs, "split={split}");
            assert!(!dec.mid_frame());
        }
    }

    #[test]
    fn decoder_rejects_oversize_and_poisons() {
        let mut dec = FrameDecoder::new(16);
        let mut out = Vec::new();
        let data = (17u32).to_le_bytes();
        assert!(matches!(
            dec.feed(&data, &mut out),
            Err(ProtoError::FrameTooLarge {
                declared: 17,
                max: 16
            })
        ));
        assert!(dec.is_poisoned());
        assert!(dec.feed(&[0], &mut out).is_err());
    }

    #[test]
    fn decoder_reports_torn_frames() {
        let wire = encode_frame(&sample());
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        dec.feed(&wire[..wire.len() - 1], &mut out).unwrap();
        assert!(out.is_empty());
        assert!(dec.mid_frame(), "EOF here would tear the frame");
    }

    #[test]
    fn decoder_slices_payload_without_copying() {
        let payload = vec![42u8; 4096];
        let msg = Msg::PutChunk {
            req: RequestId(1),
            chunk: crate::ids::ChunkId::for_content(&payload),
            size: payload.len() as u32,
            data: Bytes::from(payload.clone()),
            background: false,
        };
        let wire = encode_frame(&msg);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        dec.feed(&wire, &mut out).unwrap();
        let Msg::PutChunk { data, .. } = &out[0] else {
            panic!("wrong message");
        };
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn encoder_resumes_across_short_writes() {
        struct Dribble {
            out: Vec<u8>,
            budget: usize,
        }
        impl io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.budget).min(3);
                self.out.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let msgs = vec![sample(), Msg::Ack { req: RequestId(2) }];
        let mut enc = FrameEncoder::new();
        enc.push_tracked(&msgs[0], Some(10));
        enc.push_tracked(&msgs[1], Some(11));
        let total = enc.pending_bytes();
        let mut sink = Dribble {
            out: Vec::new(),
            budget: 0,
        };
        let mut completed = Vec::new();
        // Repeatedly grant tiny write budgets until everything drains.
        let mut drained = false;
        for _ in 0..total + 8 {
            sink.budget = 2;
            if enc.write_to(&mut sink, &mut completed).unwrap() {
                drained = true;
                break;
            }
        }
        assert!(drained);
        assert_eq!(completed, vec![10, 11]);
        // The dribbled byte stream is the exact concatenated frames.
        let mut expect = Vec::new();
        for m in &msgs {
            expect.extend_from_slice(&encode_frame(m));
        }
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn split_frames_match_flattened_encoding() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let msgs = vec![
            Msg::PutChunk {
                req: RequestId(3),
                chunk: crate::ids::ChunkId::for_content(&payload),
                size: payload.len() as u32,
                data: payload.clone(),
                background: true,
            },
            Msg::GetChunkOk {
                req: RequestId(4),
                chunk: crate::ids::ChunkId::for_content(&payload),
                size: payload.len() as u32,
                data: payload.clone(),
            },
            Msg::DeltaPutChunk {
                req: RequestId(5),
                chunk: crate::ids::ChunkId::for_content(b"new"),
                basis: crate::ids::ChunkId::for_content(b"old"),
                size: 4096,
                delta: payload.clone(),
            },
        ];
        for m in &msgs {
            let (head, body, tail) = split_frame(m).expect("chunk messages split");
            let mut joined = head;
            joined.extend_from_slice(&body);
            joined.extend_from_slice(&tail);
            assert_eq!(joined, encode_frame(m), "{m:?}");
        }
        // Non-payload messages do not split.
        assert!(split_frame(&sample()).is_none());
    }

    #[test]
    fn external_frame_head_matches_inline_encoding() {
        let payload = Bytes::from(vec![9u8; 300]);
        let chunk = crate::ids::ChunkId::for_content(&payload);
        let inline = encode_frame(&Msg::GetChunkOk {
            req: RequestId(6),
            chunk,
            size: payload.len() as u32,
            data: payload.clone(),
        });
        let mut external = get_chunk_ok_frame_head(
            RequestId(6),
            chunk,
            payload.len() as u32,
            payload.len() as u32,
        );
        external.extend_from_slice(&payload);
        assert_eq!(external, inline);
    }

    #[test]
    fn vectored_encoder_counts_shared_payloads() {
        let payload = Bytes::from(vec![1u8; 512]);
        let msg = Msg::GetChunkOk {
            req: RequestId(1),
            chunk: crate::ids::ChunkId::for_content(&payload),
            size: payload.len() as u32,
            data: payload.clone(),
        };
        let mut vec_enc = FrameEncoder::new();
        vec_enc.push(&msg);
        vec_enc.push(&sample());
        assert_eq!(vec_enc.shared_payload_bytes(), 512);
        assert_eq!(vec_enc.copied_payload_bytes(), 0);

        let mut flat_enc = FrameEncoder::with_vectored(false);
        flat_enc.push(&msg);
        assert_eq!(flat_enc.shared_payload_bytes(), 0);
        assert_eq!(flat_enc.copied_payload_bytes(), 512);

        // Both encoders produce the identical byte stream.
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut completed = Vec::new();
        assert!(vec_enc.write_to(&mut a, &mut completed).unwrap());
        let mut flat_ref = FrameEncoder::with_vectored(false);
        flat_ref.push(&msg);
        flat_ref.push(&sample());
        assert!(flat_ref.write_to(&mut b, &mut completed).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn garbage_body_is_invalid_data() {
        let mut wire = (2u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[255, 255]);
        let err = read_frame(std::io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
