//! Length-prefixed framing for byte streams.
//!
//! Each frame is a little-endian `u32` length followed by that many payload
//! bytes (one encoded [`Msg`]). Three tiers of API:
//!
//! - [`FrameDecoder`] / [`FrameEncoder`] — the incremental sans-IO codec
//!   the event-driven reactor transport runs on: the decoder accumulates
//!   arbitrary partial reads and yields decoded messages (chunk payloads
//!   sliced zero-copy out of the frame buffer), the encoder keeps a
//!   resumable outbound buffer that survives short writes on nonblocking
//!   sockets;
//! - [`FrameBuf`] — a simpler incremental splitter yielding raw frame
//!   bodies;
//! - [`read_frame`] / [`write_frame`] — blocking helpers for `std::io`
//!   streams (handshakes, legacy thread-per-connection paths).

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::codec::Wire;
use crate::error::ProtoError;
use crate::msg::Msg;

/// Default maximum accepted frame: 64 MiB (comfortably above the largest
/// chunk payload stdchk ships).
pub const MAX_FRAME: u32 = 64 << 20;

/// Incremental frame decoder for sans-IO use.
///
/// # Examples
///
/// ```
/// use stdchk_proto::frame::FrameBuf;
///
/// let mut fb = FrameBuf::new(1024);
/// let frame = [3u8, 0, 0, 0, b'a', b'b', b'c'];
/// // Feed byte-by-byte: no frame until complete.
/// for (i, b) in frame.iter().enumerate() {
///     let got = fb.feed(std::slice::from_ref(b)).unwrap();
///     if i < frame.len() - 1 {
///         assert!(got.is_empty());
///     } else {
///         assert_eq!(got, vec![b"abc".to_vec()]);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameBuf {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: u32) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends incoming bytes and returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] if a header declares a frame
    /// beyond the configured maximum; the decoder is then poisoned and the
    /// connection should be dropped.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, ProtoError> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
            if len > self.max_frame {
                return Err(ProtoError::FrameTooLarge {
                    declared: len,
                    max: self.max_frame,
                });
            }
            let total = 4 + len as usize;
            if self.buf.len() < total {
                break;
            }
            out.push(self.buf[4..total].to_vec());
            self.buf.drain(..total);
        }
        Ok(out)
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Decode state of one in-flight frame.
#[derive(Debug)]
enum DecodeState {
    /// Accumulating the 4-byte length header.
    Header { buf: [u8; 4], have: usize },
    /// Accumulating the frame body (`buf.len()` of `need` bytes present).
    Body { buf: Vec<u8>, need: usize },
}

/// Incremental frame **message** decoder for readiness-based transports.
///
/// Feed it whatever byte slices the socket produces — single bytes,
/// frame-straddling chunks, many coalesced frames — and it yields decoded
/// [`Msg`]s exactly as the blocking [`read_frame`] would have. Byte
/// payloads (`PutChunk::data`, `GetChunkOk::data`) are sliced out of the
/// accumulated frame buffer as shared [`Bytes`] without copying.
///
/// Errors (oversized frame declaration, undecodable body) poison the
/// decoder: the connection is beyond resynchronization and must be
/// dropped, exactly like the blocking reader's `InvalidData`.
///
/// # Examples
///
/// ```
/// use stdchk_proto::frame::{encode_frame, FrameDecoder, MAX_FRAME};
/// use stdchk_proto::ids::RequestId;
/// use stdchk_proto::msg::Msg;
///
/// let wire = encode_frame(&Msg::Ack { req: RequestId(7) });
/// let mut dec = FrameDecoder::new(MAX_FRAME);
/// let mut out = Vec::new();
/// for b in &wire {
///     dec.feed(std::slice::from_ref(b), &mut out).unwrap();
/// }
/// assert_eq!(out, vec![Msg::Ack { req: RequestId(7) }]);
/// assert!(!dec.mid_frame());
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    state: DecodeState,
    max_frame: u32,
    poisoned: bool,
}

impl FrameDecoder {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: u32) -> FrameDecoder {
        FrameDecoder {
            state: DecodeState::Header {
                buf: [0; 4],
                have: 0,
            },
            max_frame,
            poisoned: false,
        }
    }

    /// Appends incoming bytes, pushing every message they complete onto
    /// `out`.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] for an over-limit header,
    /// [`ProtoError::Malformed`]/[`ProtoError::Truncated`] for an
    /// undecodable body. Any error poisons the decoder; subsequent feeds
    /// keep failing.
    pub fn feed(&mut self, mut data: &[u8], out: &mut Vec<Msg>) -> Result<(), ProtoError> {
        if self.poisoned {
            return Err(ProtoError::bad("frame decoder poisoned"));
        }
        while !data.is_empty() {
            match &mut self.state {
                DecodeState::Header { buf, have } => {
                    let n = (4 - *have).min(data.len());
                    buf[*have..*have + n].copy_from_slice(&data[..n]);
                    *have += n;
                    data = &data[n..];
                    if *have == 4 {
                        let len = u32::from_le_bytes(*buf);
                        if len > self.max_frame {
                            self.poisoned = true;
                            return Err(ProtoError::FrameTooLarge {
                                declared: len,
                                max: self.max_frame,
                            });
                        }
                        self.state = DecodeState::Body {
                            buf: Vec::with_capacity(len as usize),
                            need: len as usize,
                        };
                    }
                }
                DecodeState::Body { buf, need } => {
                    let n = (*need - buf.len()).min(data.len());
                    buf.extend_from_slice(&data[..n]);
                    data = &data[n..];
                    if buf.len() == *need {
                        let frame = Bytes::from(std::mem::take(buf));
                        self.state = DecodeState::Header {
                            buf: [0; 4],
                            have: 0,
                        };
                        match Msg::from_frame(&frame) {
                            Ok(msg) => out.push(msg),
                            Err(e) => {
                                self.poisoned = true;
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// True while a frame is partially accumulated: EOF now would be a
    /// torn frame (the blocking reader's `UnexpectedEof` mid-body), not a
    /// clean close.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            DecodeState::Header { have, .. } => *have != 0,
            DecodeState::Body { .. } => true,
        }
    }

    /// True once a feed failed; the connection must be dropped.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Resumable frame encoder for readiness-based transports.
///
/// [`FrameEncoder::push`] serializes a message onto the outbound buffer;
/// [`FrameEncoder::write_to`] flushes as much as the (typically
/// nonblocking) sink accepts and can be resumed after `WouldBlock` —
/// partial frames pick up exactly where the previous short write stopped.
/// Each frame may carry a completion token reported once its last byte
/// reaches the sink (drivers use this to end transmit windows).
#[derive(Debug, Default)]
pub struct FrameEncoder {
    /// Encoded frames awaiting transmission; the head frame may be
    /// partially written (`head_off` bytes already gone).
    frames: VecDeque<(Vec<u8>, Option<u64>)>,
    head_off: usize,
    pending: usize,
}

impl FrameEncoder {
    /// An empty encoder.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Serializes `msg` onto the outbound buffer.
    pub fn push(&mut self, msg: &Msg) {
        self.push_tracked(msg, None);
    }

    /// Serializes `msg`, tagging the frame with a completion `token`
    /// reported by [`FrameEncoder::write_to`] once fully written.
    pub fn push_tracked(&mut self, msg: &Msg, token: Option<u64>) {
        let frame = encode_frame(msg);
        self.pending += frame.len();
        self.frames.push_back((frame, token));
    }

    /// Bytes not yet accepted by the sink.
    pub fn pending_bytes(&self) -> usize {
        self.pending
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Writes as much as `w` accepts. Tokens of frames whose last byte was
    /// written are appended to `completed`. Returns `Ok(true)` when the
    /// buffer drained, `Ok(false)` when the sink would block.
    ///
    /// # Errors
    ///
    /// Propagates sink errors other than `WouldBlock` (`Interrupted` is
    /// retried); a sink accepting zero bytes surfaces as `WriteZero`.
    pub fn write_to<W: Write>(&mut self, w: &mut W, completed: &mut Vec<u64>) -> io::Result<bool> {
        while let Some((frame, token)) = self.frames.front() {
            match w.write(&frame[self.head_off..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.head_off += n;
                    self.pending -= n;
                    if self.head_off == frame.len() {
                        if let Some(t) = token {
                            completed.push(*t);
                        }
                        self.frames.pop_front();
                        self.head_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Encodes `msg` as one frame into a fresh buffer.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let body = msg.to_wire_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Writes `msg` as one frame to a blocking stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(mut w: W, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads one complete frame from a blocking stream and decodes the message.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary. EOF *inside* a
/// frame — even inside the 4-byte header — is a torn frame and errors
/// (`UnexpectedEof`), matching [`FrameDecoder::mid_frame`].
///
/// # Errors
///
/// I/O errors propagate; decode failures and oversized frames surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Option<Msg>> {
    let mut hdr = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut hdr[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::FrameTooLarge {
                declared: len,
                max: MAX_FRAME,
            },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let msg =
        Msg::from_wire_bytes(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RequestId};
    use crate::msg::Role;

    fn sample() -> Msg {
        Msg::Hello {
            role: Role::Client,
            node: NodeId(3),
        }
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = vec![
            sample(),
            Msg::Ack { req: RequestId(1) },
            Msg::Ack { req: RequestId(2) },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn framebuf_handles_arbitrary_splits() {
        let msgs = vec![sample(), Msg::Ack { req: RequestId(7) }];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        for split in 1..wire.len().min(40) {
            let mut fb = FrameBuf::new(MAX_FRAME);
            let mut frames = Vec::new();
            for part in wire.chunks(split) {
                frames.extend(fb.feed(part).unwrap());
            }
            assert_eq!(frames.len(), msgs.len(), "split={split}");
            for (f, m) in frames.iter().zip(&msgs) {
                assert_eq!(&Msg::from_wire_bytes(f).unwrap(), m);
            }
            assert_eq!(fb.pending(), 0);
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fb = FrameBuf::new(16);
        let mut data = (17u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[0; 17]);
        assert!(matches!(
            fb.feed(&data),
            Err(ProtoError::FrameTooLarge {
                declared: 17,
                max: 16
            })
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut wire = encode_frame(&sample());
        wire.truncate(wire.len() - 1);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn decoder_yields_messages_across_splits() {
        let msgs = vec![
            sample(),
            Msg::Ack { req: RequestId(7) },
            Msg::PutChunk {
                req: RequestId(8),
                chunk: crate::ids::ChunkId::for_content(b"xyz"),
                size: 3,
                data: Bytes::from_static(b"xyz"),
                background: false,
            },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        for split in 1..wire.len().min(48) {
            let mut dec = FrameDecoder::new(MAX_FRAME);
            let mut out = Vec::new();
            for part in wire.chunks(split) {
                dec.feed(part, &mut out).unwrap();
            }
            assert_eq!(out, msgs, "split={split}");
            assert!(!dec.mid_frame());
        }
    }

    #[test]
    fn decoder_rejects_oversize_and_poisons() {
        let mut dec = FrameDecoder::new(16);
        let mut out = Vec::new();
        let data = (17u32).to_le_bytes();
        assert!(matches!(
            dec.feed(&data, &mut out),
            Err(ProtoError::FrameTooLarge {
                declared: 17,
                max: 16
            })
        ));
        assert!(dec.is_poisoned());
        assert!(dec.feed(&[0], &mut out).is_err());
    }

    #[test]
    fn decoder_reports_torn_frames() {
        let wire = encode_frame(&sample());
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        dec.feed(&wire[..wire.len() - 1], &mut out).unwrap();
        assert!(out.is_empty());
        assert!(dec.mid_frame(), "EOF here would tear the frame");
    }

    #[test]
    fn decoder_slices_payload_without_copying() {
        let payload = vec![42u8; 4096];
        let msg = Msg::PutChunk {
            req: RequestId(1),
            chunk: crate::ids::ChunkId::for_content(&payload),
            size: payload.len() as u32,
            data: Bytes::from(payload.clone()),
            background: false,
        };
        let wire = encode_frame(&msg);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        dec.feed(&wire, &mut out).unwrap();
        let Msg::PutChunk { data, .. } = &out[0] else {
            panic!("wrong message");
        };
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn encoder_resumes_across_short_writes() {
        struct Dribble {
            out: Vec<u8>,
            budget: usize,
        }
        impl io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.budget).min(3);
                self.out.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let msgs = vec![sample(), Msg::Ack { req: RequestId(2) }];
        let mut enc = FrameEncoder::new();
        enc.push_tracked(&msgs[0], Some(10));
        enc.push_tracked(&msgs[1], Some(11));
        let total = enc.pending_bytes();
        let mut sink = Dribble {
            out: Vec::new(),
            budget: 0,
        };
        let mut completed = Vec::new();
        // Repeatedly grant tiny write budgets until everything drains.
        let mut drained = false;
        for _ in 0..total + 8 {
            sink.budget = 2;
            if enc.write_to(&mut sink, &mut completed).unwrap() {
                drained = true;
                break;
            }
        }
        assert!(drained);
        assert_eq!(completed, vec![10, 11]);
        // The dribbled byte stream is the exact concatenated frames.
        let mut expect = Vec::new();
        for m in &msgs {
            expect.extend_from_slice(&encode_frame(m));
        }
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn garbage_body_is_invalid_data() {
        let mut wire = (2u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[255, 255]);
        let err = read_frame(std::io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
