//! Length-prefixed framing for byte streams.
//!
//! Each frame is a little-endian `u32` length followed by that many payload
//! bytes (one encoded [`Msg`]). [`FrameBuf`] is a sans-IO
//! incremental decoder — feed it arbitrary byte slices as they arrive and
//! pull out complete frames — while [`read_frame`]/[`write_frame`] are
//! blocking helpers for `std::io` streams.

use std::io::{self, Read, Write};

use crate::codec::Wire;
use crate::error::ProtoError;
use crate::msg::Msg;

/// Default maximum accepted frame: 64 MiB (comfortably above the largest
/// chunk payload stdchk ships).
pub const MAX_FRAME: u32 = 64 << 20;

/// Incremental frame decoder for sans-IO use.
///
/// # Examples
///
/// ```
/// use stdchk_proto::frame::FrameBuf;
///
/// let mut fb = FrameBuf::new(1024);
/// let frame = [3u8, 0, 0, 0, b'a', b'b', b'c'];
/// // Feed byte-by-byte: no frame until complete.
/// for (i, b) in frame.iter().enumerate() {
///     let got = fb.feed(std::slice::from_ref(b)).unwrap();
///     if i < frame.len() - 1 {
///         assert!(got.is_empty());
///     } else {
///         assert_eq!(got, vec![b"abc".to_vec()]);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameBuf {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: u32) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends incoming bytes and returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] if a header declares a frame
    /// beyond the configured maximum; the decoder is then poisoned and the
    /// connection should be dropped.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, ProtoError> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
            if len > self.max_frame {
                return Err(ProtoError::FrameTooLarge {
                    declared: len,
                    max: self.max_frame,
                });
            }
            let total = 4 + len as usize;
            if self.buf.len() < total {
                break;
            }
            out.push(self.buf[4..total].to_vec());
            self.buf.drain(..total);
        }
        Ok(out)
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Encodes `msg` as one frame into a fresh buffer.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let body = msg.to_wire_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Writes `msg` as one frame to a blocking stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(mut w: W, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads one complete frame from a blocking stream and decodes the message.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors propagate; decode failures and oversized frames surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Option<Msg>> {
    let mut hdr = [0u8; 4];
    match r.read_exact(&mut hdr) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::FrameTooLarge {
                declared: len,
                max: MAX_FRAME,
            },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let msg =
        Msg::from_wire_bytes(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RequestId};
    use crate::msg::Role;

    fn sample() -> Msg {
        Msg::Hello {
            role: Role::Client,
            node: NodeId(3),
        }
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = vec![
            sample(),
            Msg::Ack { req: RequestId(1) },
            Msg::Ack { req: RequestId(2) },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn framebuf_handles_arbitrary_splits() {
        let msgs = vec![sample(), Msg::Ack { req: RequestId(7) }];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        for split in 1..wire.len().min(40) {
            let mut fb = FrameBuf::new(MAX_FRAME);
            let mut frames = Vec::new();
            for part in wire.chunks(split) {
                frames.extend(fb.feed(part).unwrap());
            }
            assert_eq!(frames.len(), msgs.len(), "split={split}");
            for (f, m) in frames.iter().zip(&msgs) {
                assert_eq!(&Msg::from_wire_bytes(f).unwrap(), m);
            }
            assert_eq!(fb.pending(), 0);
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fb = FrameBuf::new(16);
        let mut data = (17u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[0; 17]);
        assert!(matches!(
            fb.feed(&data),
            Err(ProtoError::FrameTooLarge {
                declared: 17,
                max: 16
            })
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut wire = encode_frame(&sample());
        wire.truncate(wire.len() - 1);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn garbage_body_is_invalid_data() {
        let mut wire = (2u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[255, 255]);
        let err = read_frame(std::io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
