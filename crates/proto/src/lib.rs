//! Wire protocol for the stdchk checkpoint storage system.
//!
//! Defines everything that crosses a node boundary:
//!
//! - [`ids`]: strongly-typed identifiers ([`NodeId`], [`FileId`],
//!   [`ChunkId`] = SHA-256 of chunk content, …).
//! - [`chunkmap`]: the chunk-map — the ordered list of content-addressed
//!   chunks that constitutes a file version, plus replica locations.
//! - [`policy`]: automated data-management (retention) policies.
//! - [`msg`]: every protocol message exchanged between clients, the metadata
//!   manager, and benefactor nodes.
//! - [`codec`]: a hand-written, dependency-free binary encoding with
//!   round-trip property tests.
//! - [`frame`]: length-prefixed framing for byte streams (TCP).
//! - [`meta`]: durable manager-metadata mutation records and snapshots
//!   (the payloads of the manager's write-ahead log).
//!
//! The encoding is deliberately explicit (no serde): each message documents
//! its own layout, unknown tags fail loudly, and the format can evolve by
//! adding tags.

#![forbid(unsafe_code)]

pub mod chunkmap;
pub mod codec;
pub mod error;
pub mod frame;
pub mod ids;
pub mod meta;
pub mod msg;
pub mod policy;

pub use chunkmap::{ChunkEntry, ChunkMap, FileVersionView};
pub use error::{ErrorCode, ProtoError};
pub use ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
pub use msg::Msg;
pub use policy::RetentionPolicy;
