//! The stdchk protocol messages.
//!
//! One [`Msg`] enum carries every message so that a single framed stream can
//! transport any conversation. The four conversations are:
//!
//! - **client ↔ manager** — namespace and metadata: create/commit a version
//!   (session semantics: the commit is the atomic visibility point), extend
//!   eager reservations, read chunk-maps, directory listing, deletion,
//!   retention policies;
//! - **client ↔ benefactor** — the data path: `PutChunk`/`GetChunk`;
//! - **benefactor ↔ manager** — soft-state registration (heartbeats carrying
//!   free space), pull-based garbage collection, replication commands and
//!   reports, and manager-recovery re-offers;
//! - **benefactor ↔ benefactor** — replication copies reuse `PutChunk` with
//!   `background = true` so they can be de-prioritized below client writes.

use bytes::Bytes;

use crate::chunkmap::{ChunkEntry, ChunkMap, FileVersionView};
use crate::codec::{Reader, Wire, Writer};
use crate::error::{ErrorCode, ProtoError};
use crate::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use crate::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

/// File metadata returned by `GetAttr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileAttr {
    /// Size in bytes of the latest committed version.
    pub size: u64,
    /// Number of committed versions currently retained.
    pub versions: u32,
    /// Id of the latest committed version.
    pub latest: VersionId,
    /// Commit time of the latest version.
    pub mtime: Time,
    /// True for directories.
    pub is_dir: bool,
}

/// One row of a directory listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (not a full path).
    pub name: String,
    /// Attributes of the entry.
    pub attr: FileAttr,
}

/// One replication copy order inside a `ReplicateCmd`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaCopy {
    /// The chunk to copy (the source benefactor already stores it).
    pub chunk: ChunkId,
    /// The benefactor that should receive the copy.
    pub target: NodeId,
}

/// Summary of one committed version, for `ListVersions`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionInfo {
    /// Version id.
    pub version: VersionId,
    /// File size of that version.
    pub size: u64,
    /// Commit time.
    pub mtime: Time,
}

/// Per-commit dedup accounting carried by `CommitChunkMap` and surfaced in
/// the manager's commit log line: how the version's chunks travelled
/// (negotiated away entirely, shipped as deltas, or shipped in full).
/// `offered`/`wanted` stay zero when the session did not negotiate; the
/// byte counters are filled either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupSummary {
    /// Distinct chunks offered to the manager via `OfferChunks`.
    pub offered: u32,
    /// Chunks the manager asked for (the rest committed by reference).
    pub wanted: u32,
    /// Bytes never sent because the pool already stored the chunk.
    pub reused_bytes: u64,
    /// Bytes sent as delta encodings (`DeltaPutChunk` payloads).
    pub delta_bytes: u64,
    /// Bytes sent as full `PutChunk` payloads.
    pub full_bytes: u64,
}

/// Role announced by the `Hello` handshake on a fresh connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// A client proxy (application side).
    Client,
    /// A storage donor.
    Benefactor,
    /// The metadata manager (used by manager-initiated connections).
    Manager,
}

/// Every message in the stdchk protocol.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Msg {
    // ------------------------------------------------------ generic
    /// Connection handshake: announces the sender's role and id.
    Hello {
        /// Sender role.
        role: Role,
        /// Sender node id (0 if not yet assigned).
        node: NodeId,
    },
    /// Positive reply for requests with no payload.
    Ack {
        /// Correlates with the request.
        req: RequestId,
    },
    /// Transport-level liveness probe. Handled (and answered with
    /// [`Msg::Pong`]) by the connection layer itself; state machines never
    /// see it.
    Ping {
        /// Echoed back in the matching `Pong`.
        nonce: u64,
    },
    /// Reply to [`Msg::Ping`]. Swallowed by the connection layer.
    Pong {
        /// The probed nonce.
        nonce: u64,
    },
    /// Negative reply for any request.
    ErrorReply {
        /// Correlates with the request.
        req: RequestId,
        /// Status code.
        code: ErrorCode,
        /// Human-readable context.
        detail: String,
    },

    // ------------------------------------------------------ client -> manager
    /// Opens a new version of `path` for writing and eagerly reserves space.
    CreateFile {
        /// Request id.
        req: RequestId,
        /// Writing client.
        client: NodeId,
        /// Absolute stdchk path (e.g. `/app/bms.n4.t12`).
        path: String,
        /// How many benefactors to stripe across.
        stripe_width: u32,
        /// Desired replica count (1 = no replication).
        replication: u32,
        /// Initial eager reservation, in chunks.
        expected_chunks: u32,
    },
    /// Grants a write session.
    CreateFileOk {
        /// Request id.
        req: RequestId,
        /// File id (created on first version).
        file: FileId,
        /// The uncommitted version this session will produce.
        version: VersionId,
        /// Reservation handle for extensions/commit/abort.
        reservation: ReservationId,
        /// Benefactors to stripe across, in round-robin order.
        stripe: Vec<NodeId>,
        /// Chunk entries of the previous committed version, for
        /// incremental-checkpointing dedup (empty for first version).
        prev_chunks: Vec<ChunkEntry>,
        /// Chunk size the pool is configured for.
        chunk_size: u32,
    },
    /// Requests more reserved space (and possibly fresh stripe targets).
    ExtendReservation {
        /// Request id.
        req: RequestId,
        /// The reservation being grown.
        reservation: ReservationId,
        /// Additional chunks needed.
        additional_chunks: u32,
    },
    /// Grants an extension.
    ExtendOk {
        /// Request id.
        req: RequestId,
        /// Current stripe (may differ if benefactors failed).
        stripe: Vec<NodeId>,
    },
    /// Atomically commits the version's chunk-map (the `close()` step).
    CommitChunkMap {
        /// Request id.
        req: RequestId,
        /// The write session's reservation.
        reservation: ReservationId,
        /// Chunk-map in file order.
        entries: Vec<ChunkEntry>,
        /// Where each distinct chunk was stored (primary copies).
        placements: Vec<(ChunkId, Vec<NodeId>)>,
        /// If true the commit succeeds only once the replication target is
        /// met (pessimistic write semantics).
        pessimistic: bool,
        /// How this version's bytes travelled (all-zero without negotiation).
        dedup: DedupSummary,
    },
    /// Successful commit.
    CommitOk {
        /// Request id.
        req: RequestId,
        /// Committed file.
        file: FileId,
        /// Committed version.
        version: VersionId,
        /// Manager-suggested checkpoint interval derived from observed
        /// fleet churn ([`Dur::ZERO`] when the manager has no guidance).
        suggested_interval: Dur,
    },
    /// Abandons a write session, releasing its reservation.
    AbortWrite {
        /// Request id.
        req: RequestId,
        /// The session's reservation.
        reservation: ReservationId,
    },
    /// Fetches the chunk-map and replica locations of a version.
    GetFile {
        /// Request id.
        req: RequestId,
        /// Path to read.
        path: String,
        /// Specific version, or `None` for latest committed.
        version: Option<VersionId>,
    },
    /// Read view of one version.
    FileViewReply {
        /// Request id.
        req: RequestId,
        /// Chunk-map plus locations.
        view: FileVersionView,
    },
    /// Lists a directory.
    ListDir {
        /// Request id.
        req: RequestId,
        /// Directory path.
        path: String,
    },
    /// Directory contents.
    DirListingReply {
        /// Request id.
        req: RequestId,
        /// Entries in name order.
        entries: Vec<DirEntry>,
    },
    /// Stats a path.
    GetAttr {
        /// Request id.
        req: RequestId,
        /// Path to stat.
        path: String,
    },
    /// Attribute reply.
    AttrReply {
        /// Request id.
        req: RequestId,
        /// Attributes.
        attr: FileAttr,
    },
    /// Lists committed versions of a file.
    ListVersions {
        /// Request id.
        req: RequestId,
        /// File path.
        path: String,
    },
    /// Version list reply.
    VersionListReply {
        /// Request id.
        req: RequestId,
        /// Versions, oldest first.
        versions: Vec<VersionInfo>,
    },
    /// Deletes a file (all versions). Benefactor space is reclaimed lazily
    /// through garbage collection.
    DeleteFile {
        /// Request id.
        req: RequestId,
        /// Path to delete.
        path: String,
    },
    /// Sets the retention policy of a directory.
    SetPolicy {
        /// Request id.
        req: RequestId,
        /// Directory the policy applies to.
        dir: String,
        /// The policy.
        policy: RetentionPolicy,
        /// Optional `(min, max)` clamp for adaptive replication targets of
        /// files under this directory. `None` leaves the pool-wide bounds.
        repl_bounds: Option<(u32, u32)>,
    },
    /// Resolves node ids to dial addresses (real-network deployments).
    ResolveNodes {
        /// Request id.
        req: RequestId,
        /// Nodes to resolve.
        nodes: Vec<NodeId>,
    },
    /// Address resolution reply. Unknown nodes are omitted.
    NodeAddrsReply {
        /// Request id.
        req: RequestId,
        /// `(node, address)` pairs.
        addrs: Vec<(NodeId, String)>,
    },
    /// Have/want negotiation, step 1: the writing session offers the chunk
    /// ids it is about to ship so the manager can answer which ones the pool
    /// already stores (incremental-checkpoint dedup across versions and
    /// files).
    OfferChunks {
        /// Request id.
        req: RequestId,
        /// The write session's reservation (scopes the offer and pins the
        /// already-stored chunks against GC until commit/abort/expiry).
        reservation: ReservationId,
        /// Offered chunks, in the session's ship order.
        entries: Vec<ChunkEntry>,
    },
    /// Have/want negotiation, step 2: which offered chunks must actually
    /// transfer. The rest commit by reference.
    WantChunks {
        /// Request id (matches the `OfferChunks`).
        req: RequestId,
        /// Indices into the offer's `entries` that must be shipped.
        wanted: Vec<u32>,
    },

    // ------------------------------------------------------ benefactor <-> manager
    /// Asks the manager for a node id (first contact of a new benefactor).
    JoinRequest {
        /// Request id.
        req: RequestId,
        /// Dial address for the data path (empty under the simulator).
        addr: String,
        /// Total contributed bytes.
        total_space: u64,
    },
    /// Node id grant.
    JoinOk {
        /// Request id.
        req: RequestId,
        /// Assigned id.
        node: NodeId,
        /// How often to heartbeat.
        heartbeat_every: Dur,
    },
    /// Soft-state registration refresh (also carries free space and the
    /// dial address, so a restarted manager re-learns the full roster).
    Heartbeat {
        /// Sender.
        node: NodeId,
        /// Free contributed bytes.
        free_space: u64,
        /// Total contributed bytes.
        total_space: u64,
        /// Data-path dial address (empty under the simulator).
        addr: String,
    },
    /// Heartbeat acknowledgement.
    HeartbeatAck {
        /// Acknowledged node.
        node: NodeId,
        /// True if the manager wants a `GcReport` soon.
        gc_due: bool,
    },
    /// Pull-based GC: the full inventory of chunks this benefactor stores.
    GcReport {
        /// Request id.
        req: RequestId,
        /// Sender.
        node: NodeId,
        /// Every stored chunk id.
        chunks: Vec<ChunkId>,
    },
    /// GC verdict: which reported chunks are orphans and can be deleted.
    GcReply {
        /// Request id.
        req: RequestId,
        /// Deletable chunk ids.
        deletable: Vec<ChunkId>,
    },
    /// Orders a source benefactor to copy chunks to targets (shadow
    /// chunk-map execution).
    ReplicateCmd {
        /// Replication job id.
        job: u64,
        /// Copy orders.
        copies: Vec<ReplicaCopy>,
    },
    /// Reports a replication job's outcome back to the manager.
    ReplicateReport {
        /// Replication job id.
        job: u64,
        /// Reporting (source) benefactor.
        node: NodeId,
        /// Successful copies.
        done: Vec<ReplicaCopy>,
        /// Failed copies.
        failed: Vec<ReplicaCopy>,
    },
    /// Orders a benefactor to drop chunks (pruning fast-path; GC remains the
    /// backstop).
    DeleteChunks {
        /// Chunks to drop.
        chunks: Vec<ChunkId>,
    },

    // ------------------------------------------------------ manager recovery
    /// Client → benefactor: stash the final chunk-map so it can be re-offered
    /// if the manager fails before the commit (paper §IV.A failure handling).
    StashCommit {
        /// Request id.
        req: RequestId,
        /// Path being written.
        path: String,
        /// Chunk-map in file order.
        entries: Vec<ChunkEntry>,
        /// Primary placements.
        placements: Vec<(ChunkId, Vec<NodeId>)>,
    },
    /// Benefactor → manager after a manager restart: re-offer a stashed
    /// commit. The manager accepts the file once ≥ ⅔ of the stripe concurs.
    ReofferCommit {
        /// Request id.
        req: RequestId,
        /// Re-offering benefactor.
        node: NodeId,
        /// Path that was being written.
        path: String,
        /// Chunk-map in file order.
        entries: Vec<ChunkEntry>,
        /// Primary placements.
        placements: Vec<(ChunkId, Vec<NodeId>)>,
    },

    // ------------------------------------------------------ data path
    /// Stores one chunk on a benefactor.
    PutChunk {
        /// Request id.
        req: RequestId,
        /// Content hash of `data` (verified by the receiver).
        chunk: ChunkId,
        /// Logical chunk size in bytes. Equals `data.len()` for real
        /// payloads; carries the size alone when the payload is virtual
        /// (simulation mode ships no bytes).
        size: u32,
        /// Chunk payload (may be empty in virtual/simulation mode).
        data: Bytes,
        /// True for background replication traffic (lower priority).
        background: bool,
    },
    /// Chunk stored (and hash-verified).
    PutChunkOk {
        /// Request id.
        req: RequestId,
        /// Stored chunk.
        chunk: ChunkId,
        /// Storing benefactor.
        node: NodeId,
    },
    /// Fetches one chunk from a benefactor.
    GetChunk {
        /// Request id.
        req: RequestId,
        /// Requested chunk.
        chunk: ChunkId,
    },
    /// Chunk payload reply.
    GetChunkOk {
        /// Request id.
        req: RequestId,
        /// The chunk id.
        chunk: ChunkId,
        /// Logical chunk size in bytes (see `PutChunk::size`).
        size: u32,
        /// Chunk payload (may be empty in virtual/simulation mode).
        data: Bytes,
    },
    /// Stores one chunk as a delta against a chunk the benefactor already
    /// holds. The benefactor loads `basis`, applies `delta`, verifies the
    /// reconstruction hashes to `chunk`, and stores the full bytes — the
    /// store and the read path never see deltas. `NotFound` tells the client
    /// to fall back to a full [`Msg::PutChunk`].
    DeltaPutChunk {
        /// Request id.
        req: RequestId,
        /// Content hash of the *reconstructed* chunk.
        chunk: ChunkId,
        /// The already-stored chunk the delta is encoded against.
        basis: ChunkId,
        /// Size in bytes of the reconstructed chunk.
        size: u32,
        /// Delta ops stream (see `stdchk_chunker::delta`).
        delta: Bytes,
    },
}

impl Msg {
    /// The request id this message correlates with, if any.
    pub fn request_id(&self) -> Option<RequestId> {
        use Msg::*;
        match self {
            Ack { req }
            | ErrorReply { req, .. }
            | CreateFile { req, .. }
            | CreateFileOk { req, .. }
            | ExtendReservation { req, .. }
            | ExtendOk { req, .. }
            | CommitChunkMap { req, .. }
            | CommitOk { req, .. }
            | AbortWrite { req, .. }
            | GetFile { req, .. }
            | FileViewReply { req, .. }
            | ListDir { req, .. }
            | DirListingReply { req, .. }
            | GetAttr { req, .. }
            | AttrReply { req, .. }
            | ListVersions { req, .. }
            | VersionListReply { req, .. }
            | DeleteFile { req, .. }
            | SetPolicy { req, .. }
            | ResolveNodes { req, .. }
            | NodeAddrsReply { req, .. }
            | OfferChunks { req, .. }
            | WantChunks { req, .. }
            | DeltaPutChunk { req, .. }
            | JoinRequest { req, .. }
            | JoinOk { req, .. }
            | GcReport { req, .. }
            | GcReply { req, .. }
            | StashCommit { req, .. }
            | ReofferCommit { req, .. }
            | PutChunk { req, .. }
            | PutChunkOk { req, .. }
            | GetChunk { req, .. }
            | GetChunkOk { req, .. } => Some(*req),
            Hello { .. }
            | Ping { .. }
            | Pong { .. }
            | Heartbeat { .. }
            | HeartbeatAck { .. }
            | ReplicateCmd { .. }
            | ReplicateReport { .. }
            | DeleteChunks { .. } => None,
        }
    }

    /// Decodes one message out of a complete frame body, slicing byte
    /// payloads (`PutChunk::data`, `GetChunkOk::data`) out of `frame`
    /// without copying. The incremental [`FrameDecoder`] uses this so a
    /// chunk payload travels from the socket receive buffer to the blob
    /// store as one shared allocation.
    ///
    /// [`FrameDecoder`]: crate::frame::FrameDecoder
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on truncated, trailing, or malformed bytes.
    pub fn from_frame(frame: &Bytes) -> Result<Msg, ProtoError> {
        let mut r = Reader::shared(frame);
        let msg = Msg::decode(&mut r)?;
        r.finish()?;
        Ok(msg)
    }

    /// Approximate wire size in bytes, used by the simulator to cost
    /// transfers without serializing.
    pub fn wire_size(&self) -> u64 {
        match self {
            Msg::PutChunk { size, .. } => 64 + *size as u64,
            Msg::GetChunkOk { size, .. } => 64 + *size as u64,
            Msg::DeltaPutChunk { delta, .. } => 112 + delta.len() as u64,
            Msg::OfferChunks { entries, .. } => 32 + entries.len() as u64 * 36,
            Msg::WantChunks { wanted, .. } => 24 + wanted.len() as u64 * 4,
            Msg::CommitChunkMap {
                entries,
                placements,
                ..
            } => 64 + entries.len() as u64 * 36 + placements.len() as u64 * 48,
            Msg::CreateFileOk { prev_chunks, .. } => 96 + prev_chunks.len() as u64 * 36,
            Msg::GcReport { chunks, .. }
            | Msg::GcReply {
                deletable: chunks, ..
            } => 32 + chunks.len() as u64 * 32,
            _ => 128,
        }
    }
}

// ---------------------------------------------------------------- Wire impls

impl Wire for Role {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Role::Client => 0,
            Role::Benefactor => 1,
            Role::Manager => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(match r.get_u8()? {
            0 => Role::Client,
            1 => Role::Benefactor,
            2 => Role::Manager,
            v => return Err(ProtoError::bad(format!("unknown role {v}"))),
        })
    }
}

impl Wire for ErrorCode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.to_wire());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        ErrorCode::from_wire(r.get_u8()?)
    }
}

impl Wire for ChunkEntry {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_u32(self.size);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(ChunkEntry {
            id: ChunkId::decode(r)?,
            size: r.get_u32()?,
        })
    }
}

impl Wire for ChunkMap {
    fn encode(&self, w: &mut Writer) {
        self.entries().to_vec().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(ChunkMap::from_entries(Vec::<ChunkEntry>::decode(r)?))
    }
}

impl Wire for FileVersionView {
    fn encode(&self, w: &mut Writer) {
        self.version.encode(w);
        self.map.encode(w);
        self.locations.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(FileVersionView {
            version: VersionId::decode(r)?,
            map: ChunkMap::decode(r)?,
            locations: Vec::<(ChunkId, Vec<NodeId>)>::decode(r)?,
        })
    }
}

impl Wire for RetentionPolicy {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.wire_tag());
        match self {
            RetentionPolicy::NoIntervention => {}
            RetentionPolicy::AutomatedReplace { keep_last } => w.put_u32(*keep_last),
            RetentionPolicy::AutomatedPurge { after } => after.encode(w),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(match r.get_u8()? {
            0 => RetentionPolicy::NoIntervention,
            1 => RetentionPolicy::AutomatedReplace {
                keep_last: r.get_u32()?,
            },
            2 => RetentionPolicy::AutomatedPurge {
                after: Dur::decode(r)?,
            },
            v => return Err(ProtoError::bad(format!("unknown policy tag {v}"))),
        })
    }
}

impl Wire for FileAttr {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.size);
        w.put_u32(self.versions);
        self.latest.encode(w);
        self.mtime.encode(w);
        self.is_dir.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(FileAttr {
            size: r.get_u64()?,
            versions: r.get_u32()?,
            latest: VersionId::decode(r)?,
            mtime: Time::decode(r)?,
            is_dir: bool::decode(r)?,
        })
    }
}

impl Wire for DirEntry {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.attr.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(DirEntry {
            name: String::decode(r)?,
            attr: FileAttr::decode(r)?,
        })
    }
}

impl Wire for ReplicaCopy {
    fn encode(&self, w: &mut Writer) {
        self.chunk.encode(w);
        self.target.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(ReplicaCopy {
            chunk: ChunkId::decode(r)?,
            target: NodeId::decode(r)?,
        })
    }
}

impl Wire for DedupSummary {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.offered);
        w.put_u32(self.wanted);
        w.put_u64(self.reused_bytes);
        w.put_u64(self.delta_bytes);
        w.put_u64(self.full_bytes);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(DedupSummary {
            offered: r.get_u32()?,
            wanted: r.get_u32()?,
            reused_bytes: r.get_u64()?,
            delta_bytes: r.get_u64()?,
            full_bytes: r.get_u64()?,
        })
    }
}

impl Wire for VersionInfo {
    fn encode(&self, w: &mut Writer) {
        self.version.encode(w);
        w.put_u64(self.size);
        self.mtime.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(VersionInfo {
            version: VersionId::decode(r)?,
            size: r.get_u64()?,
            mtime: Time::decode(r)?,
        })
    }
}

macro_rules! msg_tags {
    ($($tag:literal => $variant:ident),* $(,)?) => {
        impl Msg {
            /// Stable wire tag of this message.
            pub fn wire_tag(&self) -> u8 {
                match self {
                    $(Msg::$variant { .. } => $tag,)*
                }
            }
        }
    };
}

msg_tags! {
    0 => Hello,
    1 => Ack,
    2 => ErrorReply,
    3 => Ping,
    4 => Pong,
    10 => CreateFile,
    11 => CreateFileOk,
    12 => ExtendReservation,
    13 => ExtendOk,
    14 => CommitChunkMap,
    15 => CommitOk,
    16 => AbortWrite,
    17 => GetFile,
    18 => FileViewReply,
    19 => ListDir,
    20 => DirListingReply,
    21 => GetAttr,
    22 => AttrReply,
    23 => ListVersions,
    24 => VersionListReply,
    25 => DeleteFile,
    26 => SetPolicy,
    27 => ResolveNodes,
    28 => NodeAddrsReply,
    29 => OfferChunks,
    30 => WantChunks,
    40 => JoinRequest,
    41 => JoinOk,
    42 => Heartbeat,
    43 => HeartbeatAck,
    44 => GcReport,
    45 => GcReply,
    46 => ReplicateCmd,
    47 => ReplicateReport,
    48 => DeleteChunks,
    50 => StashCommit,
    51 => ReofferCommit,
    60 => PutChunk,
    61 => PutChunkOk,
    62 => GetChunk,
    63 => GetChunkOk,
    64 => DeltaPutChunk,
}

impl Wire for Msg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.wire_tag());
        match self {
            Msg::Hello { role, node } => {
                role.encode(w);
                node.encode(w);
            }
            Msg::Ack { req } => req.encode(w),
            Msg::Ping { nonce } | Msg::Pong { nonce } => w.put_u64(*nonce),
            Msg::ErrorReply { req, code, detail } => {
                req.encode(w);
                code.encode(w);
                detail.encode(w);
            }
            Msg::CreateFile {
                req,
                client,
                path,
                stripe_width,
                replication,
                expected_chunks,
            } => {
                req.encode(w);
                client.encode(w);
                path.encode(w);
                w.put_u32(*stripe_width);
                w.put_u32(*replication);
                w.put_u32(*expected_chunks);
            }
            Msg::CreateFileOk {
                req,
                file,
                version,
                reservation,
                stripe,
                prev_chunks,
                chunk_size,
            } => {
                req.encode(w);
                file.encode(w);
                version.encode(w);
                reservation.encode(w);
                stripe.encode(w);
                prev_chunks.encode(w);
                w.put_u32(*chunk_size);
            }
            Msg::ExtendReservation {
                req,
                reservation,
                additional_chunks,
            } => {
                req.encode(w);
                reservation.encode(w);
                w.put_u32(*additional_chunks);
            }
            Msg::ExtendOk { req, stripe } => {
                req.encode(w);
                stripe.encode(w);
            }
            Msg::CommitChunkMap {
                req,
                reservation,
                entries,
                placements,
                pessimistic,
                dedup,
            } => {
                req.encode(w);
                reservation.encode(w);
                entries.encode(w);
                placements.encode(w);
                pessimistic.encode(w);
                dedup.encode(w);
            }
            Msg::CommitOk {
                req,
                file,
                version,
                suggested_interval,
            } => {
                req.encode(w);
                file.encode(w);
                version.encode(w);
                suggested_interval.encode(w);
            }
            Msg::AbortWrite { req, reservation } => {
                req.encode(w);
                reservation.encode(w);
            }
            Msg::GetFile { req, path, version } => {
                req.encode(w);
                path.encode(w);
                version.encode(w);
            }
            Msg::FileViewReply { req, view } => {
                req.encode(w);
                view.encode(w);
            }
            Msg::ListDir { req, path } => {
                req.encode(w);
                path.encode(w);
            }
            Msg::DirListingReply { req, entries } => {
                req.encode(w);
                entries.encode(w);
            }
            Msg::GetAttr { req, path } => {
                req.encode(w);
                path.encode(w);
            }
            Msg::AttrReply { req, attr } => {
                req.encode(w);
                attr.encode(w);
            }
            Msg::ListVersions { req, path } => {
                req.encode(w);
                path.encode(w);
            }
            Msg::VersionListReply { req, versions } => {
                req.encode(w);
                versions.encode(w);
            }
            Msg::DeleteFile { req, path } => {
                req.encode(w);
                path.encode(w);
            }
            Msg::SetPolicy {
                req,
                dir,
                policy,
                repl_bounds,
            } => {
                req.encode(w);
                dir.encode(w);
                policy.encode(w);
                repl_bounds.encode(w);
            }
            Msg::ResolveNodes { req, nodes } => {
                req.encode(w);
                nodes.encode(w);
            }
            Msg::NodeAddrsReply { req, addrs } => {
                req.encode(w);
                addrs.encode(w);
            }
            Msg::OfferChunks {
                req,
                reservation,
                entries,
            } => {
                req.encode(w);
                reservation.encode(w);
                entries.encode(w);
            }
            Msg::WantChunks { req, wanted } => {
                req.encode(w);
                wanted.encode(w);
            }
            Msg::JoinRequest {
                req,
                addr,
                total_space,
            } => {
                req.encode(w);
                addr.encode(w);
                w.put_u64(*total_space);
            }
            Msg::JoinOk {
                req,
                node,
                heartbeat_every,
            } => {
                req.encode(w);
                node.encode(w);
                heartbeat_every.encode(w);
            }
            Msg::Heartbeat {
                node,
                free_space,
                total_space,
                addr,
            } => {
                node.encode(w);
                w.put_u64(*free_space);
                w.put_u64(*total_space);
                addr.encode(w);
            }
            Msg::HeartbeatAck { node, gc_due } => {
                node.encode(w);
                gc_due.encode(w);
            }
            Msg::GcReport { req, node, chunks } => {
                req.encode(w);
                node.encode(w);
                chunks.encode(w);
            }
            Msg::GcReply { req, deletable } => {
                req.encode(w);
                deletable.encode(w);
            }
            Msg::ReplicateCmd { job, copies } => {
                w.put_u64(*job);
                copies.encode(w);
            }
            Msg::ReplicateReport {
                job,
                node,
                done,
                failed,
            } => {
                w.put_u64(*job);
                node.encode(w);
                done.encode(w);
                failed.encode(w);
            }
            Msg::DeleteChunks { chunks } => chunks.encode(w),
            Msg::StashCommit {
                req,
                path,
                entries,
                placements,
            } => {
                req.encode(w);
                path.encode(w);
                entries.encode(w);
                placements.encode(w);
            }
            Msg::ReofferCommit {
                req,
                node,
                path,
                entries,
                placements,
            } => {
                req.encode(w);
                node.encode(w);
                path.encode(w);
                entries.encode(w);
                placements.encode(w);
            }
            Msg::PutChunk {
                req,
                chunk,
                size,
                data,
                background,
            } => {
                req.encode(w);
                chunk.encode(w);
                w.put_u32(*size);
                data.encode(w);
                background.encode(w);
            }
            Msg::PutChunkOk { req, chunk, node } => {
                req.encode(w);
                chunk.encode(w);
                node.encode(w);
            }
            Msg::GetChunk { req, chunk } => {
                req.encode(w);
                chunk.encode(w);
            }
            Msg::GetChunkOk {
                req,
                chunk,
                size,
                data,
            } => {
                req.encode(w);
                chunk.encode(w);
                w.put_u32(*size);
                data.encode(w);
            }
            Msg::DeltaPutChunk {
                req,
                chunk,
                basis,
                size,
                delta,
            } => {
                req.encode(w);
                chunk.encode(w);
                basis.encode(w);
                w.put_u32(*size);
                delta.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => Msg::Hello {
                role: Role::decode(r)?,
                node: NodeId::decode(r)?,
            },
            1 => Msg::Ack {
                req: RequestId::decode(r)?,
            },
            3 => Msg::Ping {
                nonce: r.get_u64()?,
            },
            4 => Msg::Pong {
                nonce: r.get_u64()?,
            },
            2 => Msg::ErrorReply {
                req: RequestId::decode(r)?,
                code: ErrorCode::decode(r)?,
                detail: String::decode(r)?,
            },
            10 => Msg::CreateFile {
                req: RequestId::decode(r)?,
                client: NodeId::decode(r)?,
                path: String::decode(r)?,
                stripe_width: r.get_u32()?,
                replication: r.get_u32()?,
                expected_chunks: r.get_u32()?,
            },
            11 => Msg::CreateFileOk {
                req: RequestId::decode(r)?,
                file: FileId::decode(r)?,
                version: VersionId::decode(r)?,
                reservation: ReservationId::decode(r)?,
                stripe: Vec::decode(r)?,
                prev_chunks: Vec::decode(r)?,
                chunk_size: r.get_u32()?,
            },
            12 => Msg::ExtendReservation {
                req: RequestId::decode(r)?,
                reservation: ReservationId::decode(r)?,
                additional_chunks: r.get_u32()?,
            },
            13 => Msg::ExtendOk {
                req: RequestId::decode(r)?,
                stripe: Vec::decode(r)?,
            },
            14 => Msg::CommitChunkMap {
                req: RequestId::decode(r)?,
                reservation: ReservationId::decode(r)?,
                entries: Vec::decode(r)?,
                placements: Vec::decode(r)?,
                pessimistic: bool::decode(r)?,
                dedup: DedupSummary::decode(r)?,
            },
            15 => Msg::CommitOk {
                req: RequestId::decode(r)?,
                file: FileId::decode(r)?,
                version: VersionId::decode(r)?,
                suggested_interval: Dur::decode(r)?,
            },
            16 => Msg::AbortWrite {
                req: RequestId::decode(r)?,
                reservation: ReservationId::decode(r)?,
            },
            17 => Msg::GetFile {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
                version: Option::decode(r)?,
            },
            18 => Msg::FileViewReply {
                req: RequestId::decode(r)?,
                view: FileVersionView::decode(r)?,
            },
            19 => Msg::ListDir {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
            },
            20 => Msg::DirListingReply {
                req: RequestId::decode(r)?,
                entries: Vec::decode(r)?,
            },
            21 => Msg::GetAttr {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
            },
            22 => Msg::AttrReply {
                req: RequestId::decode(r)?,
                attr: FileAttr::decode(r)?,
            },
            23 => Msg::ListVersions {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
            },
            24 => Msg::VersionListReply {
                req: RequestId::decode(r)?,
                versions: Vec::decode(r)?,
            },
            25 => Msg::DeleteFile {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
            },
            26 => Msg::SetPolicy {
                req: RequestId::decode(r)?,
                dir: String::decode(r)?,
                policy: RetentionPolicy::decode(r)?,
                repl_bounds: Option::decode(r)?,
            },
            27 => Msg::ResolveNodes {
                req: RequestId::decode(r)?,
                nodes: Vec::decode(r)?,
            },
            28 => Msg::NodeAddrsReply {
                req: RequestId::decode(r)?,
                addrs: Vec::decode(r)?,
            },
            29 => Msg::OfferChunks {
                req: RequestId::decode(r)?,
                reservation: ReservationId::decode(r)?,
                entries: Vec::decode(r)?,
            },
            30 => Msg::WantChunks {
                req: RequestId::decode(r)?,
                wanted: Vec::decode(r)?,
            },
            40 => Msg::JoinRequest {
                req: RequestId::decode(r)?,
                addr: String::decode(r)?,
                total_space: r.get_u64()?,
            },
            41 => Msg::JoinOk {
                req: RequestId::decode(r)?,
                node: NodeId::decode(r)?,
                heartbeat_every: Dur::decode(r)?,
            },
            42 => Msg::Heartbeat {
                node: NodeId::decode(r)?,
                free_space: r.get_u64()?,
                total_space: r.get_u64()?,
                addr: String::decode(r)?,
            },
            43 => Msg::HeartbeatAck {
                node: NodeId::decode(r)?,
                gc_due: bool::decode(r)?,
            },
            44 => Msg::GcReport {
                req: RequestId::decode(r)?,
                node: NodeId::decode(r)?,
                chunks: Vec::decode(r)?,
            },
            45 => Msg::GcReply {
                req: RequestId::decode(r)?,
                deletable: Vec::decode(r)?,
            },
            46 => Msg::ReplicateCmd {
                job: r.get_u64()?,
                copies: Vec::decode(r)?,
            },
            47 => Msg::ReplicateReport {
                job: r.get_u64()?,
                node: NodeId::decode(r)?,
                done: Vec::decode(r)?,
                failed: Vec::decode(r)?,
            },
            48 => Msg::DeleteChunks {
                chunks: Vec::decode(r)?,
            },
            50 => Msg::StashCommit {
                req: RequestId::decode(r)?,
                path: String::decode(r)?,
                entries: Vec::decode(r)?,
                placements: Vec::decode(r)?,
            },
            51 => Msg::ReofferCommit {
                req: RequestId::decode(r)?,
                node: NodeId::decode(r)?,
                path: String::decode(r)?,
                entries: Vec::decode(r)?,
                placements: Vec::decode(r)?,
            },
            60 => Msg::PutChunk {
                req: RequestId::decode(r)?,
                chunk: ChunkId::decode(r)?,
                size: r.get_u32()?,
                data: Bytes::decode(r)?,
                background: bool::decode(r)?,
            },
            61 => Msg::PutChunkOk {
                req: RequestId::decode(r)?,
                chunk: ChunkId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            62 => Msg::GetChunk {
                req: RequestId::decode(r)?,
                chunk: ChunkId::decode(r)?,
            },
            63 => Msg::GetChunkOk {
                req: RequestId::decode(r)?,
                chunk: ChunkId::decode(r)?,
                size: r.get_u32()?,
                data: Bytes::decode(r)?,
            },
            64 => Msg::DeltaPutChunk {
                req: RequestId::decode(r)?,
                chunk: ChunkId::decode(r)?,
                basis: ChunkId::decode(r)?,
                size: r.get_u32()?,
                delta: Bytes::decode(r)?,
            },
            other => return Err(ProtoError::bad(format!("unknown message tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        let e = |n: u64, s: u32| ChunkEntry {
            id: ChunkId::test_id(n),
            size: s,
        };
        vec![
            Msg::Hello {
                role: Role::Benefactor,
                node: NodeId(4),
            },
            Msg::Ack { req: RequestId(9) },
            Msg::Ping { nonce: 17 },
            Msg::Pong { nonce: 17 },
            Msg::ErrorReply {
                req: RequestId(1),
                code: ErrorCode::NoSpace,
                detail: "pool exhausted".into(),
            },
            Msg::CreateFile {
                req: RequestId(2),
                client: NodeId(8),
                path: "/bms/app.n1.t3".into(),
                stripe_width: 4,
                replication: 2,
                expected_chunks: 16,
            },
            Msg::CreateFileOk {
                req: RequestId(2),
                file: FileId(1),
                version: VersionId(3),
                reservation: ReservationId(5),
                stripe: vec![NodeId(1), NodeId(2)],
                prev_chunks: vec![e(1, 1024), e(2, 512)],
                chunk_size: 1 << 20,
            },
            Msg::CommitChunkMap {
                req: RequestId(3),
                reservation: ReservationId(5),
                entries: vec![e(1, 100), e(1, 100), e(3, 7)],
                placements: vec![
                    (ChunkId::test_id(1), vec![NodeId(1)]),
                    (ChunkId::test_id(3), vec![NodeId(2), NodeId(1)]),
                ],
                pessimistic: true,
                dedup: DedupSummary {
                    offered: 3,
                    wanted: 1,
                    reused_bytes: 200,
                    delta_bytes: 0,
                    full_bytes: 7,
                },
            },
            Msg::CommitOk {
                req: RequestId(3),
                file: FileId(1),
                version: VersionId(4),
                suggested_interval: Dur::from_secs(300),
            },
            Msg::OfferChunks {
                req: RequestId(16),
                reservation: ReservationId(5),
                entries: vec![e(1, 100), e(3, 7)],
            },
            Msg::WantChunks {
                req: RequestId(16),
                wanted: vec![1],
            },
            Msg::DeltaPutChunk {
                req: RequestId(17),
                chunk: ChunkId::for_content(b"new chunk"),
                basis: ChunkId::for_content(b"old chunk"),
                size: 9,
                delta: Bytes::from_static(&[0, 4, 0, 0, 0, b'n', b'e', b'w', b' ']),
            },
            Msg::GetFile {
                req: RequestId(4),
                path: "/x".into(),
                version: Some(VersionId(2)),
            },
            Msg::FileViewReply {
                req: RequestId(4),
                view: FileVersionView {
                    version: VersionId(2),
                    map: ChunkMap::from_entries(vec![e(1, 10)]),
                    locations: vec![(ChunkId::test_id(1), vec![NodeId(7)])],
                },
            },
            Msg::DirListingReply {
                req: RequestId(5),
                entries: vec![DirEntry {
                    name: "app.n1.t3".into(),
                    attr: FileAttr {
                        size: 300,
                        versions: 3,
                        latest: VersionId(3),
                        mtime: Time::from_secs(60),
                        is_dir: false,
                    },
                }],
            },
            Msg::SetPolicy {
                req: RequestId(6),
                dir: "/bms".into(),
                policy: RetentionPolicy::AutomatedPurge {
                    after: Dur::from_secs(3600),
                },
                repl_bounds: Some((2, 4)),
            },
            Msg::ResolveNodes {
                req: RequestId(15),
                nodes: vec![NodeId(1), NodeId(2)],
            },
            Msg::NodeAddrsReply {
                req: RequestId(15),
                addrs: vec![(NodeId(1), "127.0.0.1:9001".into())],
            },
            Msg::JoinRequest {
                req: RequestId(7),
                addr: "127.0.0.1:9000".into(),
                total_space: 1 << 40,
            },
            Msg::Heartbeat {
                node: NodeId(3),
                free_space: 123,
                total_space: 456,
                addr: "10.0.0.3:4402".into(),
            },
            Msg::GcReport {
                req: RequestId(8),
                node: NodeId(3),
                chunks: vec![ChunkId::test_id(1), ChunkId::test_id(2)],
            },
            Msg::ReplicateCmd {
                job: 77,
                copies: vec![ReplicaCopy {
                    chunk: ChunkId::test_id(9),
                    target: NodeId(6),
                }],
            },
            Msg::ReplicateReport {
                job: 77,
                node: NodeId(1),
                done: vec![ReplicaCopy {
                    chunk: ChunkId::test_id(9),
                    target: NodeId(6),
                }],
                failed: vec![],
            },
            Msg::StashCommit {
                req: RequestId(10),
                path: "/a".into(),
                entries: vec![e(4, 44)],
                placements: vec![(ChunkId::test_id(4), vec![NodeId(2)])],
            },
            Msg::ReofferCommit {
                req: RequestId(11),
                node: NodeId(2),
                path: "/a".into(),
                entries: vec![e(4, 44)],
                placements: vec![(ChunkId::test_id(4), vec![NodeId(2)])],
            },
            Msg::PutChunk {
                req: RequestId(12),
                chunk: ChunkId::for_content(b"data!"),
                size: 5,
                data: Bytes::from_static(b"data!"),
                background: false,
            },
            Msg::GetChunkOk {
                req: RequestId(13),
                chunk: ChunkId::for_content(b"zz"),
                size: 2,
                data: Bytes::from_static(b"zz"),
            },
            Msg::DeleteChunks {
                chunks: vec![ChunkId::test_id(5)],
            },
            Msg::VersionListReply {
                req: RequestId(14),
                versions: vec![VersionInfo {
                    version: VersionId(1),
                    size: 42,
                    mtime: Time::from_secs(2),
                }],
            },
        ]
    }

    #[test]
    fn every_sample_roundtrips() {
        for m in sample_msgs() {
            let bytes = m.to_wire_bytes();
            let back =
                Msg::from_wire_bytes(&bytes).unwrap_or_else(|e| panic!("decode {m:?} failed: {e}"));
            assert_eq!(m, back);
        }
    }

    #[test]
    fn tags_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in sample_msgs() {
            seen.insert(m.wire_tag());
        }
        assert_eq!(seen.len(), sample_msgs().len());
    }

    #[test]
    fn truncation_always_errors_never_panics() {
        for m in sample_msgs() {
            let bytes = m.to_wire_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    Msg::from_wire_bytes(&bytes[..cut]).is_err(),
                    "cut={cut} of {m:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(Msg::from_wire_bytes(&[250]).is_err());
    }

    #[test]
    fn request_id_extraction() {
        assert_eq!(
            Msg::Ack { req: RequestId(5) }.request_id(),
            Some(RequestId(5))
        );
        assert_eq!(
            Msg::Heartbeat {
                node: NodeId(1),
                free_space: 0,
                total_space: 0,
                addr: String::new()
            }
            .request_id(),
            None
        );
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = Msg::GetChunk {
            req: RequestId(1),
            chunk: ChunkId::test_id(1),
        };
        let big = Msg::PutChunk {
            req: RequestId(1),
            chunk: ChunkId::test_id(1),
            size: 1 << 20,
            data: Bytes::from(vec![0u8; 1 << 20]),
            background: false,
        };
        assert!(big.wire_size() > small.wire_size());
        assert!(big.wire_size() >= 1 << 20);
    }
}
