//! Chunk-maps: the metadata that constitutes a file version.
//!
//! A committed file version is an ordered list of content-addressed chunks.
//! Offsets are implicit (cumulative sums of chunk sizes), so a chunk-map is
//! compact and the "offsets are contiguous" invariant holds by construction.
//! Because chunks are content-addressed, the *same* [`ChunkId`] may appear at
//! several positions (self-similar data) and in several versions
//! (incremental checkpointing) — that sharing is exactly the paper's
//! copy-on-write versioning support.

use crate::ids::{ChunkId, NodeId, VersionId};

/// One logical chunk slot in a file version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChunkEntry {
    /// Content hash of the chunk.
    pub id: ChunkId,
    /// Chunk length in bytes (the last chunk of a file may be short).
    pub size: u32,
}

/// The ordered chunk list making up one file version.
///
/// # Examples
///
/// ```
/// use stdchk_proto::chunkmap::{ChunkEntry, ChunkMap};
/// use stdchk_proto::ids::ChunkId;
///
/// let map = ChunkMap::from_entries(vec![
///     ChunkEntry { id: ChunkId::for_content(b"aaaa"), size: 4 },
///     ChunkEntry { id: ChunkId::for_content(b"bb"), size: 2 },
/// ]);
/// assert_eq!(map.file_size(), 6);
/// assert_eq!(map.offset_of(1), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkMap {
    entries: Vec<ChunkEntry>,
}

impl ChunkMap {
    /// Creates an empty chunk-map (a zero-byte file).
    pub fn new() -> ChunkMap {
        ChunkMap::default()
    }

    /// Builds a chunk-map from entries in file order.
    pub fn from_entries(entries: Vec<ChunkEntry>) -> ChunkMap {
        ChunkMap { entries }
    }

    /// Appends a chunk at the end of the file.
    pub fn push(&mut self, entry: ChunkEntry) {
        self.entries.push(entry);
    }

    /// The entries in file order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Number of chunk slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a zero-byte file.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total file size in bytes.
    pub fn file_size(&self) -> u64 {
        self.entries.iter().map(|e| e.size as u64).sum()
    }

    /// Byte offset at which chunk slot `index` starts.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn offset_of(&self, index: usize) -> u64 {
        assert!(index <= self.entries.len(), "index out of bounds");
        self.entries[..index].iter().map(|e| e.size as u64).sum()
    }

    /// The set of distinct chunk ids referenced (dedup across slots).
    pub fn distinct_chunks(&self) -> Vec<ChunkId> {
        let mut v: Vec<ChunkId> = self.entries.iter().map(|e| e.id).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Bytes that would need to be stored if `previous` chunks already exist
    /// (the incremental-checkpointing savings accounting).
    pub fn new_bytes_vs(&self, previous: &std::collections::HashSet<ChunkId>) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for e in &self.entries {
            if !previous.contains(&e.id) && seen.insert(e.id) {
                total += e.size as u64;
            }
        }
        total
    }
}

impl FromIterator<ChunkEntry> for ChunkMap {
    fn from_iter<I: IntoIterator<Item = ChunkEntry>>(iter: I) -> Self {
        ChunkMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<ChunkEntry> for ChunkMap {
    fn extend<I: IntoIterator<Item = ChunkEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// A read view of one committed version: the chunk-map plus, for every
/// distinct chunk, the benefactors currently holding a replica.
///
/// This is what the manager returns for a retrieval: "first contact the
/// metadata manager to obtain the chunk-map, then transfer data chunks
/// directly between the storage nodes and the client" (paper §IV.A).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileVersionView {
    /// Which version this is.
    pub version: VersionId,
    /// The chunk-map in file order.
    pub map: ChunkMap,
    /// Replica locations, parallel to `map.distinct_chunks()` semantics:
    /// one entry per *distinct* chunk id, sorted by chunk id.
    pub locations: Vec<(ChunkId, Vec<NodeId>)>,
}

impl FileVersionView {
    /// Locations of a chunk, if known.
    pub fn locations_of(&self, id: ChunkId) -> Option<&[NodeId]> {
        self.locations
            .binary_search_by(|(c, _)| c.cmp(&id))
            .ok()
            .map(|i| self.locations[i].1.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64, size: u32) -> ChunkEntry {
        ChunkEntry {
            id: ChunkId::test_id(n),
            size,
        }
    }

    #[test]
    fn offsets_are_cumulative() {
        let m = ChunkMap::from_entries(vec![entry(1, 10), entry(2, 20), entry(3, 5)]);
        assert_eq!(m.offset_of(0), 0);
        assert_eq!(m.offset_of(1), 10);
        assert_eq!(m.offset_of(2), 30);
        assert_eq!(m.file_size(), 35);
    }

    #[test]
    fn distinct_chunks_dedups_repeats() {
        let m = ChunkMap::from_entries(vec![entry(1, 4), entry(2, 4), entry(1, 4)]);
        assert_eq!(m.distinct_chunks().len(), 2);
        assert_eq!(m.file_size(), 12);
    }

    #[test]
    fn new_bytes_vs_counts_only_fresh_distinct_chunks() {
        let m = ChunkMap::from_entries(vec![entry(1, 4), entry(2, 8), entry(2, 8), entry(3, 2)]);
        let prev: std::collections::HashSet<_> = [ChunkId::test_id(2)].into_iter().collect();
        // chunk 2 already stored; chunk 1 (4) + chunk 3 (2) are new; the
        // repeated slot of chunk 2 costs nothing.
        assert_eq!(m.new_bytes_vs(&prev), 6);
    }

    #[test]
    fn version_view_lookup() {
        let mut locs = vec![
            (ChunkId::test_id(5), vec![NodeId(1), NodeId(2)]),
            (ChunkId::test_id(9), vec![NodeId(3)]),
        ];
        locs.sort_by_key(|a| a.0);
        let view = FileVersionView {
            version: VersionId(1),
            map: ChunkMap::from_entries(vec![entry(5, 1), entry(9, 1)]),
            locations: locs,
        };
        assert_eq!(
            view.locations_of(ChunkId::test_id(9)),
            Some(&[NodeId(3)][..])
        );
        assert_eq!(view.locations_of(ChunkId::test_id(42)), None);
    }

    #[test]
    fn collect_and_extend() {
        let m: ChunkMap = (0..3).map(|i| entry(i, 1)).collect();
        assert_eq!(m.len(), 3);
        let mut m2 = m.clone();
        m2.extend([entry(9, 2)]);
        assert_eq!(m2.len(), 4);
        assert_eq!(m2.file_size(), 5);
    }
}
