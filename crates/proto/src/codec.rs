//! Hand-written binary encoding.
//!
//! Layout conventions (documented once here, used by every message):
//!
//! - integers: little-endian, fixed width;
//! - `String` / byte payloads: `u32` length prefix + raw bytes;
//! - `Vec<T>`: `u32` count prefix + elements;
//! - `Option<T>`: `u8` presence flag (0/1) + value;
//! - [`ChunkId`]: raw 32 bytes;
//! - enums: `u8` tag, then variant fields.
//!
//! Everything implementing [`Wire`] round-trips; this is property-tested in
//! the crate tests with randomized values.

use bytes::Bytes;

use crate::error::ProtoError;
use crate::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_util::{Dur, Time};

/// Encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_raw(v);
    }
}

/// Decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding out of a shared buffer, the owning [`Bytes`] (same
    /// allocation as `buf`): byte-payload fields are sliced out of it
    /// without copying.
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            backing: None,
        }
    }

    /// Creates a reader over a shared buffer: [`Bytes`] fields decode as
    /// zero-copy slices of `bytes` instead of fresh allocations. This is
    /// how the incremental frame decoder hands a chunk payload to the
    /// store without copying it out of the receive buffer.
    pub fn shared(bytes: &'a Bytes) -> Reader<'a> {
        Reader {
            buf: bytes,
            pos: 0,
            backing: Some(bytes),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::bad(format!(
                "{} trailing bytes after message",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, ProtoError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, ProtoError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(ProtoError::Truncated { what: "bytes body" });
        }
        Ok(self.take(len, "bytes body")?.to_vec())
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        self.take(n, "raw bytes")
    }

    /// Reads a length-prefixed byte string as [`Bytes`]. When the reader
    /// was built with [`Reader::shared`], the result is a zero-copy slice
    /// of the backing buffer; otherwise the bytes are copied.
    pub fn get_shared(&mut self) -> Result<Bytes, ProtoError> {
        let len = self.get_u32()? as usize;
        match self.backing {
            Some(b) => {
                if len > self.remaining() {
                    return Err(ProtoError::Truncated { what: "bytes body" });
                }
                let s = b.slice(self.pos..self.pos + len);
                self.pos += len;
                Ok(s)
            }
            None => Ok(Bytes::from(self.take(len, "bytes body")?.to_vec())),
        }
    }
}

/// A value with a stable binary encoding.
pub trait Wire: Sized {
    /// Appends this value to `w`.
    fn encode(&self, w: &mut Writer);
    /// Parses a value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError>;

    /// Convenience: encode to a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decode from a complete buffer, requiring full
    /// consumption.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on truncated or trailing bytes.
    fn from_wire_bytes(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        r.get_u8()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        r.get_u64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtoError::bad(format!("invalid bool {v}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let b = r.get_bytes()?;
        String::from_utf8(b).map_err(|_| ProtoError::bad("invalid utf-8 in string"))
    }
}

impl Wire for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        r.get_shared()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let n = r.get_u32()? as usize;
        // Sanity: each element needs at least one byte.
        if n > r.remaining() {
            return Err(ProtoError::bad(format!("vec length {n} exceeds input")));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            v => Err(ProtoError::bad(format!("invalid option flag {v}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

macro_rules! wire_u64_id {
    ($t:ty) => {
        impl Wire for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_u64(self.0);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
                Ok(Self(r.get_u64()?))
            }
        }
    };
}

wire_u64_id!(NodeId);
wire_u64_id!(FileId);
wire_u64_id!(VersionId);
wire_u64_id!(ReservationId);
wire_u64_id!(RequestId);

impl Wire for ChunkId {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let raw = r.get_raw(32)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(raw);
        Ok(ChunkId(d))
    }
}

impl Wire for Time {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(Time(r.get_u64()?))
    }
}

impl Wire for Dur {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        Ok(Dur(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire_bytes();
        let back = T::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo/∂ir"));
        roundtrip(Bytes::from_static(b"payload"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip((NodeId(3), VersionId(9)));
        roundtrip(ChunkId::test_id(77));
        roundtrip(Time::from_secs(5));
        roundtrip(Dur::from_millis(12));
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let bytes = 0xdead_beefu32.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(u32::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_wire_bytes(&bytes),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Declares 2^31 elements with a 1-byte body: must error, not OOM.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u8(1);
        assert!(Vec::<u64>::from_wire_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn invalid_bool_and_option_flags() {
        assert!(bool::from_wire_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_wire_bytes(&[9, 1]).is_err());
    }
}
