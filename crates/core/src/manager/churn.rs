//! Churn observation: per-benefactor session accounting and fleet-wide
//! departure-rate estimation.
//!
//! The manager watches benefactor arrivals and heartbeat expiries and
//! distills them into two estimates the rest of the system consumes:
//!
//! * an **availability estimate** — the fraction of time a node of each
//!   class (stable vs. volatile, split by mean session length) is online —
//!   which drives the adaptive replication target (`1 - (1-a)^r ≥ goal`),
//! * a **departure rate** (failures/sec/node over a sliding window) which
//!   drives checkpoint-interval guidance via Young's approximation
//!   `t_opt = sqrt(2·δ/λ)`.
//!
//! Session *totals* are durable: every expiry logs a
//! [`MetaRecord::Churn`](stdchk_proto::meta::MetaRecord::Churn) record and
//! replay folds it back in (like the dedup ledger), so the failure-rate
//! picture survives manager restarts. The sliding departure window is
//! transient by design — stale departures should not throttle a freshly
//! restarted manager.

use std::collections::{BTreeMap, VecDeque};

use stdchk_proto::ids::NodeId;
use stdchk_util::{Dur, Time};

/// Durable churn totals (folded from `MetaRecord::Churn` on replay).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnTotals {
    /// Completed online sessions observed (heartbeat expiries).
    pub departures: u64,
    /// Summed length of those sessions.
    pub session_time: Dur,
}

/// Coarse node classification by observed session behaviour. Nodes whose
/// mean session is long (or that never departed) are `Stable`; the rest
/// are `Volatile`. Availability is estimated per class so a fleet of
/// reliable lab machines is not penalized for a handful of flappers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Long mean sessions; treated as highly available.
    Stable,
    /// Short mean sessions; replication targets inflate to compensate.
    Volatile,
}

/// Mean session length below which a node counts as [`NodeClass::Volatile`].
const VOLATILE_SESSION: Dur = Dur::from_secs(15 * 60);

/// Availability floor: even a permanently-flapping node is assumed online
/// a sliver of the time, keeping `1-(1-a)^r` solvable.
const MIN_AVAILABILITY_PPM: u64 = 50_000; // 5%

#[derive(Clone, Debug, Default)]
struct NodeChurn {
    /// Start of the current online session, if online.
    online_since: Option<Time>,
    /// Completed sessions and their summed length.
    sessions: u64,
    session_time: Dur,
    /// Observed offline time (gap between expiry and return).
    offline_since: Option<Time>,
    offline_time: Dur,
}

impl NodeChurn {
    fn class(&self) -> NodeClass {
        if self.sessions == 0 {
            return NodeClass::Stable;
        }
        let mean = self.session_time.as_nanos() / self.sessions.max(1);
        if mean < VOLATILE_SESSION.as_nanos() {
            NodeClass::Volatile
        } else {
            NodeClass::Stable
        }
    }

    /// Fraction of observed time this node was online, in ppm.
    fn availability_ppm(&self, now: Time) -> u64 {
        let mut online = self.session_time;
        if let Some(since) = self.online_since {
            online += now - since;
        }
        let mut offline = self.offline_time;
        if let Some(since) = self.offline_since {
            offline += now - since;
        }
        let total = online.as_nanos() + offline.as_nanos();
        if total == 0 {
            return 1_000_000;
        }
        ((online.as_nanos() as u128 * 1_000_000) / total as u128) as u64
    }
}

/// Observes joins/heartbeats/expiries and answers availability and
/// departure-rate queries.
#[derive(Clone, Debug, Default)]
pub(crate) struct ChurnTracker {
    nodes: BTreeMap<NodeId, NodeChurn>,
    /// Departure timestamps inside the sliding window, oldest first.
    window: VecDeque<Time>,
    totals: ChurnTotals,
}

impl ChurnTracker {
    /// Marks `node` online at `now` (join, adoption, or first/returning
    /// heartbeat). Idempotent while the node stays online.
    pub fn note_online(&mut self, node: NodeId, now: Time) {
        let n = self.nodes.entry(node).or_default();
        if n.online_since.is_some() {
            return;
        }
        if let Some(since) = n.offline_since.take() {
            n.offline_time += now - since;
        }
        n.online_since = Some(now);
    }

    /// Marks `node` departed at `now`, returning the completed session
    /// length (what the durable `MetaRecord::Churn` record carries).
    pub fn note_departure(&mut self, node: NodeId, now: Time) -> Dur {
        let n = self.nodes.entry(node).or_default();
        let session = match n.online_since.take() {
            Some(since) => now - since,
            None => Dur::ZERO,
        };
        n.sessions += 1;
        n.session_time += session;
        n.offline_since = Some(now);
        self.window.push_back(now);
        self.totals.departures += 1;
        self.totals.session_time += session;
        session
    }

    /// Folds a replayed durable churn record into the totals (and the
    /// per-node ledger, so classification survives restarts). The sliding
    /// window is deliberately not reconstructed.
    pub fn fold(&mut self, node: NodeId, session: Dur) {
        let n = self.nodes.entry(node).or_default();
        n.sessions += 1;
        n.session_time += session;
        self.totals.departures += 1;
        self.totals.session_time += session;
    }

    /// Durable totals.
    pub fn totals(&self) -> ChurnTotals {
        self.totals
    }

    /// The class of `node` (unknown nodes default to stable).
    pub fn class_of(&self, node: NodeId) -> NodeClass {
        self.nodes
            .get(&node)
            .map(|n| n.class())
            .unwrap_or(NodeClass::Stable)
    }

    /// Mean availability (ppm) over nodes of `class`, or `None` when no
    /// node of that class has been observed.
    pub fn class_availability_ppm(&self, class: NodeClass, now: Time) -> Option<u64> {
        let mut sum = 0u64;
        let mut count = 0u64;
        for n in self.nodes.values() {
            if n.class() == class {
                sum += n.availability_ppm(now);
                count += 1;
            }
        }
        (count > 0).then(|| (sum / count).max(MIN_AVAILABILITY_PPM))
    }

    /// Fleet-wide availability estimate in ppm: the mean over all observed
    /// nodes, floored so the adaptive target stays solvable. An empty
    /// fleet reads as fully available.
    pub fn availability_ppm(&self, now: Time) -> u64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for n in self.nodes.values() {
            sum += n.availability_ppm(now);
            count += 1;
        }
        if count == 0 {
            return 1_000_000;
        }
        (sum / count).max(MIN_AVAILABILITY_PPM)
    }

    /// Departures per second per node over the trailing `window`, scaled
    /// by 1e9 (i.e. departures per second per node, ppb-style fixed
    /// point). `None` when nothing departed in the window.
    pub fn departure_rate_ppb(&mut self, now: Time, window: Dur, fleet: usize) -> Option<u64> {
        while let Some(&t) = self.window.front() {
            if now - t > window {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if self.window.is_empty() || fleet == 0 {
            return None;
        }
        let span = window.as_nanos().max(1);
        // departures / (window_secs * fleet) * 1e9
        let rate = (self.window.len() as u128 * 1_000_000_000u128 * 1_000_000_000u128)
            / (span as u128 * fleet as u128);
        Some(rate as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_accumulate_and_classify() {
        let mut c = ChurnTracker::default();
        let n = NodeId(1);
        c.note_online(n, Time::from_secs(0));
        assert_eq!(c.class_of(n), NodeClass::Stable);
        let s = c.note_departure(n, Time::from_secs(60));
        assert_eq!(s, Dur::from_secs(60));
        // One 60s session → mean well under the volatile threshold.
        assert_eq!(c.class_of(n), NodeClass::Volatile);
        assert_eq!(c.totals().departures, 1);
        assert_eq!(c.totals().session_time, Dur::from_secs(60));
    }

    #[test]
    fn availability_tracks_online_fraction() {
        let mut c = ChurnTracker::default();
        let n = NodeId(1);
        c.note_online(n, Time::from_secs(0));
        c.note_departure(n, Time::from_secs(75));
        c.note_online(n, Time::from_secs(100));
        // 75s online out of 100s observed.
        let a = c.availability_ppm(Time::from_secs(100));
        assert_eq!(a, 750_000);
    }

    #[test]
    fn empty_fleet_is_fully_available() {
        let c = ChurnTracker::default();
        assert_eq!(c.availability_ppm(Time::from_secs(5)), 1_000_000);
    }

    #[test]
    fn departure_rate_windows_out_old_events() {
        let mut c = ChurnTracker::default();
        for i in 0..4 {
            let n = NodeId(i);
            c.note_online(n, Time::ZERO);
            c.note_departure(n, Time::from_secs(10));
        }
        let w = Dur::from_secs(100);
        let r = c
            .departure_rate_ppb(Time::from_secs(20), w, 8)
            .expect("recent departures");
        // 4 departures / (100s * 8 nodes) = 0.005/s/node = 5_000_000 ppb.
        assert_eq!(r, 5_000_000);
        assert!(c.departure_rate_ppb(Time::from_secs(500), w, 8).is_none());
    }

    #[test]
    fn fold_restores_totals_without_window() {
        let mut c = ChurnTracker::default();
        c.fold(NodeId(3), Dur::from_secs(30));
        assert_eq!(c.totals().departures, 1);
        assert_eq!(c.class_of(NodeId(3)), NodeClass::Volatile);
        assert!(c
            .departure_rate_ppb(Time::from_secs(1), Dur::from_secs(60), 4)
            .is_none());
    }
}
