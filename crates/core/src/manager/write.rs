//! Write-path message handlers: session open (with eager reservation),
//! reservation extension, atomic chunk-map commit, abort, deletion,
//! policies, and manager-failure recovery via benefactor re-offers.

use std::collections::{HashMap, HashSet};

use stdchk_proto::chunkmap::{ChunkEntry, ChunkMap};
use stdchk_proto::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::meta::MetaRecord;
use stdchk_proto::msg::{DedupSummary, Msg};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::ErrorCode;
use stdchk_util::Time;

use super::{
    normalize, parent, ChunkMeta, FileState, Manager, PendingCommit, Reoffer, Reservation, Send,
    VersionRecord,
};
use crate::node::ActionQueue;

impl Manager {
    /// Installs one sealed version: upserts chunk metadata (sizes,
    /// refcounts, replication targets, placement locations) and appends
    /// the version to the file entry, creating it if needed. Shared by
    /// the client commit path, re-offer recovery, and WAL replay —
    /// `file_hint` forces the file id when replaying a logged commit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_version(
        &mut self,
        path: &str,
        file_hint: Option<FileId>,
        version: VersionId,
        map: ChunkMap,
        placements: &[(ChunkId, Vec<NodeId>)],
        replication: u32,
        mtime: Time,
    ) -> FileId {
        let placement_map: HashMap<ChunkId, &Vec<NodeId>> =
            placements.iter().map(|(c, l)| (*c, l)).collect();
        let sizes: HashMap<ChunkId, u32> = map.entries().iter().map(|e| (e.id, e.size)).collect();
        for id in map.distinct_chunks() {
            let meta = self.chunks.entry(id).or_insert_with(|| ChunkMeta {
                size: *sizes.get(&id).expect("entry size"),
                locations: Vec::new(),
                refcount: 0,
                target: 1,
                last_version: 0,
                pins: 0,
            });
            meta.refcount += 1;
            meta.target = meta.target.max(replication);
            meta.last_version = meta.last_version.max(version.as_u64());
            if let Some(locs) = placement_map.get(&id) {
                for n in locs.iter() {
                    if !meta.locations.contains(n) {
                        meta.locations.push(*n);
                    }
                }
            }
        }
        let file = self
            .files
            .entry(path.to_string())
            .or_insert_with(|| FileState {
                id: file_hint.unwrap_or(FileId(self.next_file)),
                versions: Vec::new(),
                replication: 1,
            });
        if let Some(hint) = file_hint {
            // Replay: the logged id is authoritative. A lingering entry
            // could carry a different id only through transient state the
            // log deliberately omits (e.g. an entry kept empty by an open
            // reservation at crash time); the record reflects what the
            // emitting manager actually granted.
            file.id = hint;
        }
        file.replication = file.replication.max(replication);
        let file_id = file.id;
        file.versions.push(VersionRecord {
            version,
            map,
            mtime,
        });
        self.next_file = self.next_file.max(file_id.as_u64() + 1);
        self.next_version = self.next_version.max(version.as_u64() + 1);
        file_id
    }
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_create_file(
        &mut self,
        client: NodeId,
        req: RequestId,
        path: String,
        stripe_width: u32,
        replication: u32,
        expected_chunks: u32,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let path = normalize(&path);
        let width = if stripe_width == 0 {
            self.cfg.default_stripe_width
        } else {
            stripe_width
        } as usize;
        let replication = if replication == 0 {
            self.cfg.default_replication
        } else {
            replication
        };
        let stripe = self.select_stripe(width, &HashSet::new());
        if stripe.is_empty() {
            out.push(Send {
                to: client,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::NoSpace,
                    detail: "no online benefactor has spare capacity".to_string(),
                },
            });
            return;
        }
        // File entry exists from the first open; it stays invisible until a
        // version commits.
        let file = self.files.entry(path.clone()).or_insert_with(|| {
            let id = FileId(self.next_file);
            self.next_file += 1;
            FileState {
                id,
                versions: Vec::new(),
                replication: 1,
            }
        });
        file.replication = file.replication.max(replication);
        let file_id = file.id;
        let prev_chunks: Vec<ChunkEntry> = file
            .versions
            .last()
            .map(|v| v.map.entries().to_vec())
            .unwrap_or_default();

        let version = VersionId(self.next_version);
        self.next_version += 1;
        let reservation_id = ReservationId(self.next_reservation);
        self.next_reservation += 1;
        let mut reservation = Reservation {
            client,
            path,
            version,
            stripe: stripe.clone(),
            replication,
            reserved_on: HashMap::new(),
            expires: now + self.cfg.reservation_ttl,
            opened: now,
            pinned: Vec::new(),
        };
        Manager::reserve_on(
            &mut reservation,
            &mut self.benefactors,
            self.cfg.chunk_size,
            expected_chunks.max(1) as u64,
        );
        self.reservations.insert(reservation_id, reservation);
        out.push(Send {
            to: client,
            msg: Msg::CreateFileOk {
                req,
                file: file_id,
                version,
                reservation: reservation_id,
                stripe,
                prev_chunks,
                chunk_size: self.cfg.chunk_size,
            },
        });
    }

    pub(super) fn on_extend(
        &mut self,
        from: NodeId,
        req: RequestId,
        id: ReservationId,
        additional_chunks: u32,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let Some(mut res) = self.reservations.remove(&id) else {
            out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::Conflict,
                    detail: format!("unknown or expired reservation {id}"),
                },
            });
            return;
        };
        // Refresh the stripe: drop members that went offline, backfill.
        let exclude: HashSet<NodeId> = res.stripe.iter().copied().collect();
        res.stripe
            .retain(|n| self.benefactors.get(n).map(|b| b.online).unwrap_or(false));
        let missing = exclude.len() - res.stripe.len();
        if missing > 0 {
            let fresh = self.select_stripe(missing, &exclude);
            res.stripe.extend(fresh);
        }
        if res.stripe.is_empty() {
            self.release_reservation(&res);
            out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::NoSpace,
                    detail: "no online benefactors left for this stripe".to_string(),
                },
            });
            return;
        }
        Manager::reserve_on(
            &mut res,
            &mut self.benefactors,
            self.cfg.chunk_size,
            additional_chunks.max(1) as u64,
        );
        res.expires = now + self.cfg.reservation_ttl;
        let stripe = res.stripe.clone();
        self.reservations.insert(id, res);
        out.push(Send {
            to: from,
            msg: Msg::ExtendOk { req, stripe },
        });
    }

    /// Answers a have/want negotiation round (paper §IV.C moved onto the
    /// wire): the client offers the chunk ids of an in-flight version and
    /// the manager replies with the indices it wants shipped. Every chunk
    /// it already holds is *pinned* against the reservation so retention
    /// pruning cannot reclaim it before the commit-by-reference lands.
    pub(super) fn on_offer(
        &mut self,
        from: NodeId,
        req: RequestId,
        reservation: ReservationId,
        entries: Vec<ChunkEntry>,
        out: &mut ActionQueue,
    ) {
        if !self.reservations.contains_key(&reservation) {
            out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::Conflict,
                    detail: format!("unknown or expired reservation {reservation}"),
                },
            });
            return;
        }
        let mut wanted = Vec::new();
        let mut pinned = Vec::new();
        for (idx, e) in entries.iter().enumerate() {
            // "Have" means the bytes provably exist on some benefactor: a
            // live reference from a committed version, or an existing pin
            // from a concurrent negotiation. Chunks merely placed by an
            // uncommitted session don't count — the manager has no record
            // of them yet.
            let have = self
                .chunks
                .get(&e.id)
                .map(|m| m.refcount > 0 || m.pins > 0)
                .unwrap_or(false);
            if have {
                pinned.push(e.id);
            } else {
                wanted.push(idx as u32);
            }
        }
        for id in &pinned {
            if let Some(m) = self.chunks.get_mut(id) {
                m.pins += 1;
            }
        }
        self.reservations
            .get_mut(&reservation)
            .expect("checked above")
            .pinned
            .extend(pinned);
        out.push(Send {
            to: from,
            msg: Msg::WantChunks { req, wanted },
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_commit(
        &mut self,
        from: NodeId,
        req: RequestId,
        reservation: ReservationId,
        entries: Vec<ChunkEntry>,
        placements: Vec<(ChunkId, Vec<NodeId>)>,
        pessimistic: bool,
        dedup: DedupSummary,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let Some(res) = self.reservations.remove(&reservation) else {
            out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::Conflict,
                    detail: format!("unknown or expired reservation {reservation}"),
                },
            });
            return;
        };
        self.release_reservation(&res);
        let placement_map: HashMap<ChunkId, &Vec<NodeId>> =
            placements.iter().map(|(c, l)| (*c, l)).collect();
        let map = ChunkMap::from_entries(entries);
        // Validate: every distinct chunk is either already stored (dedup
        // against an existing version, or held alive by a negotiation
        // pin) or has at least one placement.
        for id in map.distinct_chunks() {
            let known = self
                .chunks
                .get(&id)
                .map(|m| m.refcount > 0 || m.pins > 0)
                .unwrap_or(false);
            let placed = placement_map
                .get(&id)
                .map(|l| !l.is_empty())
                .unwrap_or(false);
            if !known && !placed {
                // The reservation is spent either way: release its pins
                // before bouncing the commit.
                self.unpin_reservation(&res, out);
                out.push(Send {
                    to: from,
                    msg: Msg::ErrorReply {
                        req,
                        code: ErrorCode::BadRequest,
                        detail: format!("chunk {id} committed without any placement"),
                    },
                });
                return;
            }
        }
        // Apply chunk metadata and record the version, then write-ahead-log
        // the commit *before* any reply that acknowledges it.
        let version = res.version;
        let file_id = self.apply_version(
            &res.path,
            None,
            version,
            map.clone(),
            &placements,
            res.replication,
            now,
        );
        self.stats.commits += 1;
        // Commit increfs landed above, so unpinning now can only reclaim
        // chunks the client offered but ultimately left out of the map.
        self.unpin_reservation(&res, out);
        // A reused chunk ships no placement, but the Commit record must
        // stay self-contained for replay: replica locations learned since
        // the chunk's original commit are soft state the log omits, so a
        // fully-deduped version would otherwise replay with only the
        // basis version's (possibly dead) stripe. Fold the index's known
        // locations at commit time into the logged record.
        let logged_placements: Vec<(ChunkId, Vec<NodeId>)> = {
            let mut v = placements.clone();
            let placed: HashSet<ChunkId> = v.iter().map(|(c, _)| *c).collect();
            for id in map.distinct_chunks() {
                if !placed.contains(&id) {
                    if let Some(m) = self.chunks.get(&id) {
                        if !m.locations.is_empty() {
                            v.push((id, m.locations.clone()));
                        }
                    }
                }
            }
            v
        };
        self.log_meta(out, || MetaRecord::Commit {
            path: res.path.clone(),
            file: file_id,
            version,
            mtime: now,
            entries: map.entries().to_vec(),
            placements: logged_placements,
            replication: res.replication,
        });
        if dedup != DedupSummary::default() {
            // Fold the client's per-commit wire accounting into the
            // durable savings ledger, logged right after the commit it
            // annotates so replay rebuilds the same totals.
            self.dedup.fold(&dedup);
            self.log_meta(out, || MetaRecord::Dedup {
                file: file_id,
                version,
                summary: dedup,
            });
        }

        // Plan replication for under-replicated chunks of this version.
        let mut waiting: HashSet<ChunkId> = HashSet::new();
        if res.replication > 1 {
            let online = self.online_benefactors() as u32;
            let effective = res.replication.min(online.max(1));
            for id in map.distinct_chunks() {
                let meta = &self.chunks[&id];
                if (self.online_locations(&meta.locations) as u32) < effective {
                    self.enqueue_replication(id);
                    waiting.insert(id);
                }
            }
        }

        // Retention: a newly committed image may obsolete older ones.
        let dir_policy = self.policy_for(&res.path);
        if let RetentionPolicy::AutomatedReplace { keep_last } = dir_policy {
            self.prune_versions(&res.path, keep_last as usize, out);
        }

        // Checkpoint-interval guidance: the observed write duration is the
        // checkpoint cost δ, churn supplies the failure rate λ.
        let suggested_interval = self.checkpoint_guidance(now.since(res.opened), now);
        if pessimistic && !waiting.is_empty() {
            self.pending_commits.push(PendingCommit {
                client: from,
                req,
                file: file_id,
                version,
                waiting,
                suggested_interval,
            });
        } else {
            out.push(Send {
                to: from,
                msg: Msg::CommitOk {
                    req,
                    file: file_id,
                    version,
                    suggested_interval,
                },
            });
        }
        self.pump_replication(now, out);
    }

    pub(super) fn on_abort(
        &mut self,
        from: NodeId,
        req: RequestId,
        reservation: ReservationId,
        out: &mut ActionQueue,
    ) {
        if let Some(res) = self.reservations.remove(&reservation) {
            self.release_reservation(&res);
            self.unpin_reservation(&res, out);
            self.drop_file_if_empty(&res.path);
        }
        // Abort is idempotent: an expired reservation still acks.
        out.push(Send {
            to: from,
            msg: Msg::Ack { req },
        });
    }

    pub(super) fn on_delete_file(
        &mut self,
        from: NodeId,
        req: RequestId,
        path: &str,
        out: &mut ActionQueue,
    ) {
        let path = normalize(path);
        match self.files.get(&path) {
            Some(f) if !f.versions.is_empty() => {
                self.prune_versions(&path, 0, out);
                self.files.remove(&path);
                self.log_meta(out, || MetaRecord::Delete { path: path.clone() });
                out.push(Send {
                    to: from,
                    msg: Msg::Ack { req },
                });
            }
            _ => out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("{path}: no such file"),
                },
            }),
        }
    }

    pub(super) fn on_set_policy(
        &mut self,
        from: NodeId,
        req: RequestId,
        dir: String,
        policy: RetentionPolicy,
        repl_bounds: Option<(u32, u32)>,
        out: &mut ActionQueue,
    ) {
        let dir = normalize(&dir);
        self.dirs.insert(dir.clone(), policy);
        // Sanitize: a zero floor or inverted pair can't express a valid
        // clamp; coerce instead of bouncing the whole policy update.
        let repl_bounds = repl_bounds.map(|(lo, hi)| {
            let lo = lo.max(1);
            (lo, hi.max(lo))
        });
        if let Some(bounds) = repl_bounds {
            self.repl_bounds.insert(dir.clone(), bounds);
        }
        self.log_meta(out, || MetaRecord::SetPolicy {
            dir,
            policy,
            repl_bounds,
        });
        out.push(Send {
            to: from,
            msg: Msg::Ack { req },
        });
    }

    /// The retention policy applying to `path`: the policy of its nearest
    /// ancestor directory, defaulting to no intervention.
    pub(crate) fn policy_for(&self, path: &str) -> RetentionPolicy {
        let mut dir = parent(path);
        loop {
            if let Some(p) = self.dirs.get(&dir) {
                return *p;
            }
            if dir == "/" {
                return RetentionPolicy::NoIntervention;
            }
            dir = parent(&dir);
        }
    }

    /// The adaptive-replication clamp applying to `path`: the bounds of
    /// its nearest ancestor directory with `SetPolicy` bounds, defaulting
    /// to the pool-wide `[repl_min, repl_max]`.
    pub(crate) fn repl_bounds_for(&self, path: &str) -> (u32, u32) {
        let mut dir = parent(path);
        loop {
            if let Some(b) = self.repl_bounds.get(&dir) {
                return *b;
            }
            if dir == "/" {
                let lo = self.cfg.repl_min.max(1);
                return (lo, self.cfg.repl_max.max(lo));
            }
            dir = parent(&dir);
        }
    }

    pub(crate) fn drop_file_if_empty(&mut self, path: &str) {
        let empty = self
            .files
            .get(path)
            .map(|f| f.versions.is_empty())
            .unwrap_or(false);
        let has_reservation = self.reservations.values().any(|r| r.path == path);
        if empty && !has_reservation {
            self.files.remove(path);
        }
    }

    // ------------------------------------------------------------ recovery

    /// Handles a benefactor re-offer of a stashed commit after a manager
    /// restart. The commit is accepted once re-offers from at least ⅔ of the
    /// write stripe's benefactors agree on the identical chunk-map
    /// (paper §IV.A, "dealing with failures").
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_reoffer(
        &mut self,
        req: RequestId,
        node: NodeId,
        path: String,
        entries: Vec<ChunkEntry>,
        placements: Vec<(ChunkId, Vec<NodeId>)>,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let path = normalize(&path);
        // Already committed with this exact map? Then the offer is stale:
        // ack so the benefactor drops its stash.
        if let Some(f) = self.files.get(&path) {
            if f.versions
                .iter()
                .any(|v| v.map.entries() == entries.as_slice())
            {
                out.push(Send {
                    to: node,
                    msg: Msg::Ack { req },
                });
                return;
            }
        }
        let offers = self.reoffers.entry(path.clone()).or_default();
        offers.retain(|o| o.node != node);
        offers.push(Reoffer {
            node,
            entries: entries.clone(),
            placements: placements.clone(),
        });
        // Count agreeing offers for this exact chunk-map.
        let agreeing: Vec<NodeId> = offers
            .iter()
            .filter(|o| o.entries == entries && o.placements == placements)
            .map(|o| o.node)
            .collect();
        let stripe_size = {
            let mut nodes: HashSet<NodeId> = HashSet::new();
            for (_, locs) in &placements {
                nodes.extend(locs.iter().copied());
            }
            nodes.len().max(1)
        };
        let needed = stripe_size.div_ceil(3) * 2; // ceil(2/3 · stripe) for stripe ≥ 1
        let threshold = needed.min(stripe_size).max(1);
        if agreeing.len() < threshold {
            // Not enough concurrence yet: no reply; the benefactor re-offers
            // on its next cycle.
            return;
        }
        // Accept: synthesize the commit (and, with a metadata log
        // attached, persist it like any other — recovered state must not
        // be lost to the *next* crash).
        self.reoffers.remove(&path);
        let map = ChunkMap::from_entries(entries);
        let version = VersionId(self.next_version);
        self.next_version += 1;
        let file_id = self.apply_version(&path, None, version, map.clone(), &placements, 1, now);
        self.stats.commits += 1;
        self.stats.recovered_commits += 1;
        self.log_meta(out, || MetaRecord::Commit {
            path,
            file: file_id,
            version,
            mtime: now,
            entries: map.entries().to_vec(),
            placements,
            replication: 1,
        });
        out.push(Send {
            to: node,
            msg: Msg::Ack { req },
        });
    }
}
