//! Time-based maintenance: heartbeat expiry and repair, reservation expiry,
//! retention-policy sweeps, GC marking and reports, version pruning.

use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::meta::MetaRecord;
use stdchk_proto::msg::Msg;
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::Time;

use super::{Manager, Send};
use crate::node::ActionQueue;

impl Manager {
    /// Runs all time-based maintenance: heartbeat expiry, reservation
    /// expiry, retention sweeps, GC marking, replication dispatch.
    pub(crate) fn process_timeout(&mut self, now: Time, out: &mut ActionQueue) {
        self.expire_benefactors(now, out);
        self.expire_reservations(now, out);
        if now.since(self.last_policy_sweep) >= self.cfg.policy_sweep_every {
            self.last_policy_sweep = now;
            self.policy_sweep(now, out);
            if self.cfg.adaptive_replication {
                self.adapt_replication_targets(now);
            }
        }
        if now.since(self.last_gc_mark) >= self.cfg.gc_every {
            self.last_gc_mark = now;
            for b in self.benefactors.values_mut().filter(|b| b.online) {
                b.gc_due = true;
            }
        }
        self.pump_replication(now, out);
    }

    fn expire_benefactors(&mut self, now: Time, out: &mut ActionQueue) {
        let timeout = self.cfg.benefactor_timeout;
        let dead: Vec<NodeId> = self
            .benefactors
            .iter()
            .filter(|(_, b)| b.online && now.since(b.last_seen) > timeout)
            .map(|(id, _)| *id)
            .collect();
        for node in dead {
            if let Some(b) = self.benefactors.get_mut(&node) {
                b.online = false;
                b.gc_due = false;
            }
            // One online session ended: feed the churn estimators and make
            // the session durable (replay folds it back into the totals).
            let session = self.churn.note_departure(node, now);
            self.log_meta(out, || MetaRecord::Churn { node, session });
            // In-flight repair jobs sourced from the dead node will never
            // report; requeue their copies so the work is re-planned from a
            // surviving holder instead of leaking the job slot forever.
            let orphaned: Vec<u64> = self
                .repl_jobs
                .iter()
                .filter(|(_, j)| j.source == node)
                .map(|(id, _)| *id)
                .collect();
            for job in orphaned {
                if let Some(j) = self.repl_jobs.remove(&job) {
                    for (chunk, _) in j.copies {
                        let attempts = j.attempts.get(&chunk).copied().unwrap_or(0);
                        self.requeue_replication(chunk, attempts + 1);
                    }
                }
            }
            // Remove the dead node from chunk locations; plan repair for
            // chunks that fell under their replication target. A returning
            // node re-advertises its inventory through GC reports.
            let mut to_repair = Vec::new();
            for (id, meta) in self.chunks.iter_mut() {
                if let Some(pos) = meta.locations.iter().position(|n| *n == node) {
                    meta.locations.swap_remove(pos);
                    if meta.refcount > 0 {
                        to_repair.push(*id);
                    }
                }
            }
            to_repair.sort_unstable();
            for id in to_repair {
                let meta = &self.chunks[&id];
                let effective = (meta.target as usize).min(self.online_benefactors().max(1));
                let online = self.online_locations(&meta.locations);
                if online > 0 && online < effective {
                    self.enqueue_replication(id);
                } else if online == 0 {
                    // Data loss for this chunk: unblock anything waiting.
                    self.resolve_waiting_chunk(id, out);
                }
            }
        }
    }

    fn expire_reservations(&mut self, now: Time, out: &mut ActionQueue) {
        let expired: Vec<_> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.expires < now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            if let Some(res) = self.reservations.remove(&id) {
                self.release_reservation(&res);
                self.unpin_reservation(&res, out);
                self.drop_file_if_empty(&res.path);
            }
        }
    }

    // ---------------------------------------------------- churn adaptation

    /// Recomputes every live chunk's replication target from observed
    /// fleet availability (Ni & Harwood-style adaptive replication): the
    /// per-file target is the smallest `r` within the file's bounds with
    /// `1 - (1-a)^r` at or above the configured durability goal, and a
    /// chunk's target is the max over the files referencing it. Targets
    /// move both ways — calm fleets shed replicas through GC, churny
    /// fleets grow them through the repair queue.
    pub(crate) fn adapt_replication_targets(&mut self, now: Time) {
        let avail = (self.churn.availability_ppm(now) as f64 / 1e6).clamp(0.0, 1.0);
        let goal = (self.cfg.target_durability_ppm as f64 / 1e6).clamp(0.0, 1.0);
        let mut desired: std::collections::HashMap<ChunkId, u32> = Default::default();
        for (path, file) in &self.files {
            let (lo, hi) = self.repl_bounds_for(path);
            let r = Manager::target_for(avail, goal, lo, hi);
            for v in &file.versions {
                for id in v.map.distinct_chunks() {
                    let e = desired.entry(id).or_insert(r);
                    *e = (*e).max(r);
                }
            }
        }
        let mut under = Vec::new();
        for (id, r) in desired {
            let Some(meta) = self.chunks.get_mut(&id) else {
                continue;
            };
            if meta.refcount == 0 {
                continue;
            }
            meta.target = r;
            under.push(id);
        }
        under.sort_unstable();
        for id in under {
            let meta = &self.chunks[&id];
            let effective = (meta.target as usize).min(self.online_benefactors().max(1));
            let online = self.online_locations(&meta.locations);
            if online > 0 && online < effective {
                self.enqueue_replication(id);
            }
        }
    }

    /// Smallest replica count in `[lo, hi]` meeting the durability goal
    /// under per-replica availability `avail` (falls back to `hi` when
    /// even the ceiling can't meet it).
    fn target_for(avail: f64, goal: f64, lo: u32, hi: u32) -> u32 {
        let u = (1.0 - avail).clamp(0.0, 1.0);
        for r in lo..=hi {
            if 1.0 - u.powi(r as i32) >= goal {
                return r;
            }
        }
        hi
    }

    /// Suggested checkpoint interval via Young's approximation
    /// `t = sqrt(2·δ/λ)`, where `δ` is the observed checkpoint write
    /// duration and `λ` the per-node departure rate over the churn
    /// window. [`Dur::ZERO`] when no departure was observed recently —
    /// a calm fleet warrants no guidance.
    pub(crate) fn checkpoint_guidance(
        &mut self,
        delta: stdchk_util::Dur,
        now: Time,
    ) -> stdchk_util::Dur {
        let fleet = self.benefactors.len();
        let Some(rate_ppb) = self
            .churn
            .departure_rate_ppb(now, self.cfg.churn_window, fleet)
        else {
            return stdchk_util::Dur::ZERO;
        };
        let lambda = rate_ppb as f64 / 1e9;
        if lambda <= 0.0 {
            return stdchk_util::Dur::ZERO;
        }
        let delta_s = delta.as_secs_f64().max(1e-3);
        let t = stdchk_util::Dur::from_secs_f64((2.0 * delta_s / lambda).sqrt());
        t.clamp(self.cfg.guidance_min, self.cfg.guidance_max)
    }

    // ------------------------------------------------------------ retention

    fn policy_sweep(&mut self, now: Time, out: &mut ActionQueue) {
        let policies: Vec<(String, RetentionPolicy)> =
            self.dirs.iter().map(|(d, p)| (d.clone(), *p)).collect();
        for (dir, policy) in policies {
            let prefix = if dir == "/" {
                "/".to_string()
            } else {
                format!("{dir}/")
            };
            let paths: Vec<String> = self
                .files
                .keys()
                .filter(|p| p.starts_with(&prefix))
                .cloned()
                .collect();
            for path in paths {
                match policy {
                    RetentionPolicy::NoIntervention => {}
                    RetentionPolicy::AutomatedReplace { keep_last } => {
                        self.prune_versions(&path, keep_last as usize, out);
                    }
                    RetentionPolicy::AutomatedPurge { after } => {
                        self.purge_older_than(&path, now, after, out);
                        self.drop_file_if_empty(&path);
                    }
                }
            }
        }
    }

    /// Keeps only the newest `keep` versions of `path`, returning
    /// `DeleteChunks` orders for benefactors holding newly orphaned chunks.
    pub(crate) fn prune_versions(&mut self, path: &str, keep: usize, out: &mut ActionQueue) {
        let Some(file) = self.files.get_mut(path) else {
            return;
        };
        if file.versions.len() <= keep {
            return;
        }
        let drop_count = file.versions.len() - keep;
        let dropped: Vec<_> = file.versions.drain(..drop_count).collect();
        self.log_meta(out, || MetaRecord::Prune {
            path: path.to_string(),
            versions: dropped.iter().map(|v| v.version).collect(),
        });
        for record in dropped {
            self.stats.policy_drops += 1;
            self.decref_map(&record.map, out);
        }
    }

    fn purge_older_than(
        &mut self,
        path: &str,
        now: Time,
        after: stdchk_util::Dur,
        out: &mut ActionQueue,
    ) {
        let Some(file) = self.files.get_mut(path) else {
            return;
        };
        let mut dropped = Vec::new();
        file.versions.retain(|v| {
            if now.since(v.mtime) > after {
                dropped.push(v.clone());
                false
            } else {
                true
            }
        });
        if dropped.is_empty() {
            return;
        }
        self.log_meta(out, || MetaRecord::Prune {
            path: path.to_string(),
            versions: dropped.iter().map(|v| v.version).collect(),
        });
        for record in dropped {
            self.stats.policy_drops += 1;
            self.decref_map(&record.map, out);
        }
    }

    /// Decrements refcounts for a dropped version; chunks reaching zero are
    /// deleted from their holders (fast path; pull-based GC is the backstop).
    pub(crate) fn decref_map(
        &mut self,
        map: &stdchk_proto::chunkmap::ChunkMap,
        out: &mut ActionQueue,
    ) {
        let mut per_node: std::collections::BTreeMap<NodeId, Vec<ChunkId>> = Default::default();
        for id in map.distinct_chunks() {
            let Some(meta) = self.chunks.get_mut(&id) else {
                continue;
            };
            meta.refcount = meta.refcount.saturating_sub(1);
            if meta.refcount == 0 {
                // Repairs of an unreferenced chunk are pointless either way.
                self.repl_queue.retain(|t| t.chunk != id);
                let meta = &self.chunks[&id];
                if meta.pins > 0 {
                    // A have/want negotiation promised this chunk to an
                    // in-flight commit: keep the bytes until it unpins.
                    continue;
                }
                for n in &meta.locations {
                    per_node.entry(*n).or_default().push(id);
                }
                self.chunks.remove(&id);
            }
        }
        for (to, chunks) in per_node {
            out.push(Send {
                to,
                msg: Msg::DeleteChunks { chunks },
            });
        }
    }

    /// Releases every negotiation pin held by `res` (commit, abort, or
    /// expiry). Dropping the last pin of an unreferenced chunk reclaims it
    /// exactly like [`Manager::decref_map`] reaching zero.
    pub(crate) fn unpin_reservation(&mut self, res: &super::Reservation, out: &mut ActionQueue) {
        let mut per_node: std::collections::BTreeMap<NodeId, Vec<ChunkId>> = Default::default();
        for id in &res.pinned {
            let Some(meta) = self.chunks.get_mut(id) else {
                continue;
            };
            meta.pins = meta.pins.saturating_sub(1);
            if meta.refcount == 0 && meta.pins == 0 {
                for n in &meta.locations {
                    per_node.entry(*n).or_default().push(*id);
                }
                self.chunks.remove(id);
                self.repl_queue.retain(|t| t.chunk != *id);
            }
        }
        for (to, chunks) in per_node {
            out.push(Send {
                to,
                msg: Msg::DeleteChunks { chunks },
            });
        }
    }

    // ------------------------------------------------------------ GC

    pub(super) fn on_gc_report(
        &mut self,
        req: RequestId,
        node: NodeId,
        chunks: Vec<ChunkId>,
        now: Time,
        out: &mut ActionQueue,
    ) {
        if let Some(b) = self.benefactors.get_mut(&node) {
            b.gc_due = false;
        }
        let mut deletable = Vec::new();
        let mut relearned = Vec::new();
        for id in chunks {
            match self.chunks.get_mut(&id) {
                Some(meta) if meta.refcount > 0 || meta.pins > 0 => {
                    // Live chunk: (re-)learn the location. This is how a
                    // returning benefactor's replicas rejoin the metadata.
                    if !meta.locations.contains(&node) {
                        meta.locations.push(node);
                        relearned.push(id);
                    }
                }
                _ => deletable.push(id),
            }
        }
        // A re-learned copy can revive a chunk whose repair was dropped as
        // unrecoverable (every source offline at the time): requeue it so
        // the planner re-evaluates with the new source. Satisfied chunks
        // fall out of the queue as `Plan::Drop` without charging budgets.
        for id in relearned {
            self.enqueue_replication(id);
        }
        self.stats.gc_deletable += deletable.len() as u64;
        out.push(Send {
            to: node,
            msg: Msg::GcReply { req, deletable },
        });
        // Re-learned locations may provide sources for queued repairs. The
        // report time must flow through: pumping at `Time::ZERO` would stop
        // the scheduler's token buckets from ever refilling on this path.
        self.pump_replication(now, out);
    }
}
