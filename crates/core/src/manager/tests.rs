//! Unit tests for the manager state machine.

use std::collections::HashSet;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::msg::Msg;
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::ErrorCode;
use stdchk_util::{Dur, Time};

use crate::config::PoolConfig;
use crate::manager::{Manager, Send};

const GIB: u64 = 1 << 30;

struct Harness {
    mgr: Manager,
    now: Time,
    next_req: u64,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            mgr: Manager::new(PoolConfig::fast_for_tests()),
            now: Time::ZERO,
            next_req: 1,
        }
    }

    fn req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    fn advance(&mut self, d: Dur) -> Vec<Send> {
        self.now += d;
        self.mgr.tick(self.now)
    }

    /// Joins `n` benefactors, returning their ids.
    fn join_benefactors(&mut self, n: usize) -> Vec<NodeId> {
        let mut ids = Vec::new();
        for i in 0..n {
            let req = self.req();
            let out = self.mgr.handle_msg(
                NodeId(1000 + i as u64),
                Msg::JoinRequest {
                    req,
                    addr: String::new(),
                    total_space: GIB,
                },
                self.now,
            );
            match &out[0].msg {
                Msg::JoinOk { node, .. } => ids.push(*node),
                other => panic!("expected JoinOk, got {other:?}"),
            }
        }
        ids
    }

    fn heartbeat_all(&mut self, nodes: &[NodeId]) {
        for n in nodes {
            self.mgr.handle_msg(
                *n,
                Msg::Heartbeat {
                    node: *n,
                    free_space: GIB,
                    total_space: GIB,
                    addr: String::new(),
                },
                self.now,
            );
        }
    }

    /// Opens a write session; returns (reservation, stripe, prev_chunks, version).
    fn open(
        &mut self,
        path: &str,
        replication: u32,
    ) -> (ReservationId, Vec<NodeId>, Vec<ChunkEntry>, VersionId) {
        let req = self.req();
        let out = self.mgr.handle_msg(
            NodeId(77),
            Msg::CreateFile {
                req,
                client: NodeId(77),
                path: path.to_string(),
                stripe_width: 4,
                replication,
                expected_chunks: 8,
            },
            self.now,
        );
        match &out[0].msg {
            Msg::CreateFileOk {
                reservation,
                stripe,
                prev_chunks,
                version,
                ..
            } => (*reservation, stripe.clone(), prev_chunks.clone(), *version),
            other => panic!("expected CreateFileOk, got {other:?}"),
        }
    }

    /// Commits entries placing each distinct chunk on the first stripe node.
    fn commit(
        &mut self,
        reservation: ReservationId,
        entries: Vec<ChunkEntry>,
        stripe: &[NodeId],
        pessimistic: bool,
    ) -> Vec<Send> {
        let req = self.req();
        let mut placements = Vec::new();
        let mut seen = HashSet::new();
        for (i, e) in entries.iter().enumerate() {
            if seen.insert(e.id) {
                placements.push((e.id, vec![stripe[i % stripe.len()]]));
            }
        }
        self.mgr.handle_msg(
            NodeId(77),
            Msg::CommitChunkMap {
                req,
                reservation,
                entries,
                placements,
                pessimistic,
                dedup: Default::default(),
            },
            self.now,
        )
    }
}

fn entries(ids: &[u64], size: u32) -> Vec<ChunkEntry> {
    ids.iter()
        .map(|n| ChunkEntry {
            id: ChunkId::test_id(*n),
            size,
        })
        .collect()
}

fn find_reply(out: &[Send], pred: impl Fn(&Msg) -> bool) -> &Msg {
    out.iter()
        .map(|s| &s.msg)
        .find(|m| pred(m))
        .unwrap_or_else(|| panic!("no matching message in {out:?}"))
}

#[test]
fn join_assigns_distinct_ids() {
    let mut h = Harness::new();
    let ids = h.join_benefactors(3);
    assert_eq!(ids.len(), 3);
    let set: HashSet<_> = ids.iter().collect();
    assert_eq!(set.len(), 3);
    assert_eq!(h.mgr.online_benefactors(), 3);
}

#[test]
fn create_without_benefactors_is_no_space() {
    let mut h = Harness::new();
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CreateFile {
            req,
            client: NodeId(77),
            path: "/a".into(),
            stripe_width: 2,
            replication: 1,
            expected_chunks: 1,
        },
        h.now,
    );
    assert!(matches!(
        out[0].msg,
        Msg::ErrorReply {
            code: ErrorCode::NoSpace,
            ..
        }
    ));
}

#[test]
fn commit_makes_file_visible_with_locations() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(4);
    let (res, stripe, prev, _v) = h.open("/app/ckpt.n1", 1);
    assert!(prev.is_empty());
    assert_eq!(stripe.len(), 4);
    let ents = entries(&[1, 2, 3], 1024);
    let out = h.commit(res, ents.clone(), &stripe, false);
    find_reply(&out, |m| matches!(m, Msg::CommitOk { .. }));

    // GetFile returns the map with online locations.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetFile {
            req,
            path: "/app/ckpt.n1".into(),
            version: None,
        },
        h.now,
    );
    match &out[0].msg {
        Msg::FileViewReply { view, .. } => {
            assert_eq!(view.map.entries(), ents.as_slice());
            for (_, locs) in &view.locations {
                assert_eq!(locs.len(), 1);
                assert!(nodes.contains(&locs[0]));
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    // Attr reflects the committed version.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetAttr {
            req,
            path: "/app/ckpt.n1".into(),
        },
        h.now,
    );
    match &out[0].msg {
        Msg::AttrReply { attr, .. } => {
            assert_eq!(attr.size, 3 * 1024);
            assert_eq!(attr.versions, 1);
            assert!(!attr.is_dir);
        }
        other => panic!("unexpected {other:?}"),
    }
    h.mgr.check_invariants();
}

#[test]
fn uncommitted_file_is_invisible() {
    let mut h = Harness::new();
    h.join_benefactors(2);
    let (_res, _stripe, _prev, _v) = h.open("/a/b", 1);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetAttr {
            req,
            path: "/a/b".into(),
        },
        h.now,
    );
    assert!(
        matches!(
            out[0].msg,
            Msg::ErrorReply {
                code: ErrorCode::NotFound,
                ..
            }
        ),
        "open-but-uncommitted file must not stat as a file: {out:?}"
    );
}

#[test]
fn second_version_shares_chunks_and_reports_prev() {
    let mut h = Harness::new();
    h.join_benefactors(3);
    let (res1, stripe, _, v1) = h.open("/f", 1);
    let e1 = entries(&[1, 2], 64);
    h.commit(res1, e1.clone(), &stripe, false);

    let (res2, stripe2, prev, v2) = h.open("/f", 1);
    assert_eq!(prev, e1, "previous version's entries offered for dedup");
    assert_ne!(v1, v2);
    // New version: chunk 2 reused, chunk 9 fresh.
    let e2 = entries(&[2, 9], 64);
    h.commit(res2, e2, &stripe2, false);
    h.mgr.check_invariants();

    // Both versions listed.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::ListVersions {
            req,
            path: "/f".into(),
        },
        h.now,
    );
    match &out[0].msg {
        Msg::VersionListReply { versions, .. } => assert_eq!(versions.len(), 2),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn commit_without_placement_is_rejected() {
    let mut h = Harness::new();
    h.join_benefactors(2);
    let (res, _stripe, _, _) = h.open("/g", 1);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[5], 10),
            placements: vec![],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    assert!(matches!(
        out[0].msg,
        Msg::ErrorReply {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    h.mgr.check_invariants();
}

#[test]
fn stale_reservation_conflicts() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(2);
    let (res, stripe, _, _) = h.open("/h", 1);
    h.commit(res, entries(&[1], 10), &stripe, false);
    // Second commit on the same reservation.
    let out = h.commit(res, entries(&[2], 10), &nodes, false);
    assert!(matches!(
        out[0].msg,
        Msg::ErrorReply {
            code: ErrorCode::Conflict,
            ..
        }
    ));
}

#[test]
fn abort_releases_and_hides_file() {
    let mut h = Harness::new();
    h.join_benefactors(2);
    let (res, _, _, _) = h.open("/i", 1);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::AbortWrite {
            req,
            reservation: res,
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::Ack { .. }));
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetAttr {
            req,
            path: "/i".into(),
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::ErrorReply { .. }));
    h.mgr.check_invariants();
}

#[test]
fn reservation_expires_via_tick() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(2);
    let (res, stripe, _, _) = h.open("/j", 1);
    let ttl = h.mgr.config().reservation_ttl;
    h.heartbeat_all(&nodes);
    h.advance(ttl + Dur::from_millis(50));
    // Commit against the expired reservation now conflicts.
    let out = h.commit(res, entries(&[1], 10), &stripe, false);
    assert!(matches!(
        out[0].msg,
        Msg::ErrorReply {
            code: ErrorCode::Conflict,
            ..
        }
    ));
}

#[test]
fn benefactor_timeout_marks_offline_and_excludes_from_reads() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let (res, stripe, _, _) = h.open("/k", 1);
    h.commit(res, entries(&[1, 2, 3], 100), &stripe, false);
    // Only two nodes keep heartbeating.
    let survivors = &nodes[..2];
    for _ in 0..6 {
        h.advance(Dur::from_millis(40));
        h.heartbeat_all(survivors);
    }
    assert_eq!(h.mgr.online_benefactors(), 2);
    // Locations in reads exclude the dead node.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetFile {
            req,
            path: "/k".into(),
            version: None,
        },
        h.now,
    );
    match &out[0].msg {
        Msg::FileViewReply { view, .. } => {
            for (_, locs) in &view.locations {
                assert!(!locs.contains(&nodes[2]), "dead node still listed");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn death_triggers_re_replication_of_survivor_copies() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let (res, _stripe, _, _) = h.open("/l", 2);
    // Place both chunks on node[0] only; target replication 2.
    let ents = entries(&[1, 2], 100);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: ents,
            placements: vec![
                (ChunkId::test_id(1), vec![nodes[0]]),
                (ChunkId::test_id(2), vec![nodes[0]]),
            ],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    // Optimistic commit: CommitOk plus replication command(s) to node[0].
    find_reply(&out, |m| matches!(m, Msg::CommitOk { .. }));
    let cmd = find_reply(&out, |m| matches!(m, Msg::ReplicateCmd { .. }));
    match cmd {
        Msg::ReplicateCmd { copies, .. } => {
            assert_eq!(copies.len(), 2);
            for c in copies {
                assert_ne!(c.target, nodes[0], "replica must land elsewhere");
            }
        }
        _ => unreachable!(),
    }
}

#[test]
fn pessimistic_commit_waits_for_replication() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let (res, _stripe, _, _) = h.open("/m", 2);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[4], 100),
            placements: vec![(ChunkId::test_id(4), vec![nodes[0]])],
            pessimistic: true,
            dedup: Default::default(),
        },
        h.now,
    );
    assert!(
        !out.iter().any(|s| matches!(s.msg, Msg::CommitOk { .. })),
        "pessimistic commit must defer CommitOk: {out:?}"
    );
    let (job, target) = out
        .iter()
        .find_map(|s| match &s.msg {
            Msg::ReplicateCmd { job, copies } => Some((*job, copies[0].target)),
            _ => None,
        })
        .expect("replication command");
    // Source benefactor reports the copy done.
    let out = h.mgr.handle_msg(
        nodes[0],
        Msg::ReplicateReport {
            job,
            node: nodes[0],
            done: vec![stdchk_proto::msg::ReplicaCopy {
                chunk: ChunkId::test_id(4),
                target,
            }],
            failed: vec![],
        },
        h.now,
    );
    find_reply(&out, |m| matches!(m, Msg::CommitOk { .. }));
    h.mgr.check_invariants();
}

#[test]
fn failed_replication_retries_with_budget() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let (res, _stripe, _, _) = h.open("/n", 2);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[7], 100),
            placements: vec![(ChunkId::test_id(7), vec![nodes[0]])],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    let (job, target) = out
        .iter()
        .find_map(|s| match &s.msg {
            Msg::ReplicateCmd { job, copies } => Some((*job, copies[0].target)),
            _ => None,
        })
        .expect("replication command");
    // Report failure; the manager must re-dispatch.
    let out = h.mgr.handle_msg(
        nodes[0],
        Msg::ReplicateReport {
            job,
            node: nodes[0],
            done: vec![],
            failed: vec![stdchk_proto::msg::ReplicaCopy {
                chunk: ChunkId::test_id(7),
                target,
            }],
        },
        h.now,
    );
    find_reply(&out, |m| matches!(m, Msg::ReplicateCmd { .. }));
}

#[test]
fn gc_report_classifies_orphans_and_relearns_locations() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(2);
    let (res, _stripe, _, _) = h.open("/o", 1);
    let req0 = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req: req0,
            reservation: res,
            entries: entries(&[1], 100),
            placements: vec![(ChunkId::test_id(1), vec![nodes[0]])],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    // nodes[1] reports: one live chunk (location relearned), one orphan.
    let req = h.req();
    let out = h.mgr.handle_msg(
        nodes[1],
        Msg::GcReport {
            req,
            node: nodes[1],
            chunks: vec![ChunkId::test_id(1), ChunkId::test_id(99)],
        },
        h.now,
    );
    match &out[0].msg {
        Msg::GcReply { deletable, .. } => {
            assert_eq!(deletable, &vec![ChunkId::test_id(99)]);
        }
        other => panic!("unexpected {other:?}"),
    }
    // The live chunk now lists nodes[1] as a replica holder.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetFile {
            req,
            path: "/o".into(),
            version: None,
        },
        h.now,
    );
    match &out[0].msg {
        Msg::FileViewReply { view, .. } => {
            let locs = view.locations_of(ChunkId::test_id(1)).expect("chunk");
            assert!(locs.contains(&nodes[1]));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn automated_replace_prunes_on_commit() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(2);
    let req = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::SetPolicy {
            req,
            dir: "/app".into(),
            policy: RetentionPolicy::REPLACE,
            repl_bounds: None,
        },
        h.now,
    );
    let (res1, stripe, _, _) = h.open("/app/ck", 1);
    h.commit(res1, entries(&[1], 100), &stripe, false);
    let (res2, stripe2, _, _) = h.open("/app/ck", 1);
    let out = h.commit(res2, entries(&[2], 100), &stripe2, false);
    // Old version pruned: DeleteChunks for chunk 1 goes to its holder.
    let del = find_reply(&out, |m| matches!(m, Msg::DeleteChunks { .. }));
    match del {
        Msg::DeleteChunks { chunks } => assert_eq!(chunks, &vec![ChunkId::test_id(1)]),
        _ => unreachable!(),
    }
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::ListVersions {
            req,
            path: "/app/ck".into(),
        },
        h.now,
    );
    match &out[0].msg {
        Msg::VersionListReply { versions, .. } => assert_eq!(versions.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    let _ = nodes;
    h.mgr.check_invariants();
}

#[test]
fn automated_purge_drops_old_versions_via_tick() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(2);
    let req = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::SetPolicy {
            req,
            dir: "/tmpckpt".into(),
            policy: RetentionPolicy::AutomatedPurge {
                after: Dur::from_millis(200),
            },
            repl_bounds: None,
        },
        h.now,
    );
    let (res, stripe, _, _) = h.open("/tmpckpt/x", 1);
    h.commit(res, entries(&[1], 10), &stripe, false);
    // Keep benefactors alive while the purge window elapses.
    let mut all_out = Vec::new();
    for _ in 0..4 {
        h.heartbeat_all(&nodes);
        all_out.extend(h.advance(Dur::from_millis(100)));
    }
    assert!(
        all_out
            .iter()
            .any(|s| matches!(s.msg, Msg::DeleteChunks { .. })),
        "purge should delete chunks: {all_out:?}"
    );
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetAttr {
            req,
            path: "/tmpckpt/x".into(),
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::ErrorReply { .. }));
    h.mgr.check_invariants();
}

#[test]
fn delete_file_orphans_chunks() {
    let mut h = Harness::new();
    let _nodes = h.join_benefactors(2);
    let (res, stripe, _, _) = h.open("/del", 1);
    h.commit(res, entries(&[1, 2], 10), &stripe, false);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::DeleteFile {
            req,
            path: "/del".into(),
        },
        h.now,
    );
    assert!(out
        .iter()
        .any(|s| matches!(s.msg, Msg::DeleteChunks { .. })));
    assert!(out.iter().any(|s| matches!(s.msg, Msg::Ack { .. })));
    h.mgr.check_invariants();
}

#[test]
fn list_dir_shows_files_and_subdirs() {
    let mut h = Harness::new();
    h.join_benefactors(2);
    for path in ["/bms/a.n1", "/bms/a.n2", "/bms/sub/deep.n1"] {
        let (res, stripe, _, _) = h.open(path, 1);
        h.commit(res, entries(&[1], 10), &stripe, false);
    }
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::ListDir {
            req,
            path: "/bms".into(),
        },
        h.now,
    );
    match &out[0].msg {
        Msg::DirListingReply { entries, .. } => {
            let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
            assert_eq!(names, vec!["a.n1", "a.n2", "sub"]);
            assert!(entries[2].attr.is_dir);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn reoffer_needs_two_thirds_concurrence() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let ents = entries(&[1, 2, 3], 50);
    let placements: Vec<(ChunkId, Vec<NodeId>)> = vec![
        (ChunkId::test_id(1), vec![nodes[0]]),
        (ChunkId::test_id(2), vec![nodes[1]]),
        (ChunkId::test_id(3), vec![nodes[2]]),
    ];
    // First offer: below threshold (need ceil(2/3·3)=2): silence.
    let req = h.req();
    let out = h.mgr.handle_msg(
        nodes[0],
        Msg::ReofferCommit {
            req,
            node: nodes[0],
            path: "/rec/f".into(),
            entries: ents.clone(),
            placements: placements.clone(),
        },
        h.now,
    );
    assert!(
        out.is_empty(),
        "one offer of three must not commit: {out:?}"
    );
    // Second agreeing offer: accepted.
    let req = h.req();
    let out = h.mgr.handle_msg(
        nodes[1],
        Msg::ReofferCommit {
            req,
            node: nodes[1],
            path: "/rec/f".into(),
            entries: ents.clone(),
            placements: placements.clone(),
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::Ack { .. }));
    assert_eq!(h.mgr.stats().recovered_commits, 1);
    // The file is now readable.
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::GetFile {
            req,
            path: "/rec/f".into(),
            version: None,
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::FileViewReply { .. }));
    // A third (late) offer is acked as stale.
    let req = h.req();
    let out = h.mgr.handle_msg(
        nodes[2],
        Msg::ReofferCommit {
            req,
            node: nodes[2],
            path: "/rec/f".into(),
            entries: ents,
            placements,
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::Ack { .. }));
    h.mgr.check_invariants();
}

#[test]
fn stripe_selection_rotates_across_requests() {
    let mut h = Harness::new();
    h.join_benefactors(6);
    let (_, s1, _, _) = h.open("/r1", 1);
    let (_, s2, _, _) = h.open("/r2", 1);
    assert_ne!(s1, s2, "round-robin rotation should shift the stripe");
}

#[test]
fn heartbeat_from_unknown_node_registers_it() {
    let mut h = Harness::new();
    let out = h.mgr.handle_msg(
        NodeId(42),
        Msg::Heartbeat {
            node: NodeId(42),
            free_space: GIB,
            total_space: GIB,
            addr: String::new(),
        },
        h.now,
    );
    assert!(matches!(out[0].msg, Msg::HeartbeatAck { .. }));
    assert_eq!(h.mgr.online_benefactors(), 1);
    // Subsequent joins must not collide with the adopted id.
    let ids = h.join_benefactors(1);
    assert!(ids[0].as_u64() > 42);
}

#[test]
fn gc_mark_sets_due_flag_delivered_in_heartbeat_ack() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(1);
    let every = h.mgr.config().gc_every;
    // Stay within the liveness timeout while the GC interval elapses.
    let step = Dur::from_millis(100);
    let mut elapsed = Dur::ZERO;
    while elapsed < every + Dur::from_millis(20) {
        h.heartbeat_all(&nodes);
        h.advance(step);
        elapsed += step;
    }
    let out = h.mgr.handle_msg(
        nodes[0],
        Msg::Heartbeat {
            node: nodes[0],
            free_space: GIB,
            total_space: GIB,
            addr: String::new(),
        },
        h.now,
    );
    match &out[0].msg {
        Msg::HeartbeatAck { gc_due, .. } => assert!(*gc_due),
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------- churn & repair scheduling

use stdchk_proto::meta::MetaRecord;

use crate::manager::{ChunkMeta, ReplTask};
use crate::node::{Action, Node};

impl Harness {
    fn with_config(cfg: PoolConfig) -> Harness {
        Harness {
            mgr: Manager::new(cfg),
            now: Time::ZERO,
            next_req: 1,
        }
    }
}

/// Scheduler on, with a fleet budget of exactly one 1 KiB chunk per second
/// and periodic maintenance pushed far out so ticks only pump repair.
fn throttled_cfg() -> PoolConfig {
    PoolConfig {
        repair_rate_fleet: 1024,
        repair_burst: 1024,
        repair_rate_source: 0,
        policy_sweep_every: Dur::from_secs(60),
        gc_every: Dur::from_secs(60),
        heartbeat_every: Dur::from_secs(60),
        benefactor_timeout: Dur::from_secs(600),
        ..PoolConfig::default()
    }
}

fn total_copies(out: &[Send]) -> usize {
    out.iter()
        .map(|s| match &s.msg {
            Msg::ReplicateCmd { copies, .. } => copies.len(),
            _ => 0,
        })
        .sum()
}

/// Commits two 1 KiB chunks placed on `nodes[0]` only, under replication 2,
/// so both need one repair copy each.
fn commit_two_underreplicated(h: &mut Harness, nodes: &[NodeId]) -> Vec<Send> {
    let (res, _stripe, _, _) = h.open("/r", 2);
    let req = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[1, 2], 1024),
            placements: vec![
                (ChunkId::test_id(1), vec![nodes[0]]),
                (ChunkId::test_id(2), vec![nodes[0]]),
            ],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    )
}

#[test]
fn gc_report_pumps_repair_at_report_time() {
    let mut h = Harness::with_config(throttled_cfg());
    let nodes = h.join_benefactors(3);
    // The fleet budget covers one of the two needed copies; the other is
    // throttled and stays queued.
    let out = commit_two_underreplicated(&mut h, &nodes);
    assert_eq!(total_copies(&out), 1, "budget admits one copy: {out:?}");
    assert_eq!(h.mgr.repair_backlog(), 1);
    // A GC report two seconds later must pump repair at the *report* time,
    // where the bucket has refilled. (Regression: this path once pumped at
    // Time::ZERO, before the bucket's last refill, so tokens never accrued
    // and GC reports could not un-throttle repair.)
    h.now += Dur::from_secs(2);
    let req = h.req();
    let out = h.mgr.handle_msg(
        nodes[0],
        Msg::GcReport {
            req,
            node: nodes[0],
            chunks: vec![ChunkId::test_id(1), ChunkId::test_id(2)],
        },
        h.now,
    );
    assert_eq!(
        total_copies(&out),
        1,
        "refilled bucket dispatches the queued copy: {out:?}"
    );
    assert_eq!(h.mgr.repair_backlog(), 0);
}

#[test]
fn throttled_repair_sets_wake_time_and_resumes_on_refill() {
    let mut h = Harness::with_config(throttled_cfg());
    let nodes = h.join_benefactors(3);
    let out = commit_two_underreplicated(&mut h, &nodes);
    assert_eq!(total_copies(&out), 1);
    // The refill instant is recorded and surfaced as the driver wake time.
    assert_eq!(h.mgr.next_repair_at, Some(Time::from_secs(1)));
    assert_eq!(h.mgr.poll_timeout(), Some(Time::from_secs(1)));
    // Ticking before the refill dispatches nothing.
    let out = h.advance(Dur::from_millis(300));
    assert_eq!(total_copies(&out), 0);
    // After the refill the queued copy goes out and the backlog drains.
    let out = h.advance(Dur::from_secs(1));
    assert_eq!(total_copies(&out), 1);
    assert_eq!(h.mgr.repair_backlog(), 0);
}

#[test]
fn scheduler_off_env_reverts_to_unthrottled_fifo() {
    assert!(PoolConfig::default().repair_scheduler);
    std::env::set_var("STDCHK_REPAIR_SCHED", "off");
    let cfg = throttled_cfg().apply_env();
    std::env::remove_var("STDCHK_REPAIR_SCHED");
    assert!(!cfg.repair_scheduler);
    // The same commit the scheduler throttles to one copy dispatches both
    // immediately on the legacy FIFO path.
    let mut h = Harness::with_config(cfg);
    let nodes = h.join_benefactors(3);
    let out = commit_two_underreplicated(&mut h, &nodes);
    assert_eq!(total_copies(&out), 2, "FIFO path ignores budgets: {out:?}");
    assert_eq!(h.mgr.repair_backlog(), 0);
}

#[test]
fn repair_queue_orders_by_liveness_then_recency() {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.replication_batch = 1; // one copy per job → dispatch order is visible
    let mut h = Harness::with_config(cfg);
    let nodes = h.join_benefactors(3);
    let meta = |locs: &[NodeId], last_version: u64| ChunkMeta {
        size: 100,
        locations: locs.to_vec(),
        refcount: 1,
        target: 3,
        last_version,
        pins: 0,
    };
    // A and C each have one live replica (C referenced by a newer
    // version); B has two.
    h.mgr
        .chunks
        .insert(ChunkId::test_id(1), meta(&[nodes[0]], 1));
    h.mgr
        .chunks
        .insert(ChunkId::test_id(2), meta(&[nodes[0], nodes[1]], 9));
    h.mgr
        .chunks
        .insert(ChunkId::test_id(3), meta(&[nodes[0]], 7));
    for id in [1, 2, 3] {
        h.mgr.repl_queue.push_back(ReplTask {
            chunk: ChunkId::test_id(id),
            attempts: 0,
        });
    }
    let out = h.advance(Dur::from_millis(10));
    let order: Vec<ChunkId> = out
        .iter()
        .filter_map(|s| match &s.msg {
            Msg::ReplicateCmd { copies, .. } => Some(copies[0].chunk),
            _ => None,
        })
        .collect();
    assert_eq!(
        order,
        vec![
            ChunkId::test_id(3), // 1 live replica, newest version
            ChunkId::test_id(1), // 1 live replica, older version
            ChunkId::test_id(2), // 2 live replicas
        ]
    );
}

#[test]
fn expired_source_requeues_inflight_repair_to_survivor() {
    let mut h = Harness::new();
    let nodes = h.join_benefactors(3);
    let (res, _stripe, _, _) = h.open("/d", 3);
    let req = h.req();
    let out = h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[5], 100),
            placements: vec![(ChunkId::test_id(5), vec![nodes[0], nodes[1]])],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    // Target 3, two replicas: a copy job is in flight from nodes[0].
    let src = out
        .iter()
        .find_map(|s| matches!(s.msg, Msg::ReplicateCmd { .. }).then_some(s.to))
        .expect("replication command");
    assert_eq!(src, nodes[0]);
    // The source expires mid-job: the copy must be re-planned from the
    // surviving holder rather than leaking the job slot.
    h.now += Dur::from_millis(200);
    h.heartbeat_all(&nodes[1..]);
    let out = h.advance(Dur::from_millis(100));
    let src = out
        .iter()
        .find_map(|s| matches!(s.msg, Msg::ReplicateCmd { .. }).then_some(s.to))
        .expect("re-planned replication command");
    assert_eq!(src, nodes[1]);
    assert!(h.mgr.repl_jobs.values().all(|j| j.source == nodes[1]));
}

#[test]
fn adaptive_targets_rise_under_churn_and_fall_when_calm() {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.adaptive_replication = true;
    cfg.repl_min = 1;
    cfg.repl_max = 3;
    let mut h = Harness::with_config(cfg.clone());
    let nodes = h.join_benefactors(4);
    let (res, stripe, _, _) = h.open("/ckpt/a", 1);
    h.commit(res, entries(&[1], 256), &stripe, false);
    // Calm fleet: the sweep keeps the minimal target.
    h.now += Dur::from_millis(200);
    h.heartbeat_all(&nodes);
    h.mgr.tick(h.now);
    assert_eq!(h.mgr.chunks[&ChunkId::test_id(1)].target, 1);
    // Three of four nodes churn out and stay gone: availability collapses
    // and the sweep raises the target to the ceiling.
    let holder = h.mgr.chunks[&ChunkId::test_id(1)]
        .locations
        .first()
        .copied()
        .expect("placement");
    for _ in 0..10 {
        h.now += Dur::from_millis(200);
        h.heartbeat_all(&[holder]);
        h.mgr.tick(h.now);
    }
    assert_eq!(h.mgr.chunks[&ChunkId::test_id(1)].target, 3);
    // With only the holder online there is no capacity to repair into;
    // the sweep must not queue futile work.
    assert_eq!(h.mgr.repair_backlog(), 0);

    // Fresh calm fleet: a high target decays to the directory bounds'
    // floor (nearest-ancestor lookup).
    let mut h = Harness::with_config(cfg);
    let nodes = h.join_benefactors(4);
    let req = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::SetPolicy {
            req,
            dir: "/ckpt".into(),
            policy: RetentionPolicy::NoIntervention,
            repl_bounds: Some((2, 3)),
        },
        h.now,
    );
    let (res, _stripe, _, _) = h.open("/ckpt/a", 3);
    let req = h.req();
    h.mgr.handle_msg(
        NodeId(77),
        Msg::CommitChunkMap {
            req,
            reservation: res,
            entries: entries(&[1], 256),
            placements: vec![(ChunkId::test_id(1), vec![nodes[0], nodes[1], nodes[2]])],
            pessimistic: false,
            dedup: Default::default(),
        },
        h.now,
    );
    assert_eq!(h.mgr.chunks[&ChunkId::test_id(1)].target, 3);
    h.mgr.adapt_replication_targets(Time::from_secs(1));
    // Fully-available fleet would settle at 1 replica, but the directory
    // bounds clamp the floor at 2.
    assert_eq!(h.mgr.chunks[&ChunkId::test_id(1)].target, 2);
}

#[test]
fn checkpoint_guidance_follows_youngs_formula() {
    let mut h = Harness::new();
    h.join_benefactors(4);
    let now = Time::from_secs(5);
    // Calm fleet: no departures in the window, no guidance.
    assert_eq!(h.mgr.checkpoint_guidance(Dur::from_secs(2), now), Dur::ZERO);
    // One departure: λ = 1 / (10 s window · 4 nodes) = 0.025/s/node, and
    // with δ = 2 s Young's formula gives sqrt(2·2/0.025) ≈ 12.6 s.
    h.mgr.churn.note_departure(NodeId(999), now);
    let t = h
        .mgr
        .checkpoint_guidance(Dur::from_secs(2), now)
        .as_secs_f64();
    assert!((12.0..14.0).contains(&t), "got {t}");
    // Heavy churn with a tiny write duration clamps at the floor.
    for i in 0..40 {
        h.mgr.churn.note_departure(NodeId(1000 + i), now);
    }
    let t = h.mgr.checkpoint_guidance(Dur::ZERO, now);
    assert_eq!(t, h.mgr.config().guidance_min);
}

#[test]
fn commit_reply_carries_checkpoint_guidance() {
    let mut h = Harness::new();
    h.join_benefactors(2);
    // Calm fleet: the reply carries no guidance.
    let (res, stripe, _, _) = h.open("/g", 1);
    h.now += Dur::from_millis(200);
    let out = h.commit(res, entries(&[1], 256), &stripe, false);
    match find_reply(&out, |m| matches!(m, Msg::CommitOk { .. })) {
        Msg::CommitOk {
            suggested_interval, ..
        } => assert_eq!(*suggested_interval, Dur::ZERO),
        _ => unreachable!(),
    }
    // Observed churn: the reply suggests a positive, bounded interval
    // derived from this session's open→commit duration.
    h.mgr.churn.note_departure(NodeId(999), h.now);
    let (res, stripe, _, _) = h.open("/g", 1);
    h.now += Dur::from_millis(200);
    let out = h.commit(res, entries(&[2], 256), &stripe, false);
    match find_reply(&out, |m| matches!(m, Msg::CommitOk { .. })) {
        Msg::CommitOk {
            suggested_interval, ..
        } => {
            assert!(*suggested_interval > Dur::ZERO);
            assert!(*suggested_interval <= h.mgr.config().guidance_max);
        }
        _ => unreachable!(),
    }
}

#[test]
fn churn_and_bounds_replay_restores_estimator_state() {
    let mut h = Harness::new();
    h.mgr.enable_wal();
    let nodes = h.join_benefactors(2);
    let mut records = Vec::new();
    let drain = |mgr: &mut Manager, records: &mut Vec<MetaRecord>| {
        while let Some(a) = mgr.poll_action() {
            if let Action::MetaAppend { record, .. } = a {
                records.push(record);
            }
        }
    };
    // A bounds change plus one heartbeat expiry emit durable records.
    let req = h.req();
    Node::handle(
        &mut h.mgr,
        NodeId(77),
        Msg::SetPolicy {
            req,
            dir: "/ckpt".into(),
            policy: RetentionPolicy::NoIntervention,
            repl_bounds: Some((2, 4)),
        },
        h.now,
    );
    drain(&mut h.mgr, &mut records);
    h.now += Dur::from_millis(100);
    h.heartbeat_all(&nodes[1..]);
    h.now += Dur::from_millis(100);
    Node::handle_timeout(&mut h.mgr, h.now);
    drain(&mut h.mgr, &mut records);
    assert!(records
        .iter()
        .any(|r| matches!(r, MetaRecord::Churn { .. })));
    assert_eq!(h.mgr.churn_totals().departures, 1);
    // Replaying the log into a fresh manager reproduces totals and bounds.
    let mut m2 = Manager::new(PoolConfig::fast_for_tests());
    for r in &records {
        m2.replay(r, h.now);
    }
    assert_eq!(m2.churn_totals(), h.mgr.churn_totals());
    assert_eq!(m2.repl_bounds.get("/ckpt"), Some(&(2, 4)));
    // Snapshots carry the bounds as well.
    let snap = h.mgr.snapshot();
    let m3 = Manager::restore(PoolConfig::fast_for_tests(), &snap, h.now);
    assert_eq!(m3.repl_bounds.get("/ckpt"), Some(&(2, 4)));
}
