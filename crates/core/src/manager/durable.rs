//! Durable-metadata support: snapshotting the manager's state and
//! replaying write-ahead-log records after a restart.
//!
//! The manager itself stays sans-IO — it only *emits* records (as
//! [`Action::MetaAppend`](crate::Action::MetaAppend), queued ahead of the
//! reply each record guards) and *consumes* them again through
//! [`Manager::replay`]. Where the records live between crash and restart
//! is a driver concern (`stdchk-net`'s `MetaLog`).
//!
//! # What is durable, what is soft
//!
//! Durable (logged / snapshotted): the namespace — files, version
//! history with chunk-maps and mtimes, chunk sizes/targets/placements,
//! retention policies — plus the id counters and benefactor membership
//! (id, address, donated space).
//!
//! Soft (re-established by the protocols): benefactor liveness and free
//! space (heartbeats), reservations and in-flight sessions (clients
//! retry), replication jobs and pending pessimistic commits
//! (maintenance re-plans from the restored chunk targets), re-offer
//! tallies, and counters ([`ManagerStats`](crate::ManagerStats) restarts
//! at zero).
//!
//! A restored manager marks every known benefactor online with
//! `gc_due = true`: the first heartbeat round triggers inventory (GC)
//! reports that re-learn replica locations, and benefactor re-offers
//! demote from *the* recovery mechanism to a consistency repair — a
//! re-offer matching an already-replayed chunk-map is acked as stale.

use std::collections::HashMap;

use stdchk_proto::chunkmap::ChunkMap;
use stdchk_proto::ids::{ChunkId, NodeId, VersionId};
use stdchk_proto::meta::{MetaRecord, MetaSnapshot, SnapshotChunk, SnapshotFile, SnapshotVersion};
use stdchk_util::Time;

use super::{BenefactorInfo, ChunkMeta, FileState, Manager};
use crate::config::PoolConfig;
use crate::node::ActionQueue;

impl Manager {
    /// Serializes the manager's durable state. Taken periodically by
    /// drivers so WAL replay stays bounded; replaying the snapshot plus
    /// every record logged after it reproduces the namespace exactly.
    pub fn snapshot(&self) -> MetaSnapshot {
        MetaSnapshot {
            next_node: self.next_node,
            next_file: self.next_file,
            next_version: self.next_version,
            benefactors: self
                .benefactors
                .iter()
                .map(|(id, b)| (*id, b.addr.clone(), b.total))
                .collect(),
            files: self
                .files
                .iter()
                .map(|(path, f)| SnapshotFile {
                    path: path.clone(),
                    id: f.id,
                    replication: f.replication,
                    versions: f
                        .versions
                        .iter()
                        .map(|v| SnapshotVersion {
                            version: v.version,
                            mtime: v.mtime,
                            entries: v.map.entries().to_vec(),
                        })
                        .collect(),
                })
                .collect(),
            dirs: self.dirs.iter().map(|(d, p)| (d.clone(), *p)).collect(),
            repl_bounds: self
                .repl_bounds
                .iter()
                .map(|(d, b)| (d.clone(), *b))
                .collect(),
            chunks: self
                .chunks
                .iter()
                .map(|(id, m)| SnapshotChunk {
                    id: *id,
                    size: m.size,
                    target: m.target,
                    locations: m.locations.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds a manager from a snapshot. Chunk refcounts are recomputed
    /// from the version maps (the refcount invariant holds by
    /// construction); benefactors come back online with `gc_due` set so
    /// their first heartbeat pulls an inventory report, re-learning any
    /// replica locations the snapshot missed.
    pub fn restore(cfg: PoolConfig, snap: &MetaSnapshot, now: Time) -> Manager {
        let mut mgr = Manager::new(cfg);
        mgr.next_node = snap.next_node;
        mgr.next_file = snap.next_file;
        mgr.next_version = snap.next_version;
        for (node, addr, total) in &snap.benefactors {
            mgr.adopt_benefactor(*node, addr.clone(), *total, now);
        }
        for (dir, policy) in &snap.dirs {
            mgr.dirs.insert(dir.clone(), *policy);
        }
        for (dir, bounds) in &snap.repl_bounds {
            mgr.repl_bounds.insert(dir.clone(), *bounds);
        }
        for c in &snap.chunks {
            mgr.chunks.insert(
                c.id,
                ChunkMeta {
                    size: c.size,
                    locations: c.locations.clone(),
                    refcount: 0,
                    target: c.target,
                    last_version: 0,
                    pins: 0,
                },
            );
        }
        for f in &snap.files {
            let mut versions = Vec::with_capacity(f.versions.len());
            for v in &f.versions {
                let map = MetaSnapshot::map_of(v);
                mgr.incref_map(&map, v.version);
                mgr.next_version = mgr.next_version.max(v.version.as_u64() + 1);
                versions.push(super::VersionRecord {
                    version: v.version,
                    map,
                    mtime: v.mtime,
                });
            }
            mgr.next_file = mgr.next_file.max(f.id.as_u64() + 1);
            mgr.files.insert(
                f.path.clone(),
                FileState {
                    id: f.id,
                    versions,
                    replication: f.replication,
                },
            );
        }
        // Drop chunk entries no version references (a snapshot written
        // concurrently with pruning could carry one); refcount-zero chunks
        // never exist in a live manager.
        mgr.chunks.retain(|_, m| m.refcount > 0);
        mgr
    }

    /// Applies one logged mutation record without emitting any actions —
    /// no sends, no re-logging. Called in log order after
    /// [`Manager::restore`]; the result is observably identical
    /// (`stat`/`list`/versions, invariants) to the manager that emitted
    /// the records.
    pub fn replay(&mut self, record: &MetaRecord, now: Time) {
        // Replay must stay silent: decrefs route their DeleteChunks sends
        // into a scratch queue that is dropped (the restored targets are
        // re-told by the GC flow).
        let mut scratch = ActionQueue::new();
        match record {
            MetaRecord::Commit {
                path,
                file,
                version,
                mtime,
                entries,
                placements,
                replication,
            } => {
                // Snapshots are fuzzy: one taken while appends were still
                // in flight may already include the effects of the first
                // few records replayed after it. Version ids are unique,
                // so "this version already exists" detects exactly those
                // records; skipping them (and re-running everything later,
                // which re-erases anything re-applied) converges on the
                // pre-crash state.
                let already = self
                    .files
                    .get(path)
                    .is_some_and(|f| f.versions.iter().any(|v| v.version == *version));
                if already {
                    self.next_file = self.next_file.max(file.as_u64() + 1);
                    self.next_version = self.next_version.max(version.as_u64() + 1);
                } else {
                    let map = ChunkMap::from_entries(entries.clone());
                    self.apply_version(
                        path,
                        Some(*file),
                        *version,
                        map,
                        placements,
                        *replication,
                        *mtime,
                    );
                }
            }
            MetaRecord::Prune { path, versions } => {
                self.drop_versions(path, versions, &mut scratch);
                // Mirror the live path's `drop_file_if_empty`: a purge
                // that empties a file removes its entry, so a later
                // re-creation gets a fresh FileId. Keeping the stale
                // entry here would make replay resurrect the old id and
                // diverge from the Commit record that follows. (No
                // reservation check — replay has no reservations, and a
                // Commit replay re-creates the entry from its file hint.)
                if self.files.get(path).is_some_and(|f| f.versions.is_empty()) {
                    self.files.remove(path);
                }
            }
            MetaRecord::Delete { path } => {
                let all: Vec<VersionId> = self
                    .files
                    .get(path)
                    .map(|f| f.versions.iter().map(|v| v.version).collect())
                    .unwrap_or_default();
                self.drop_versions(path, &all, &mut scratch);
                self.files.remove(path);
            }
            MetaRecord::SetPolicy {
                dir,
                policy,
                repl_bounds,
            } => {
                self.dirs.insert(dir.clone(), *policy);
                if let Some(bounds) = repl_bounds {
                    self.repl_bounds.insert(dir.clone(), *bounds);
                }
            }
            MetaRecord::Benefactor { node, addr, total } => {
                self.adopt_benefactor(*node, addr.clone(), *total, now);
            }
            MetaRecord::Churn { node, session } => {
                // Rebuild the durable churn ledger; the sliding departure
                // window stays empty (stale departures must not throttle a
                // freshly restarted manager).
                self.churn.fold(*node, *session);
            }
            MetaRecord::Dedup { summary, .. } => {
                // Rebuild the wire-savings ledger only; commit counts and
                // every other ManagerStats counter stay at zero across a
                // restart.
                self.dedup.fold(summary);
            }
        }
    }

    /// Registers a benefactor from durable membership state: online (the
    /// liveness timeout reaps it if it never heartbeats) with `gc_due`
    /// set so its first heartbeat pulls a full inventory report.
    fn adopt_benefactor(&mut self, node: NodeId, addr: String, total: u64, now: Time) {
        let info = self.benefactors.entry(node).or_insert(BenefactorInfo {
            free: total,
            total,
            reserved: 0,
            last_seen: now,
            online: true,
            gc_due: true,
            addr: String::new(),
        });
        info.total = total;
        if !addr.is_empty() {
            info.addr = addr;
        }
        self.churn.note_online(node, now);
        self.next_node = self.next_node.max(node.as_u64() + 1);
    }

    /// Increments refcounts for every distinct chunk of `map` (restore
    /// path; the inverse of [`Manager::decref_map`]), stamping the
    /// referencing version for repair prioritization.
    fn incref_map(&mut self, map: &ChunkMap, version: VersionId) {
        let sizes: HashMap<ChunkId, u32> = map.entries().iter().map(|e| (e.id, e.size)).collect();
        for id in map.distinct_chunks() {
            let meta = self.chunks.entry(id).or_insert_with(|| ChunkMeta {
                size: *sizes.get(&id).expect("entry size"),
                locations: Vec::new(),
                refcount: 0,
                target: 1,
                last_version: 0,
                pins: 0,
            });
            meta.refcount += 1;
            meta.last_version = meta.last_version.max(version.as_u64());
        }
    }

    /// Removes the named versions from `path` and decrefs their maps.
    fn drop_versions(&mut self, path: &str, versions: &[VersionId], out: &mut ActionQueue) {
        let Some(file) = self.files.get_mut(path) else {
            return;
        };
        let mut dropped = Vec::new();
        file.versions.retain(|v| {
            if versions.contains(&v.version) {
                dropped.push(v.clone());
                false
            } else {
                true
            }
        });
        for record in dropped {
            self.decref_map(&record.map, out);
        }
    }
}
