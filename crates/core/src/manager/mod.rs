//! The centralized metadata manager (paper §IV.A).
//!
//! The manager maintains the entire system metadata: donor-node status via
//! soft-state registration, file chunk distribution (chunk-maps), dataset
//! attributes, eager space reservations, replication orchestration through
//! shadow chunk-maps, pull-based garbage collection, and automated
//! time-sensitive data management.
//!
//! The implementation is a sans-IO state machine behind the unified
//! [`Node`] API: [`Node::handle`] consumes one protocol message,
//! [`Node::handle_timeout`] runs time-based maintenance (heartbeat expiry,
//! reservation expiry, retention policies, replication dispatch, GC marks)
//! at the deadline advertised by [`Node::poll_timeout`], and outputs drain
//! through [`Node::poll_action`]. [`Manager::handle_msg`] and
//! [`Manager::tick`] remain as `Vec`-returning compatibility shims.

mod churn;
mod durable;
mod maintain;
mod replicate;
mod write;

pub(crate) use churn::ChurnTracker;
pub use churn::{ChurnTotals, NodeClass};

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use stdchk_proto::chunkmap::{ChunkMap, FileVersionView};
use stdchk_proto::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::meta::MetaRecord;
use stdchk_proto::msg::{DedupSummary, DirEntry, FileAttr, Msg, VersionInfo};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::ErrorCode;
use stdchk_util::rate::TokenBucket;
use stdchk_util::{Dur, Time};

use crate::config::PoolConfig;
use crate::node::{earliest, Action, ActionQueue, Node};

/// One outbound message produced by the manager (legacy shim vocabulary;
/// drivers dispatch on the unified [`Action`] enum).
#[derive(Clone, Debug, PartialEq)]
pub struct Send {
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub msg: Msg,
}

impl From<Send> for Action {
    fn from(s: Send) -> Action {
        Action::Send {
            to: s.to,
            msg: s.msg,
        }
    }
}

/// Counters exposed for harnesses (e.g. Figure 8 reports manager
/// transaction counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Client/benefactor messages processed.
    pub transactions: u64,
    /// Versions committed.
    pub commits: u64,
    /// Replication copy orders issued.
    pub replication_copies: u64,
    /// Chunks declared deletable through GC replies.
    pub gc_deletable: u64,
    /// Versions dropped by retention policies.
    pub policy_drops: u64,
    /// Commits recovered through benefactor re-offers.
    pub recovered_commits: u64,
}

/// Wire-dedup accounting accumulated across commits (paper §IV.C applied
/// to the transfer path). Unlike [`ManagerStats`] these totals are
/// *durable*: each negotiated commit logs a [`MetaRecord::Dedup`] record
/// and replay folds it back in, so the savings ledger survives manager
/// restarts without ever being confused with commit counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupTotals {
    /// Commits that carried a non-trivial dedup summary.
    pub commits: u64,
    /// Chunks clients offered for negotiation.
    pub offered_chunks: u64,
    /// Offered chunks the manager asked to be shipped.
    pub wanted_chunks: u64,
    /// Bytes that never crossed the wire (commit-by-reference).
    pub reused_bytes: u64,
    /// Bytes shipped as deltas against a prior version's chunk.
    pub delta_bytes: u64,
    /// Bytes shipped in full.
    pub full_bytes: u64,
}

impl DedupTotals {
    pub(crate) fn fold(&mut self, s: &DedupSummary) {
        self.commits += 1;
        self.offered_chunks += s.offered as u64;
        self.wanted_chunks += s.wanted as u64;
        self.reused_bytes += s.reused_bytes;
        self.delta_bytes += s.delta_bytes;
        self.full_bytes += s.full_bytes;
    }
}

#[derive(Clone, Debug)]
pub(crate) struct BenefactorInfo {
    pub free: u64,
    pub total: u64,
    pub reserved: u64,
    pub last_seen: Time,
    pub online: bool,
    pub gc_due: bool,
    /// Dial address (empty under the simulator).
    pub addr: String,
}

#[derive(Clone, Debug)]
pub(crate) struct VersionRecord {
    pub version: VersionId,
    pub map: ChunkMap,
    pub mtime: Time,
}

#[derive(Clone, Debug)]
pub(crate) struct FileState {
    pub id: FileId,
    pub versions: Vec<VersionRecord>,
    pub replication: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct ChunkMeta {
    /// Recorded for capacity accounting and GC diagnostics.
    #[allow(dead_code)]
    pub size: u32,
    pub locations: Vec<NodeId>,
    pub refcount: u32,
    pub target: u32,
    /// Newest version id referencing this chunk — the repair scheduler's
    /// tiebreak (recent checkpoints repair first, paper-style most-recent-
    /// checkpoint-matters semantics).
    pub last_version: u64,
    /// Soft holds placed by have/want negotiation: a `WantChunks` reply
    /// that told a client "already here" pins the chunk until that
    /// reservation commits, aborts, or expires, so retention pruning
    /// racing the negotiation can never reclaim a chunk the upcoming
    /// commit will reference. Pins are not logged or snapshotted — a
    /// restart drops them, and the client's commit then fails validation
    /// and retries with a full transfer.
    pub pins: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct Reservation {
    /// The opening client (diagnostics; replies route via request ids).
    #[allow(dead_code)]
    pub client: NodeId,
    pub path: String,
    pub version: VersionId,
    pub stripe: Vec<NodeId>,
    pub replication: u32,
    pub reserved_on: HashMap<NodeId, u64>,
    pub expires: Time,
    /// When the write session opened (checkpoint-interval guidance uses
    /// commit−open as the observed checkpoint duration δ).
    pub opened: Time,
    /// Chunks pinned on behalf of this reservation by have/want
    /// negotiation (one list entry per pin; released on commit, abort,
    /// or expiry).
    pub pinned: Vec<ChunkId>,
}

#[derive(Clone, Debug)]
pub(crate) struct ReplTask {
    pub chunk: ChunkId,
    pub attempts: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct ReplJob {
    /// Source benefactor executing the copies (diagnostics).
    #[allow(dead_code)]
    pub source: NodeId,
    pub copies: Vec<(ChunkId, NodeId)>,
    /// Retry attempt each copy was dispatched at (for failure budgets).
    pub attempts: HashMap<ChunkId, u32>,
}

#[derive(Clone, Debug)]
pub(crate) struct PendingCommit {
    pub client: NodeId,
    pub req: RequestId,
    pub file: FileId,
    pub version: VersionId,
    pub waiting: HashSet<ChunkId>,
    /// Guidance computed at commit-validation time, delivered when the
    /// deferred `CommitOk` finally goes out.
    pub suggested_interval: Dur,
}

#[derive(Clone, Debug)]
pub(crate) struct Reoffer {
    pub node: NodeId,
    pub entries: Vec<stdchk_proto::chunkmap::ChunkEntry>,
    pub placements: Vec<(ChunkId, Vec<NodeId>)>,
}

/// The metadata manager state machine.
#[derive(Debug)]
pub struct Manager {
    pub(crate) cfg: PoolConfig,
    pub(crate) next_node: u64,
    pub(crate) next_file: u64,
    pub(crate) next_version: u64,
    pub(crate) next_reservation: u64,
    pub(crate) next_job: u64,
    pub(crate) benefactors: BTreeMap<NodeId, BenefactorInfo>,
    pub(crate) rr_cursor: usize,
    pub(crate) files: BTreeMap<String, FileState>,
    pub(crate) dirs: BTreeMap<String, RetentionPolicy>,
    /// Per-directory `(min, max)` clamps for adaptive replication targets
    /// (durable via `MetaRecord::SetPolicy`).
    pub(crate) repl_bounds: BTreeMap<String, (u32, u32)>,
    pub(crate) chunks: HashMap<ChunkId, ChunkMeta>,
    pub(crate) reservations: HashMap<ReservationId, Reservation>,
    pub(crate) repl_queue: VecDeque<ReplTask>,
    pub(crate) repl_jobs: HashMap<u64, ReplJob>,
    pub(crate) pending_commits: Vec<PendingCommit>,
    pub(crate) reoffers: HashMap<String, Vec<Reoffer>>,
    pub(crate) last_policy_sweep: Time,
    pub(crate) last_gc_mark: Time,
    pub(crate) stats: ManagerStats,
    pub(crate) dedup: DedupTotals,
    /// Session-length and departure-rate observation (see [`churn`]).
    pub(crate) churn: ChurnTracker,
    /// Fleet-wide repair token bucket (`None` = unlimited).
    pub(crate) repair_fleet: Option<TokenBucket>,
    /// Per-source repair token buckets, created lazily.
    pub(crate) repair_sources: HashMap<NodeId, TokenBucket>,
    /// Earliest time a throttled repair becomes dispatchable again.
    pub(crate) next_repair_at: Option<Time>,
    pub(crate) actions: ActionQueue,
    /// When set, every namespace mutation also emits an
    /// [`Action::MetaAppend`] write-ahead-log record (see [`durable`]).
    pub(crate) wal: bool,
    /// Mutation-order stamp for the next WAL record.
    pub(crate) next_meta_seq: u64,
}

impl Manager {
    /// Creates a manager for an empty pool.
    pub fn new(cfg: PoolConfig) -> Manager {
        let repair_fleet = (cfg.repair_scheduler && cfg.repair_rate_fleet > 0).then(|| {
            TokenBucket::new(cfg.repair_rate_fleet as f64, cfg.repair_burst.max(1) as f64)
        });
        Manager {
            cfg,
            next_node: 1,
            next_file: 1,
            next_version: 1,
            next_reservation: 1,
            next_job: 1,
            benefactors: BTreeMap::new(),
            rr_cursor: 0,
            files: BTreeMap::new(),
            dirs: BTreeMap::new(),
            repl_bounds: BTreeMap::new(),
            chunks: HashMap::new(),
            reservations: HashMap::new(),
            repl_queue: VecDeque::new(),
            repl_jobs: HashMap::new(),
            pending_commits: Vec::new(),
            reoffers: HashMap::new(),
            last_policy_sweep: Time::ZERO,
            last_gc_mark: Time::ZERO,
            stats: ManagerStats::default(),
            dedup: DedupTotals::default(),
            churn: ChurnTracker::default(),
            repair_fleet,
            repair_sources: HashMap::new(),
            next_repair_at: None,
            actions: ActionQueue::new(),
            wal: false,
            next_meta_seq: 0,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Turns on write-ahead logging: from now on every namespace mutation
    /// emits an [`Action::MetaAppend`] record *before* the reply it
    /// guards, so a driver that executes actions in order gets
    /// durable-before-ack semantics for free. Off by default — a manager
    /// without an attached log (tests, the pure-trait driver) stays
    /// volatile and emits only `Send`s.
    pub fn enable_wal(&mut self) {
        self.wal = true;
    }

    /// True when write-ahead logging is on.
    pub fn wal_enabled(&self) -> bool {
        self.wal
    }

    /// Queues a WAL record if logging is enabled (no-op otherwise). The
    /// sequence stamp is assigned here, under the state-machine lock, so
    /// it reflects true mutation order even when a driver executes the
    /// queued actions from racing threads.
    pub(crate) fn log_meta(&mut self, out: &mut ActionQueue, record: impl FnOnce() -> MetaRecord) {
        if self.wal {
            let seq = self.next_meta_seq;
            self.next_meta_seq += 1;
            out.push(Action::MetaAppend {
                seq,
                record: record(),
            });
        }
    }

    /// Operational counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Wire-dedup savings ledger (durable across restarts via
    /// [`MetaRecord::Dedup`] replay).
    pub fn dedup_totals(&self) -> DedupTotals {
        self.dedup
    }

    /// Durable churn totals (departure count, summed session time).
    pub fn churn_totals(&self) -> ChurnTotals {
        self.churn.totals()
    }

    /// Current fleet availability estimate, parts-per-million.
    pub fn availability_ppm(&self, now: Time) -> u64 {
        self.churn.availability_ppm(now)
    }

    /// The churn class the manager currently assigns to `node`.
    pub fn node_class(&self, node: NodeId) -> NodeClass {
        self.churn.class_of(node)
    }

    /// Availability estimate restricted to one node class, or `None` when
    /// no node of that class has been observed.
    pub fn class_availability_ppm(&self, class: NodeClass, now: Time) -> Option<u64> {
        self.churn.class_availability_ppm(class, now)
    }

    /// Under-replicated chunks awaiting repair dispatch (scheduler backlog).
    pub fn repair_backlog(&self) -> usize {
        self.repl_queue.len()
    }

    /// Number of currently online benefactors.
    pub fn online_benefactors(&self) -> usize {
        self.benefactors.values().filter(|b| b.online).count()
    }

    /// Total and free bytes across online benefactors.
    pub fn pool_space(&self) -> (u64, u64) {
        let mut total = 0;
        let mut free = 0;
        for b in self.benefactors.values().filter(|b| b.online) {
            total += b.total;
            free += b.free;
        }
        (total, free)
    }

    /// Processes one inbound message, pushing outputs into `out`.
    fn process_msg(&mut self, from: NodeId, msg: Msg, now: Time, out: &mut ActionQueue) {
        self.stats.transactions += 1;
        match msg {
            Msg::JoinRequest {
                req,
                addr,
                total_space,
            } => self.on_join(from, req, addr, total_space, now, out),
            Msg::Heartbeat {
                node,
                free_space,
                total_space,
                addr,
            } => self.on_heartbeat(node, free_space, total_space, addr, now, out),
            Msg::CreateFile {
                req,
                client,
                path,
                stripe_width,
                replication,
                expected_chunks,
            } => self.on_create_file(
                client,
                req,
                path,
                stripe_width,
                replication,
                expected_chunks,
                now,
                out,
            ),
            Msg::ExtendReservation {
                req,
                reservation,
                additional_chunks,
            } => self.on_extend(from, req, reservation, additional_chunks, now, out),
            Msg::OfferChunks {
                req,
                reservation,
                entries,
            } => self.on_offer(from, req, reservation, entries, out),
            Msg::CommitChunkMap {
                req,
                reservation,
                entries,
                placements,
                pessimistic,
                dedup,
            } => self.on_commit(
                from,
                req,
                reservation,
                entries,
                placements,
                pessimistic,
                dedup,
                now,
                out,
            ),
            Msg::AbortWrite { req, reservation } => self.on_abort(from, req, reservation, out),
            Msg::GetFile { req, path, version } => self.on_get_file(from, req, &path, version, out),
            Msg::ListDir { req, path } => self.on_list_dir(from, req, &path, out),
            Msg::GetAttr { req, path } => self.on_get_attr(from, req, &path, out),
            Msg::ListVersions { req, path } => self.on_list_versions(from, req, &path, out),
            Msg::DeleteFile { req, path } => self.on_delete_file(from, req, &path, out),
            Msg::SetPolicy {
                req,
                dir,
                policy,
                repl_bounds,
            } => self.on_set_policy(from, req, dir, policy, repl_bounds, out),
            Msg::GcReport { req, node, chunks } => self.on_gc_report(req, node, chunks, now, out),
            Msg::ReplicateReport {
                job,
                node,
                done,
                failed,
            } => self.on_replicate_report(job, node, done, failed, now, out),
            Msg::ReofferCommit {
                req,
                node,
                path,
                entries,
                placements,
            } => self.on_reoffer(req, node, path, entries, placements, now, out),
            Msg::ResolveNodes { req, nodes } => {
                let addrs = nodes
                    .into_iter()
                    .filter_map(|n| {
                        self.benefactors
                            .get(&n)
                            .filter(|b| !b.addr.is_empty())
                            .map(|b| (n, b.addr.clone()))
                    })
                    .collect();
                out.push(Send {
                    to: from,
                    msg: Msg::NodeAddrsReply { req, addrs },
                });
            }
            other => {
                // Requests the manager does not serve get a loud error if
                // they carry a request id, and are dropped otherwise.
                if let Some(req) = other.request_id() {
                    out.push(Send {
                        to: from,
                        msg: Msg::ErrorReply {
                            req,
                            code: ErrorCode::BadRequest,
                            detail: format!("manager cannot serve tag {}", other.wire_tag()),
                        },
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------ membership

    fn on_join(
        &mut self,
        from: NodeId,
        req: RequestId,
        addr: String,
        total_space: u64,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        self.benefactors.insert(
            node,
            BenefactorInfo {
                free: total_space,
                total: total_space,
                reserved: 0,
                last_seen: now,
                online: true,
                gc_due: false,
                addr: addr.clone(),
            },
        );
        self.churn.note_online(node, now);
        // The id assignment and dial address are durable; liveness stays
        // soft state (heartbeats).
        self.log_meta(out, || MetaRecord::Benefactor {
            node,
            addr,
            total: total_space,
        });
        out.push(Send {
            to: from,
            msg: Msg::JoinOk {
                req,
                node,
                heartbeat_every: self.cfg.heartbeat_every,
            },
        });
        // A fresh donor may unblock queued replication (repairs, deferred
        // pessimistic commits) that had no viable target.
        self.pump_replication(now, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_heartbeat(
        &mut self,
        node: NodeId,
        free: u64,
        total: u64,
        addr: String,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let known = self.benefactors.contains_key(&node);
        let info = self.benefactors.entry(node).or_insert_with(|| {
            // Unknown node: accept the soft-state registration. This is the
            // normal path after a manager restart without a metadata log.
            BenefactorInfo {
                free,
                total,
                reserved: 0,
                last_seen: now,
                online: true,
                gc_due: false,
                addr: String::new(),
            }
        });
        info.free = free;
        let total_changed = info.total != total;
        info.total = total;
        info.last_seen = now;
        let addr_changed = !addr.is_empty() && info.addr != addr;
        if addr_changed {
            info.addr = addr;
        }
        let was_offline = !info.online;
        info.online = true;
        if was_offline {
            // A returning benefactor's inventory may satisfy repairs; its
            // locations come back through its next GC report.
            info.gc_due = true;
        }
        let gc_due = info.gc_due;
        if !known || was_offline {
            self.churn.note_online(node, now);
        }
        self.next_node = self.next_node.max(node.as_u64() + 1);
        if !known || addr_changed || total_changed {
            // A membership fact changed (adoption of an unknown id, a new
            // address, or a resized donation): persist it. Routine
            // heartbeats append nothing.
            let (addr, total) = {
                let b = &self.benefactors[&node];
                (b.addr.clone(), b.total)
            };
            self.log_meta(out, || MetaRecord::Benefactor { node, addr, total });
        }
        out.push(Send {
            to: node,
            msg: Msg::HeartbeatAck { node, gc_due },
        });
        if was_offline {
            // A returning donor may unblock queued replication immediately
            // instead of waiting for the next maintenance sweep.
            self.pump_replication(now, out);
        }
    }

    // ------------------------------------------------------------ allocation

    /// Selects up to `width` online benefactors with spare capacity,
    /// rotating a cursor to spread load (the paper's round-robin striping).
    pub(crate) fn select_stripe(&mut self, width: usize, exclude: &HashSet<NodeId>) -> Vec<NodeId> {
        let candidates: Vec<NodeId> = self
            .benefactors
            .iter()
            .filter(|(id, b)| {
                b.online
                    && !exclude.contains(id)
                    && b.free.saturating_sub(b.reserved) >= self.cfg.chunk_size as u64
            })
            .map(|(id, _)| *id)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let take = width.min(candidates.len());
        let start = self.rr_cursor % candidates.len();
        self.rr_cursor = self.rr_cursor.wrapping_add(take);
        (0..take)
            .map(|i| candidates[(start + i) % candidates.len()])
            .collect()
    }

    pub(crate) fn reserve_on(
        reservation: &mut Reservation,
        benefactors: &mut BTreeMap<NodeId, BenefactorInfo>,
        chunk_size: u32,
        chunks: u64,
    ) {
        if reservation.stripe.is_empty() {
            return;
        }
        let per_node = chunks.div_ceil(reservation.stripe.len() as u64) * chunk_size as u64;
        for node in &reservation.stripe {
            if let Some(b) = benefactors.get_mut(node) {
                b.reserved += per_node;
            }
            *reservation.reserved_on.entry(*node).or_insert(0) += per_node;
        }
    }

    pub(crate) fn release_reservation(&mut self, res: &Reservation) {
        for (node, amount) in &res.reserved_on {
            if let Some(b) = self.benefactors.get_mut(node) {
                b.reserved = b.reserved.saturating_sub(*amount);
            }
        }
    }

    // ------------------------------------------------------------ reads

    fn file_view(
        &self,
        path: &str,
        version: Option<VersionId>,
    ) -> Result<FileVersionView, ErrorCode> {
        let file = self.files.get(path).ok_or(ErrorCode::NotFound)?;
        let record = match version {
            None => file.versions.last().ok_or(ErrorCode::NotFound)?,
            Some(v) => file
                .versions
                .iter()
                .find(|r| r.version == v)
                .ok_or(ErrorCode::NotFound)?,
        };
        let mut locations: Vec<(ChunkId, Vec<NodeId>)> = record
            .map
            .distinct_chunks()
            .into_iter()
            .map(|id| {
                let locs = self
                    .chunks
                    .get(&id)
                    .map(|m| {
                        m.locations
                            .iter()
                            .filter(|n| self.benefactors.get(n).map(|b| b.online).unwrap_or(false))
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default();
                (id, locs)
            })
            .collect();
        locations.sort_by_key(|a| a.0);
        Ok(FileVersionView {
            version: record.version,
            map: record.map.clone(),
            locations,
        })
    }

    fn on_get_file(
        &mut self,
        from: NodeId,
        req: RequestId,
        path: &str,
        version: Option<VersionId>,
        out: &mut ActionQueue,
    ) {
        match self.file_view(path, version) {
            Ok(view) => out.push(Send {
                to: from,
                msg: Msg::FileViewReply { req, view },
            }),
            Err(code) => out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code,
                    detail: format!("{path}: no such file or version"),
                },
            }),
        }
    }

    fn attr_of(&self, file: &FileState) -> FileAttr {
        match file.versions.last() {
            Some(v) => FileAttr {
                size: v.map.file_size(),
                versions: file.versions.len() as u32,
                latest: v.version,
                mtime: v.mtime,
                is_dir: false,
            },
            None => FileAttr {
                size: 0,
                versions: 0,
                latest: VersionId(0),
                mtime: Time::ZERO,
                is_dir: false,
            },
        }
    }

    fn is_dir(&self, path: &str) -> bool {
        if path == "/" || self.dirs.contains_key(path) {
            return true;
        }
        let prefix = format!("{}/", path.trim_end_matches('/'));
        self.files.keys().any(|p| p.starts_with(&prefix))
            || self.dirs.keys().any(|d| d.starts_with(&prefix))
    }

    fn on_get_attr(&mut self, from: NodeId, req: RequestId, path: &str, out: &mut ActionQueue) {
        let path = normalize(path);
        if let Some(file) = self.files.get(&path) {
            if !file.versions.is_empty() {
                let attr = self.attr_of(file);
                out.push(Send {
                    to: from,
                    msg: Msg::AttrReply { req, attr },
                });
                return;
            }
        }
        if self.is_dir(&path) {
            out.push(Send {
                to: from,
                msg: Msg::AttrReply {
                    req,
                    attr: FileAttr {
                        size: 0,
                        versions: 0,
                        latest: VersionId(0),
                        mtime: Time::ZERO,
                        is_dir: true,
                    },
                },
            });
            return;
        }
        out.push(Send {
            to: from,
            msg: Msg::ErrorReply {
                req,
                code: ErrorCode::NotFound,
                detail: format!("{path}: no such path"),
            },
        });
    }

    fn on_list_dir(&mut self, from: NodeId, req: RequestId, path: &str, out: &mut ActionQueue) {
        let dir = normalize(path);
        if !self.is_dir(&dir) {
            out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("{dir}: not a directory"),
                },
            });
            return;
        }
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        let mut entries: BTreeMap<String, DirEntry> = BTreeMap::new();
        for (p, f) in &self.files {
            if f.versions.is_empty() {
                continue;
            }
            if let Some(rest) = p.strip_prefix(&prefix) {
                if rest.is_empty() {
                    continue;
                }
                match rest.split_once('/') {
                    None => {
                        entries.insert(
                            rest.to_string(),
                            DirEntry {
                                name: rest.to_string(),
                                attr: self.attr_of(f),
                            },
                        );
                    }
                    Some((child_dir, _)) => {
                        entries.entry(child_dir.to_string()).or_insert(DirEntry {
                            name: child_dir.to_string(),
                            attr: FileAttr {
                                size: 0,
                                versions: 0,
                                latest: VersionId(0),
                                mtime: Time::ZERO,
                                is_dir: true,
                            },
                        });
                    }
                }
            }
        }
        for d in self.dirs.keys() {
            if let Some(rest) = d.strip_prefix(&prefix) {
                if rest.is_empty() {
                    continue;
                }
                let child = rest.split('/').next().expect("non-empty").to_string();
                entries.entry(child.clone()).or_insert(DirEntry {
                    name: child,
                    attr: FileAttr {
                        size: 0,
                        versions: 0,
                        latest: VersionId(0),
                        mtime: Time::ZERO,
                        is_dir: true,
                    },
                });
            }
        }
        out.push(Send {
            to: from,
            msg: Msg::DirListingReply {
                req,
                entries: entries.into_values().collect(),
            },
        });
    }

    fn on_list_versions(
        &mut self,
        from: NodeId,
        req: RequestId,
        path: &str,
        out: &mut ActionQueue,
    ) {
        let path = normalize(path);
        match self.files.get(&path) {
            Some(f) if !f.versions.is_empty() => {
                let versions = f
                    .versions
                    .iter()
                    .map(|v| VersionInfo {
                        version: v.version,
                        size: v.map.file_size(),
                        mtime: v.mtime,
                    })
                    .collect();
                out.push(Send {
                    to: from,
                    msg: Msg::VersionListReply { req, versions },
                });
            }
            _ => out.push(Send {
                to: from,
                msg: Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("{path}: no such file"),
                },
            }),
        }
    }

    /// Invariant checks used by tests and the simulator's self-audit:
    /// chunk refcounts equal the number of version references; no committed
    /// chunk lost its metadata; reservations only reserve on known nodes.
    pub fn check_invariants(&self) {
        let mut expected: HashMap<ChunkId, u32> = HashMap::new();
        for f in self.files.values() {
            for v in &f.versions {
                for id in v.map.distinct_chunks() {
                    *expected.entry(id).or_insert(0) += 1;
                }
            }
        }
        for (id, count) in &expected {
            let meta = self
                .chunks
                .get(id)
                .unwrap_or_else(|| panic!("committed chunk {id} missing metadata"));
            assert_eq!(
                meta.refcount, *count,
                "refcount mismatch for {id}: {} vs expected {count}",
                meta.refcount
            );
        }
        for (id, meta) in &self.chunks {
            assert_eq!(
                meta.refcount,
                expected.get(id).copied().unwrap_or(0),
                "orphan chunk {id} holds refcount"
            );
            // Negotiation pins are the only way a refcount-zero chunk may
            // outlive its last version; an unpinned zero is a GC leak.
            assert!(
                meta.refcount > 0 || meta.pins > 0,
                "chunk {id} lingers with no references and no pins"
            );
            let mut sorted = meta.locations.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                meta.locations.len(),
                "duplicate locations for {id}"
            );
        }
        for r in self.reservations.values() {
            for node in r.reserved_on.keys() {
                assert!(
                    self.benefactors.contains_key(node),
                    "reservation on unknown node {node}"
                );
            }
        }
    }

    // ------------------------------------------------------ legacy shims

    fn take_sends(&mut self) -> Vec<Send> {
        self.actions
            .drain()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some(Send { to, msg }),
                // The Vec<Send> shims are driver-less; WAL records have no
                // log to land in and are dropped (real drivers dispatch on
                // the unified Action enum and persist them).
                Action::MetaAppend { .. } => None,
                other => unreachable!("manager never emits {other:?}"),
            })
            .collect()
    }

    /// Compatibility shim over [`Node::handle`]: processes one message and
    /// drains the resulting sends.
    pub fn handle_msg(&mut self, from: NodeId, msg: Msg, now: Time) -> Vec<Send> {
        Node::handle(self, from, msg, now);
        self.take_sends()
    }

    /// Compatibility shim over [`Node::handle_timeout`]: runs maintenance
    /// and drains the resulting sends.
    pub fn tick(&mut self, now: Time) -> Vec<Send> {
        Node::handle_timeout(self, now);
        self.take_sends()
    }
}

impl Node for Manager {
    fn handle(&mut self, from: NodeId, msg: Msg, now: Time) {
        // Detach the queue so handlers can push while borrowing `self`;
        // steady-state this is pointer swaps, not allocation.
        let mut out = std::mem::take(&mut self.actions);
        self.process_msg(from, msg, now, &mut out);
        self.actions = out;
    }

    fn handle_timeout(&mut self, now: Time) {
        let mut out = std::mem::take(&mut self.actions);
        self.process_timeout(now, &mut out);
        self.actions = out;
    }

    fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop()
    }

    fn poll_timeout(&self) -> Option<Time> {
        // Periodic sweeps.
        let mut next = Some(
            (self.last_policy_sweep + self.cfg.policy_sweep_every)
                .min(self.last_gc_mark + self.cfg.gc_every),
        );
        // Earliest benefactor-liveness expiry.
        for b in self.benefactors.values().filter(|b| b.online) {
            next = earliest(next, Some(b.last_seen + self.cfg.benefactor_timeout));
        }
        // Earliest reservation expiry.
        for r in self.reservations.values() {
            next = earliest(next, Some(r.expires));
        }
        // Throttled repair work waiting on token refill.
        if !self.repl_queue.is_empty() {
            next = earliest(next, self.next_repair_at);
        }
        next
    }
}

/// Normalizes a path: ensures a leading `/`, strips a trailing `/`.
pub(crate) fn normalize(path: &str) -> String {
    let mut p = if path.starts_with('/') {
        path.to_string()
    } else {
        format!("/{path}")
    };
    while p.len() > 1 && p.ends_with('/') {
        p.pop();
    }
    p
}

/// Parent directory of a normalized path (`/a/b` → `/a`, `/x` → `/`).
pub(crate) fn parent(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

#[cfg(test)]
mod tests;
