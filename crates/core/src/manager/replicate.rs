//! Background replication: shadow chunk-maps executed by source benefactors.
//!
//! The manager selects replica targets the same way it selects write stripes
//! (paper §IV.A "data replication"), sends copy orders to a benefactor that
//! already holds the chunk, and commits the new locations when the copies
//! are reported done. Creation of new files has priority over replication —
//! enforced here by bounding concurrent jobs, and at the data plane by the
//! `background` flag on replication `PutChunk`s (lower network priority).

use std::collections::HashSet;

use stdchk_proto::ids::{ChunkId, NodeId};
use stdchk_proto::msg::{Msg, ReplicaCopy};
use stdchk_util::rate::TokenBucket;
use stdchk_util::{Dur, Time};

use super::{Manager, ReplJob, ReplTask, Send};
use crate::node::ActionQueue;

impl Manager {
    pub(crate) fn online_locations(&self, locations: &[NodeId]) -> usize {
        locations
            .iter()
            .filter(|n| self.benefactors.get(n).map(|b| b.online).unwrap_or(false))
            .count()
    }

    /// Queues a chunk for replication (idempotent per queue pass).
    pub(crate) fn enqueue_replication(&mut self, chunk: ChunkId) {
        if self.repl_queue.iter().any(|t| t.chunk == chunk) {
            return;
        }
        if self
            .repl_jobs
            .values()
            .any(|j| j.copies.iter().any(|(c, _)| *c == chunk))
        {
            return;
        }
        self.repl_queue.push_back(ReplTask { chunk, attempts: 0 });
    }

    /// Re-queues a chunk whose in-flight job died (source expiry), keeping
    /// its attempt count so source rotation makes progress.
    pub(crate) fn requeue_replication(&mut self, chunk: ChunkId, attempts: u32) {
        self.repl_queue.retain(|t| t.chunk != chunk);
        if self
            .repl_jobs
            .values()
            .any(|j| j.copies.iter().any(|(c, _)| *c == chunk))
        {
            return;
        }
        self.repl_queue.push_back(ReplTask { chunk, attempts });
    }

    /// Dispatches queued replication tasks into jobs, respecting the
    /// concurrency bound. With the repair scheduler on (the default) the
    /// queue is drained in priority order under token-bucket budgets;
    /// `STDCHK_REPAIR_SCHED=off` style configs fall back to unthrottled
    /// FIFO dispatch.
    pub(crate) fn pump_replication(&mut self, now: Time, out: &mut ActionQueue) {
        if self.cfg.repair_scheduler {
            self.pump_scheduled(now, out);
        } else {
            self.pump_fifo(out);
        }
    }

    /// Pre-scheduler dispatch: FIFO order, no pacing.
    fn pump_fifo(&mut self, out: &mut ActionQueue) {
        while self.repl_jobs.len() < self.cfg.max_replication_jobs && !self.repl_queue.is_empty() {
            // Build one job: pick the first actionable task, then batch more
            // tasks that share its source.
            let mut job_source: Option<NodeId> = None;
            let mut copies: Vec<(ChunkId, NodeId)> = Vec::new();
            let mut attempts: std::collections::HashMap<ChunkId, u32> = Default::default();
            let mut skipped: Vec<ReplTask> = Vec::new();
            while let Some(task) = self.repl_queue.pop_front() {
                match self.plan_task(&task, job_source) {
                    Plan::Copy { source, target } => {
                        job_source = Some(source);
                        copies.push((task.chunk, target));
                        attempts.insert(task.chunk, task.attempts);
                        if copies.len() >= self.cfg.replication_batch {
                            break;
                        }
                    }
                    Plan::Defer => skipped.push(task),
                    Plan::Drop => {
                        // Unrecoverable (no source or no possible target):
                        // unblock any pessimistic commit waiting on it.
                        self.resolve_waiting_chunk(task.chunk, out);
                    }
                }
            }
            for t in skipped {
                self.repl_queue.push_back(t);
            }
            let Some(source) = job_source else { break };
            let job = self.next_job;
            self.next_job += 1;
            self.stats.replication_copies += copies.len() as u64;
            self.repl_jobs.insert(
                job,
                ReplJob {
                    source,
                    copies: copies.clone(),
                    attempts,
                },
            );
            out.push(Send {
                to: source,
                msg: Msg::ReplicateCmd {
                    job,
                    copies: copies
                        .into_iter()
                        .map(|(chunk, target)| ReplicaCopy { chunk, target })
                        .collect(),
                },
            });
        }
    }

    /// Prioritized, rate-limited dispatch: fewest-live-replicas chunks go
    /// first (newest checkpoint version breaking ties), and every copy is
    /// charged against a fleet-wide bucket plus a per-source bucket so a
    /// rebuild storm never saturates donors that are also serving ingest.
    /// Throttled work stays queued and [`Manager::poll_timeout`] wakes the
    /// driver when tokens accrue.
    fn pump_scheduled(&mut self, now: Time, out: &mut ActionQueue) {
        self.next_repair_at = None;
        self.prioritize_repair_queue();
        let mut fleet_blocked = false;
        while self.repl_jobs.len() < self.cfg.max_replication_jobs
            && !self.repl_queue.is_empty()
            && !fleet_blocked
        {
            let mut job_source: Option<NodeId> = None;
            let mut copies: Vec<(ChunkId, NodeId)> = Vec::new();
            let mut attempts: std::collections::HashMap<ChunkId, u32> = Default::default();
            let mut skipped: Vec<ReplTask> = Vec::new();
            while let Some(task) = self.repl_queue.pop_front() {
                match self.plan_task(&task, job_source) {
                    Plan::Copy { source, target } => {
                        let size = self
                            .chunks
                            .get(&task.chunk)
                            .map(|m| m.size as f64)
                            .unwrap_or(0.0);
                        match self.charge_repair(source, size, now) {
                            Charge::Ok => {
                                job_source = Some(source);
                                copies.push((task.chunk, target));
                                attempts.insert(task.chunk, task.attempts);
                                if copies.len() >= self.cfg.replication_batch {
                                    break;
                                }
                            }
                            Charge::SourceBusy => skipped.push(task),
                            Charge::FleetExhausted => {
                                skipped.push(task);
                                fleet_blocked = true;
                                break;
                            }
                        }
                    }
                    Plan::Defer => skipped.push(task),
                    Plan::Drop => self.resolve_waiting_chunk(task.chunk, out),
                }
            }
            for t in skipped {
                self.repl_queue.push_back(t);
            }
            let Some(source) = job_source else {
                if fleet_blocked {
                    continue; // flush loop state; outer condition exits
                }
                break;
            };
            let job = self.next_job;
            self.next_job += 1;
            self.stats.replication_copies += copies.len() as u64;
            self.repl_jobs.insert(
                job,
                ReplJob {
                    source,
                    copies: copies.clone(),
                    attempts,
                },
            );
            out.push(Send {
                to: source,
                msg: Msg::ReplicateCmd {
                    job,
                    copies: copies
                        .into_iter()
                        .map(|(chunk, target)| ReplicaCopy { chunk, target })
                        .collect(),
                },
            });
        }
    }

    /// Sorts the repair queue by urgency: fewest live replicas first, then
    /// newest referencing version (recent checkpoints are the ones restarts
    /// read). Pruned chunks sink to the back; `plan_task` drops them.
    fn prioritize_repair_queue(&mut self) {
        let mut tasks: Vec<ReplTask> = std::mem::take(&mut self.repl_queue).into();
        tasks.sort_by_key(|t| match self.chunks.get(&t.chunk) {
            Some(meta) => (
                self.online_locations(&meta.locations),
                std::cmp::Reverse(meta.last_version),
            ),
            None => (usize::MAX, std::cmp::Reverse(0)),
        });
        self.repl_queue = tasks.into();
    }

    /// Charges one copy of `size` bytes against the fleet and per-source
    /// budgets, recording the earliest refill time when throttled.
    fn charge_repair(&mut self, source: NodeId, size: f64, now: Time) -> Charge {
        if size <= 0.0 {
            return Charge::Ok;
        }
        if let Some(fleet) = self.repair_fleet.as_mut() {
            let wait = fleet.time_until(size, now);
            if wait > Dur::ZERO {
                let at = now + wait;
                self.next_repair_at = Some(self.next_repair_at.map_or(at, |c| c.min(at)));
                return Charge::FleetExhausted;
            }
        }
        if self.cfg.repair_rate_source > 0 {
            let rate = self.cfg.repair_rate_source as f64;
            let burst = self.cfg.repair_burst.max(1) as f64;
            let bucket = self
                .repair_sources
                .entry(source)
                .or_insert_with(|| TokenBucket::new(rate, burst));
            let wait = bucket.time_until(size, now);
            if wait > Dur::ZERO {
                let at = now + wait;
                self.next_repair_at = Some(self.next_repair_at.map_or(at, |c| c.min(at)));
                return Charge::SourceBusy;
            }
            bucket.try_take(size, now);
        }
        if let Some(fleet) = self.repair_fleet.as_mut() {
            fleet.try_take(size, now);
        }
        Charge::Ok
    }

    fn plan_task(&mut self, task: &ReplTask, required_source: Option<NodeId>) -> Plan {
        let Some(meta) = self.chunks.get(&task.chunk) else {
            return Plan::Drop; // chunk was pruned meanwhile
        };
        if meta.refcount == 0 {
            return Plan::Drop;
        }
        let online: Vec<NodeId> = meta
            .locations
            .iter()
            .filter(|n| self.benefactors.get(n).map(|b| b.online).unwrap_or(false))
            .copied()
            .collect();
        if online.is_empty() {
            return Plan::Drop; // data loss; read path will surface it
        }
        let effective_target = (meta.target as usize).min(self.online_benefactors());
        if online.len() >= effective_target {
            return Plan::Drop; // replication already satisfied
        }
        let source = match required_source {
            Some(s) if online.contains(&s) => s,
            Some(_) => return Plan::Defer, // batch only same-source copies
            None => online[task.attempts as usize % online.len()],
        };
        let holders: HashSet<NodeId> = meta.locations.iter().copied().collect();
        let candidates = self.select_stripe(1, &holders);
        let Some(target) = candidates.first().copied() else {
            return Plan::Drop;
        };
        Plan::Copy { source, target }
    }

    pub(super) fn on_replicate_report(
        &mut self,
        job: u64,
        _node: NodeId,
        done: Vec<ReplicaCopy>,
        failed: Vec<ReplicaCopy>,
        now: Time,
        out: &mut ActionQueue,
    ) {
        let Some(job_state) = self.repl_jobs.remove(&job) else {
            return; // stale or duplicate report
        };
        for c in done {
            if let Some(meta) = self.chunks.get_mut(&c.chunk) {
                if !meta.locations.contains(&c.target) {
                    meta.locations.push(c.target);
                }
            }
            self.resolve_waiting_chunk(c.chunk, out);
            // Still under target (e.g. target 3, one copy done)? Re-queue.
            if let Some(meta) = self.chunks.get(&c.chunk) {
                let effective = (meta.target as usize).min(self.online_benefactors());
                if self.online_locations(&meta.locations) < effective {
                    self.enqueue_replication(c.chunk);
                }
            }
        }
        for c in failed {
            let attempts = 1 + job_state.attempts.get(&c.chunk).copied().unwrap_or(0);
            if attempts <= self.cfg.replication_retries {
                self.repl_queue.retain(|t| t.chunk != c.chunk);
                self.repl_queue.push_back(ReplTask {
                    chunk: c.chunk,
                    attempts,
                });
            } else {
                self.resolve_waiting_chunk(c.chunk, out);
            }
        }
        self.pump_replication(now, out);
    }

    /// Marks `chunk` as no longer blocking pessimistic commits if its
    /// replication state is final (satisfied or unrecoverable), emitting any
    /// newly unblocked `CommitOk`s.
    pub(crate) fn resolve_waiting_chunk(&mut self, chunk: ChunkId, out: &mut ActionQueue) {
        let satisfied_or_dead = match self.chunks.get(&chunk) {
            None => true,
            Some(meta) => {
                let effective = (meta.target as usize).min(self.online_benefactors().max(1));
                self.online_locations(&meta.locations) >= effective
                    || self.online_locations(&meta.locations) == 0
            }
        };
        if !satisfied_or_dead {
            return;
        }
        let mut resolved = Vec::new();
        for (i, pc) in self.pending_commits.iter_mut().enumerate() {
            pc.waiting.remove(&chunk);
            if pc.waiting.is_empty() {
                resolved.push(i);
            }
        }
        for i in resolved.into_iter().rev() {
            let pc = self.pending_commits.remove(i);
            out.push(Send {
                to: pc.client,
                msg: Msg::CommitOk {
                    req: pc.req,
                    file: pc.file,
                    version: pc.version,
                    suggested_interval: pc.suggested_interval,
                },
            });
        }
    }
}

enum Plan {
    Copy { source: NodeId, target: NodeId },
    Defer,
    Drop,
}

/// Outcome of charging one repair copy against the rate budgets.
enum Charge {
    /// Tokens taken; the copy may dispatch now.
    Ok,
    /// The source benefactor's budget is exhausted; try another source.
    SourceBusy,
    /// The fleet-wide budget is exhausted; stop dispatching entirely.
    FleetExhausted,
}
