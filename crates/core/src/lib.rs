//! The stdchk protocol core: sans-IO state machines for every node role.
//!
//! This crate implements the paper's contribution — the checkpoint-optimized
//! storage system — as pure, deterministic state machines:
//!
//! - [`Manager`]: the centralized metadata manager. Soft-state benefactor
//!   registration, stripe allocation with eager space reservations,
//!   versioned namespace with copy-on-write chunk sharing and reference
//!   counting, background replication via shadow chunk-maps, pull-based
//!   garbage collection, automated retention policies, and ⅔-concurrence
//!   recovery from manager failure.
//! - [`Benefactor`]: a storage donor. Stores content-addressed chunks
//!   (verifying hashes end-to-end), heartbeats free space, executes
//!   replication copy orders, reports inventory for garbage collection, and
//!   stashes client chunk-maps for manager recovery.
//! - [`WriteSession`] / [`ReadSession`]: the client proxy data path. Three
//!   write protocols (complete local write, incremental write, sliding
//!   window), round-robin striping, optional incremental-checkpointing dedup
//!   (FsCH), optimistic/pessimistic write semantics, and a read path with
//!   read-ahead and replica failover.
//!
//! **Sans-IO, one API**: no state machine touches a socket, disk, clock, or
//! thread, and all four implement the poll-based [`Node`] trait — inputs
//! arrive through [`Node::handle`] (messages), [`Node::handle_completion`]
//! (finished driver I/O) and [`Node::handle_timeout`] (deadlines from
//! [`Node::poll_timeout`]); outputs are drained from a shared per-node
//! [`ActionQueue`] as the unified [`Action`] enum. Two generic drivers embed
//! these machines unchanged: `stdchk-net` (threads + TCP + real disks) and
//! `stdchk-sim` (a discrete-event simulator with virtual time used to
//! reproduce the paper's evaluation).
//!
//! # Example: driving a manager through the `Node` API
//!
//! ```
//! use stdchk_core::{Action, Manager, Node, PoolConfig};
//! use stdchk_proto::{Msg, NodeId, RequestId};
//! use stdchk_util::Time;
//!
//! let mut mgr = Manager::new(PoolConfig::default());
//! let now = Time::ZERO;
//! // A benefactor joins the pool.
//! mgr.handle(
//!     NodeId(0),
//!     Msg::JoinRequest { req: RequestId(1), addr: String::new(), total_space: 1 << 30 },
//!     now,
//! );
//! // Drain the resulting effects: one JoinOk to transmit.
//! match mgr.poll_action() {
//!     Some(Action::Send { msg: Msg::JoinOk { .. }, .. }) => {}
//!     other => panic!("unexpected {other:?}"),
//! }
//! assert!(mgr.poll_action().is_none());
//! // And the next maintenance deadline is advertised for the driver.
//! assert!(mgr.poll_timeout().is_some());
//! ```

#![forbid(unsafe_code)]

pub mod benefactor;
pub mod config;
pub mod manager;
pub mod node;
pub mod payload;
pub mod session;

pub use benefactor::{Benefactor, BenefactorAction, BenefactorConfig};
pub use config::PoolConfig;
pub use manager::{DedupTotals, Manager, ManagerStats, Send};
pub use node::{Action, ActionQueue, Completion, Node};
pub use payload::{ChunkAssembler, Payload};
pub use session::read::{ReadAction, ReadSession};
pub use session::write::{
    OpenGrant, SessionConfig, WriteAction, WriteProtocol, WriteSession, WriteStats,
};

/// The reserved node id of the metadata manager.
///
/// Benefactors and clients address the manager as node 0; real node ids
/// assigned by the manager start at 1.
pub const MANAGER_NODE: stdchk_proto::NodeId = stdchk_proto::NodeId(0);
