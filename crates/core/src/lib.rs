//! The stdchk protocol core: sans-IO state machines for every node role.
//!
//! This crate implements the paper's contribution — the checkpoint-optimized
//! storage system — as pure, deterministic state machines:
//!
//! - [`Manager`]: the centralized metadata manager. Soft-state benefactor
//!   registration, stripe allocation with eager space reservations,
//!   versioned namespace with copy-on-write chunk sharing and reference
//!   counting, background replication via shadow chunk-maps, pull-based
//!   garbage collection, automated retention policies, and ⅔-concurrence
//!   recovery from manager failure.
//! - [`Benefactor`]: a storage donor. Stores content-addressed chunks
//!   (verifying hashes end-to-end), heartbeats free space, executes
//!   replication copy orders, reports inventory for garbage collection, and
//!   stashes client chunk-maps for manager recovery.
//! - [`WriteSession`] / [`ReadSession`]: the client proxy data path. Three
//!   write protocols (complete local write, incremental write, sliding
//!   window), round-robin striping, optional incremental-checkpointing dedup
//!   (FsCH), optimistic/pessimistic write semantics, and a read path with
//!   read-ahead and replica failover.
//!
//! **Sans-IO**: no state machine touches a socket, disk, clock, or thread.
//! Inputs are protocol messages, completions, and explicit `now` timestamps;
//! outputs are action lists (send message X to node Y, store/load bytes,
//! stage bytes locally). Two drivers embed these machines unchanged:
//! `stdchk-net` (threads + TCP + real disks) and `stdchk-sim` (a
//! discrete-event simulator with virtual time used to reproduce the paper's
//! evaluation).
//!
//! # Example: driving a manager by hand
//!
//! ```
//! use stdchk_core::{Manager, PoolConfig};
//! use stdchk_proto::{Msg, NodeId, RequestId};
//! use stdchk_util::Time;
//!
//! let mut mgr = Manager::new(PoolConfig::default());
//! let now = Time::ZERO;
//! // A benefactor joins the pool.
//! let out = mgr.handle_msg(
//!     NodeId(0),
//!     Msg::JoinRequest { req: RequestId(1), addr: String::new(), total_space: 1 << 30 },
//!     now,
//! );
//! assert!(matches!(out[0].msg, Msg::JoinOk { .. }));
//! ```

pub mod benefactor;
pub mod config;
pub mod manager;
pub mod payload;
pub mod session;

pub use benefactor::{Benefactor, BenefactorAction, BenefactorConfig};
pub use config::PoolConfig;
pub use manager::{Manager, ManagerStats, Send};
pub use payload::{ChunkAssembler, Payload};
pub use session::read::{ReadAction, ReadSession};
pub use session::write::{
    OpenGrant, SessionConfig, WriteAction, WriteProtocol, WriteSession, WriteStats,
};

/// The reserved node id of the metadata manager.
///
/// Benefactors and clients address the manager as node 0; real node ids
/// assigned by the manager start at 1.
pub const MANAGER_NODE: stdchk_proto::NodeId = stdchk_proto::NodeId(0);
