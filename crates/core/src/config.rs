//! Pool-wide configuration.

use stdchk_util::Dur;

/// Configuration of a stdchk storage pool, held by the manager and echoed to
/// clients at session-open time.
///
/// Defaults follow the paper's prototype: 1 MiB chunks ("remote storage is
/// more efficiently accessed in data chunks of the order of a megabyte"),
/// soft-state registration with heartbeats, lazy pull-based GC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Fixed chunk size for striping and content addressing.
    pub chunk_size: u32,
    /// Default stripe width for new write sessions.
    pub default_stripe_width: u32,
    /// Default replica target (1 = no replication).
    pub default_replication: u32,
    /// How often benefactors heartbeat.
    pub heartbeat_every: Dur,
    /// Silence after which a benefactor is declared offline.
    pub benefactor_timeout: Dur,
    /// Lifetime of an eager space reservation without activity.
    pub reservation_ttl: Dur,
    /// How often the manager asks benefactors for GC reports.
    pub gc_every: Dur,
    /// How often retention policies are enforced.
    pub policy_sweep_every: Dur,
    /// Maximum concurrently outstanding replication jobs.
    pub max_replication_jobs: usize,
    /// Maximum copy orders batched into one replication job.
    pub replication_batch: usize,
    /// Per-copy retry budget for failed replication transfers.
    pub replication_retries: u32,
    /// Adapt per-file replication targets to observed churn (bounded by
    /// [`repl_min`](Self::repl_min)/[`repl_max`](Self::repl_max) or a
    /// directory's `SetPolicy` bounds). Off by default: targets then stay
    /// whatever the writer requested.
    pub adaptive_replication: bool,
    /// Floor for adaptive replication targets.
    pub repl_min: u32,
    /// Ceiling for adaptive replication targets.
    pub repl_max: u32,
    /// Durability goal for adaptive targets, in parts-per-million: the
    /// smallest target `r` with `1 - (1 - availability)^r` at or above this
    /// is chosen.
    pub target_durability_ppm: u32,
    /// Sliding window over which fleet departure rate is measured.
    pub churn_window: Dur,
    /// Prioritize and rate-limit repair traffic. When off, replication is
    /// pumped unthrottled in FIFO order (the pre-scheduler behaviour).
    pub repair_scheduler: bool,
    /// Repair read budget per source benefactor, bytes/sec (0 = unlimited).
    pub repair_rate_source: u64,
    /// Fleet-wide repair budget, bytes/sec (0 = unlimited).
    pub repair_rate_fleet: u64,
    /// Token-bucket burst capacity for the repair budgets, bytes.
    pub repair_burst: u64,
    /// Floor for suggested checkpoint intervals returned on commit.
    pub guidance_min: Dur,
    /// Ceiling for suggested checkpoint intervals returned on commit.
    pub guidance_max: Dur,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            chunk_size: 1 << 20,
            default_stripe_width: 4,
            default_replication: 1,
            heartbeat_every: Dur::from_secs(5),
            benefactor_timeout: Dur::from_secs(15),
            reservation_ttl: Dur::from_secs(300),
            gc_every: Dur::from_secs(60),
            policy_sweep_every: Dur::from_secs(10),
            max_replication_jobs: 8,
            replication_batch: 64,
            replication_retries: 3,
            adaptive_replication: false,
            repl_min: 1,
            repl_max: 4,
            target_durability_ppm: 999_000,
            churn_window: Dur::from_secs(600),
            repair_scheduler: true,
            repair_rate_source: 25 << 20,
            repair_rate_fleet: 100 << 20,
            repair_burst: 16 << 20,
            guidance_min: Dur::from_secs(30),
            guidance_max: Dur::from_secs(3600),
        }
    }
}

impl PoolConfig {
    /// A configuration with tight timers for unit tests (seconds-scale
    /// waits shrink to milliseconds).
    pub fn fast_for_tests() -> PoolConfig {
        PoolConfig {
            chunk_size: 1 << 16,
            heartbeat_every: Dur::from_millis(50),
            benefactor_timeout: Dur::from_millis(150),
            reservation_ttl: Dur::from_millis(500),
            gc_every: Dur::from_millis(200),
            policy_sweep_every: Dur::from_millis(100),
            churn_window: Dur::from_secs(10),
            guidance_min: Dur::from_millis(100),
            ..PoolConfig::default()
        }
    }

    /// Applies process-environment overrides. `STDCHK_REPAIR_SCHED=off`
    /// reverts to unthrottled FIFO repair — the A/B baseline the churn
    /// bench compares against.
    pub fn apply_env(mut self) -> PoolConfig {
        if std::env::var("STDCHK_REPAIR_SCHED").as_deref() == Ok("off") {
            self.repair_scheduler = false;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_like() {
        let c = PoolConfig::default();
        assert_eq!(c.chunk_size, 1 << 20);
        assert!(c.benefactor_timeout > c.heartbeat_every);
    }
}
