//! Pool-wide configuration.

use stdchk_util::Dur;

/// Configuration of a stdchk storage pool, held by the manager and echoed to
/// clients at session-open time.
///
/// Defaults follow the paper's prototype: 1 MiB chunks ("remote storage is
/// more efficiently accessed in data chunks of the order of a megabyte"),
/// soft-state registration with heartbeats, lazy pull-based GC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Fixed chunk size for striping and content addressing.
    pub chunk_size: u32,
    /// Default stripe width for new write sessions.
    pub default_stripe_width: u32,
    /// Default replica target (1 = no replication).
    pub default_replication: u32,
    /// How often benefactors heartbeat.
    pub heartbeat_every: Dur,
    /// Silence after which a benefactor is declared offline.
    pub benefactor_timeout: Dur,
    /// Lifetime of an eager space reservation without activity.
    pub reservation_ttl: Dur,
    /// How often the manager asks benefactors for GC reports.
    pub gc_every: Dur,
    /// How often retention policies are enforced.
    pub policy_sweep_every: Dur,
    /// Maximum concurrently outstanding replication jobs.
    pub max_replication_jobs: usize,
    /// Maximum copy orders batched into one replication job.
    pub replication_batch: usize,
    /// Per-copy retry budget for failed replication transfers.
    pub replication_retries: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            chunk_size: 1 << 20,
            default_stripe_width: 4,
            default_replication: 1,
            heartbeat_every: Dur::from_secs(5),
            benefactor_timeout: Dur::from_secs(15),
            reservation_ttl: Dur::from_secs(300),
            gc_every: Dur::from_secs(60),
            policy_sweep_every: Dur::from_secs(10),
            max_replication_jobs: 8,
            replication_batch: 64,
            replication_retries: 3,
        }
    }
}

impl PoolConfig {
    /// A configuration with tight timers for unit tests (seconds-scale
    /// waits shrink to milliseconds).
    pub fn fast_for_tests() -> PoolConfig {
        PoolConfig {
            chunk_size: 1 << 16,
            heartbeat_every: Dur::from_millis(50),
            benefactor_timeout: Dur::from_millis(150),
            reservation_ttl: Dur::from_millis(500),
            gc_every: Dur::from_millis(200),
            policy_sweep_every: Dur::from_millis(100),
            ..PoolConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_like() {
        let c = PoolConfig::default();
        assert_eq!(c.chunk_size, 1 << 20);
        assert!(c.benefactor_timeout > c.heartbeat_every);
    }
}
