//! The unified sans-IO node API: one trait, one action vocabulary.
//!
//! Every stdchk state machine — [`Manager`](crate::Manager),
//! [`Benefactor`](crate::Benefactor),
//! [`WriteSession`](crate::WriteSession) and
//! [`ReadSession`](crate::ReadSession) — implements [`Node`] in the style of
//! sans-IO protocol libraries (quinn-proto et al.):
//!
//! - **inputs** arrive through [`Node::handle`] (protocol messages),
//!   [`Node::handle_completion`] (finished driver I/O) and
//!   [`Node::handle_timeout`] (the deadline from [`Node::poll_timeout`]
//!   arrived);
//! - **outputs** are drained through [`Node::poll_action`], which yields
//!   [`Action`]s until the machine has nothing more to request.
//!
//! Internally each machine pushes into a shared [`ActionQueue`] instead of
//! allocating a fresh `Vec` per call, so a driver can batch: feed several
//! inputs, then drain every resulting action in one sweep. Because the
//! vocabulary is one shared [`Action`] enum, drivers are generic — the same
//! event loop runs a metadata manager, a storage donor, or a client session
//! (`stdchk-net`'s `NodeHost`, `stdchk-sim`'s cluster dispatch).
//!
//! # Driving a node
//!
//! ```text
//! loop {
//!     deliver inputs:   node.handle(..) / node.handle_completion(..)
//!     fire timers:      if now >= node.poll_timeout() { node.handle_timeout(now) }
//!     execute effects:  while let Some(a) = node.poll_action() { ... }
//!     sleep until:      node.poll_timeout()
//! }
//! ```
//!
//! Completions may be delivered from inside the drain loop (synchronous
//! drivers) or later (asynchronous drivers); the machines do not care.

use std::collections::VecDeque;

use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::Time;

use crate::payload::Payload;

/// One effect requested by a state machine. The single action vocabulary
/// shared by every node role; drivers match on this and nothing else.
#[derive(Clone, Debug)]
pub enum Action {
    /// Transmit a protocol message to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Persist chunk data (benefactor blob store). Completion:
    /// [`Completion::Stored`] with the same `op`.
    Store {
        /// Completion correlation token.
        op: u64,
        /// The chunk being stored.
        chunk: ChunkId,
        /// The data (possibly virtual).
        payload: Payload,
    },
    /// Read chunk data back (benefactor blob store). Completion:
    /// [`Completion::Loaded`].
    Load {
        /// Completion correlation token.
        op: u64,
        /// The chunk to read.
        chunk: ChunkId,
        /// Size on record; drivers without a blob store cost the read with
        /// this, drivers with one may ignore it.
        size: u32,
        /// True when the bytes go straight back out on the wire (a
        /// `GetChunkOk` reply). Drivers may then satisfy the load with a
        /// kernel-copy file region instead of materialized bytes; loads
        /// whose bytes the node consumes (replication pushes, delta bases)
        /// set this false and always get real data.
        serve: bool,
    },
    /// Remove chunk data from the backing store. No completion.
    DropChunk {
        /// The chunk to remove.
        chunk: ChunkId,
    },
    /// Append bytes to the client-local write stage (CLW/IW temp storage).
    /// Completion: [`Completion::StageAppended`].
    StageAppend {
        /// Completion correlation token.
        op: u64,
        /// Stage offset (equals the chunk's file offset).
        offset: u64,
        /// The data.
        payload: Payload,
    },
    /// Read staged bytes back for pushing. Completion:
    /// [`Completion::StageFetched`].
    StageFetch {
        /// Completion correlation token.
        op: u64,
        /// Stage offset.
        offset: u64,
        /// Length.
        len: u32,
    },
    /// The stage below `upto` is no longer needed (temp deletion). No
    /// completion.
    StageDiscard {
        /// All staged bytes before this offset may be dropped.
        upto: u64,
    },
    /// Append one record to the manager's metadata write-ahead log.
    /// Emitted only when the manager's WAL is enabled
    /// ([`Manager::enable_wal`](crate::Manager::enable_wal)). No
    /// completion, but drivers must make the record durable **before**
    /// executing any `Send` drained after it — the manager queues the
    /// append ahead of the reply it guards, so in-order execution is
    /// exactly write-ahead logging.
    MetaAppend {
        /// Mutation order, assigned under the state-machine lock (0, 1,
        /// 2, … per process). Drivers whose action execution can race
        /// across batches (multiple pumping threads) must restore this
        /// order before appending — log order must equal mutation order
        /// or replay diverges.
        seq: u64,
        /// The mutation record to persist.
        record: stdchk_proto::meta::MetaRecord,
    },
}

/// A finished driver operation, fed back through
/// [`Node::handle_completion`].
#[derive(Clone, Debug)]
pub enum Completion {
    /// An [`Action::Store`] hit stable storage.
    Stored {
        /// The store's correlation token.
        op: u64,
    },
    /// An [`Action::Load`] produced data.
    Loaded {
        /// The load's correlation token.
        op: u64,
        /// The chunk read.
        chunk: ChunkId,
        /// Its data.
        payload: Payload,
    },
    /// An [`Action::Load`] could not produce data (blob lost or corrupt on
    /// the backing medium). The node stops advertising the chunk and fails
    /// the pending request over to another replica.
    LoadFailed {
        /// The load's correlation token.
        op: u64,
        /// The chunk that could not be read.
        chunk: ChunkId,
    },
    /// An [`Action::StageAppend`] completed.
    StageAppended {
        /// The append's correlation token.
        op: u64,
    },
    /// An [`Action::StageFetch`] produced data.
    StageFetched {
        /// The fetch's correlation token.
        op: u64,
        /// The staged bytes.
        payload: Payload,
    },
    /// The transfer carrying request `req` fully left this node (socket
    /// write completed / simulated flow finished). Ends the OAB window for
    /// sliding-window writes.
    SendDone {
        /// The request id of the transmitted message.
        req: RequestId,
    },
    /// The transfer carrying request `req` failed at the transport level
    /// (connection lost, timeout). Sessions fail over to another replica or
    /// stripe member.
    SendFailed {
        /// The request id of the failed message.
        req: RequestId,
    },
}

/// The shared output queue every state machine pushes into.
///
/// One allocation for the life of the machine instead of a `Vec` per
/// handler call; drivers drain it through [`Node::poll_action`].
#[derive(Debug, Default)]
pub struct ActionQueue {
    q: VecDeque<Action>,
}

impl ActionQueue {
    /// An empty queue.
    pub fn new() -> ActionQueue {
        ActionQueue::default()
    }

    /// Enqueues an action. Accepts the unified [`Action`] or any legacy
    /// per-role action type with an `Into<Action>` conversion.
    pub fn push(&mut self, action: impl Into<Action>) {
        self.q.push_back(action.into());
    }

    /// Enqueues a [`Action::Send`].
    pub fn send(&mut self, to: NodeId, msg: Msg) {
        self.q.push_back(Action::Send { to, msg });
    }

    /// Dequeues the oldest pending action.
    pub fn pop(&mut self) -> Option<Action> {
        self.q.pop_front()
    }

    /// Pending actions.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Drains everything into a `Vec` (compatibility shims and tests).
    pub fn drain(&mut self) -> Vec<Action> {
        self.q.drain(..).collect()
    }
}

/// A poll-based sans-IO protocol node.
///
/// See the [module docs](self) for the driving contract. All methods are
/// non-blocking; time is always passed in explicitly.
pub trait Node {
    /// Processes one inbound protocol message from `from`.
    fn handle(&mut self, from: NodeId, msg: Msg, now: Time);

    /// Processes one finished driver operation. The default ignores it
    /// (machines without driver-mediated I/O, e.g. the manager).
    fn handle_completion(&mut self, completion: Completion, now: Time) {
        let _ = (completion, now);
    }

    /// Runs time-based behaviour. Drivers call this once `now` reaches
    /// [`Node::poll_timeout`]; calling early or late is harmless. The
    /// default does nothing (machines without timers).
    fn handle_timeout(&mut self, now: Time) {
        let _ = now;
    }

    /// Returns the next action to execute, or `None` when drained. Drivers
    /// should loop until `None` after every input.
    fn poll_action(&mut self) -> Option<Action>;

    /// When [`Node::handle_timeout`] next wants to run, if ever. Recompute
    /// after every input — handling a message may arm or disarm timers.
    fn poll_timeout(&self) -> Option<Time> {
        None
    }
}

/// Earliest of two optional deadlines (helper for `poll_timeout` impls).
pub(crate) fn earliest(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo() {
        let mut q = ActionQueue::new();
        q.send(NodeId(1), Msg::Ack { req: RequestId(1) });
        q.push(Action::StageDiscard { upto: 7 });
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop(), Some(Action::Send { to: NodeId(1), .. })));
        assert!(matches!(q.pop(), Some(Action::StageDiscard { upto: 7 })));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn earliest_picks_min() {
        let a = Time(5);
        let b = Time(9);
        assert_eq!(earliest(Some(a), Some(b)), Some(a));
        assert_eq!(earliest(None, Some(b)), Some(b));
        assert_eq!(earliest(None, None), None);
    }
}
