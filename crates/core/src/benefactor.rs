//! The benefactor (storage donor) state machine (paper §IV.A).
//!
//! Benefactors keep their responsibilities deliberately minimal to ease
//! integration: publish status and free space through soft-state
//! registration (heartbeats), serve chunk store/retrieve requests, execute
//! replication copy orders, and run garbage collection. They additionally
//! hold client-stashed chunk-maps so a failed manager can recover committed
//! files (the ⅔-concurrence protocol).
//!
//! Chunk *data* lives behind the driver (a real directory of files in
//! `stdchk-net`, nothing at all in the simulator); the state machine tracks
//! the authoritative index of chunk ids, sizes and store times, and emits
//! [`Action::Store`]/[`Action::Load`] for the driver to fulfil.
//!
//! The benefactor implements the unified [`Node`] API: feed it messages and
//! completions, drain [`Action`]s with `poll_action`, and schedule
//! `handle_timeout` from `poll_timeout`. The `Vec`-returning methods
//! ([`Benefactor::handle_msg`], [`Benefactor::tick`], …) are thin
//! compatibility shims kept for tests.

use std::collections::HashMap;

use stdchk_chunker::delta::delta_apply;
use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::{Msg, ReplicaCopy};
use stdchk_proto::ErrorCode;
use stdchk_util::{Dur, Time};

use crate::node::{earliest, Action, ActionQueue, Completion, Node};
use crate::payload::Payload;
use crate::MANAGER_NODE;

/// Benefactor timing/behaviour knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenefactorConfig {
    /// Heartbeat (soft-state registration refresh) period.
    pub heartbeat_every: Dur,
    /// Chunks younger than this are withheld from GC reports, protecting
    /// in-flight writes whose chunk-map has not been committed yet.
    pub gc_grace: Dur,
    /// Minimum spacing between GC reports.
    pub gc_min_interval: Dur,
    /// Replication transfer timeout (a copy with no ack in this window is
    /// reported failed).
    pub put_timeout: Dur,
    /// How often stashed commits are re-offered to the manager.
    pub reoffer_every: Dur,
    /// Stashed commits older than this are discarded.
    pub stash_ttl: Dur,
}

impl Default for BenefactorConfig {
    fn default() -> Self {
        BenefactorConfig {
            heartbeat_every: Dur::from_secs(5),
            gc_grace: Dur::from_secs(600),
            gc_min_interval: Dur::from_secs(30),
            put_timeout: Dur::from_secs(30),
            reoffer_every: Dur::from_secs(10),
            stash_ttl: Dur::from_secs(3600),
        }
    }
}

impl BenefactorConfig {
    /// Tight timers for unit tests.
    pub fn fast_for_tests() -> BenefactorConfig {
        BenefactorConfig {
            heartbeat_every: Dur::from_millis(50),
            gc_grace: Dur::from_millis(100),
            gc_min_interval: Dur::from_millis(100),
            put_timeout: Dur::from_millis(200),
            reoffer_every: Dur::from_millis(100),
            stash_ttl: Dur::from_secs(10),
        }
    }
}

/// Legacy benefactor action vocabulary, kept as a compatibility shim for
/// tests. Drivers dispatch on the unified [`Action`] enum instead.
#[derive(Clone, Debug)]
pub enum BenefactorAction {
    /// Send a protocol message.
    Send {
        /// Destination node (the manager, a client, or a peer benefactor).
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Persist chunk data; deliver [`Completion::Stored`] when done.
    Store {
        /// Completion correlation token.
        op: u64,
        /// The chunk being stored.
        chunk: ChunkId,
        /// The data (possibly virtual).
        payload: Payload,
    },
    /// Read chunk data back; deliver [`Completion::Loaded`].
    Load {
        /// Completion correlation token.
        op: u64,
        /// The chunk to read.
        chunk: ChunkId,
        /// Size on record (drivers without a blob store cost the read with
        /// this; drivers with one may ignore it).
        size: u32,
    },
    /// Remove chunk data from the backing store (no completion needed).
    Drop {
        /// The chunk to remove.
        chunk: ChunkId,
    },
}

impl From<Action> for BenefactorAction {
    fn from(a: Action) -> BenefactorAction {
        match a {
            Action::Send { to, msg } => BenefactorAction::Send { to, msg },
            Action::Store { op, chunk, payload } => BenefactorAction::Store { op, chunk, payload },
            Action::Load {
                op, chunk, size, ..
            } => BenefactorAction::Load { op, chunk, size },
            Action::DropChunk { chunk } => BenefactorAction::Drop { chunk },
            other => unreachable!("benefactor never emits {other:?}"),
        }
    }
}

#[derive(Clone, Debug)]
struct ChunkInfo {
    size: u32,
    stored_at: Time,
}

#[derive(Clone, Debug)]
struct PendingStore {
    req: RequestId,
    chunk: ChunkId,
    reply_to: NodeId,
}

#[derive(Clone, Debug)]
enum LoadPurpose {
    ServeGet {
        req: RequestId,
        to: NodeId,
    },
    ReplPush {
        job: u64,
        copy: ReplicaCopy,
    },
    /// A `DeltaPutChunk` loaded its basis chunk; apply the delta, verify
    /// the reconstruction against the target's content hash, and store it
    /// as a self-contained chunk (the read path never sees deltas).
    DeltaApply {
        req: RequestId,
        to: NodeId,
        chunk: ChunkId,
        size: u32,
        delta: bytes::Bytes,
    },
}

#[derive(Clone, Debug)]
struct JobState {
    outstanding: usize,
    done: Vec<ReplicaCopy>,
    failed: Vec<ReplicaCopy>,
}

#[derive(Clone, Debug)]
struct OutstandingPut {
    job: u64,
    copy: ReplicaCopy,
    sent_at: Time,
}

#[derive(Clone, Debug)]
struct Stash {
    path: String,
    entries: Vec<ChunkEntry>,
    placements: Vec<(ChunkId, Vec<NodeId>)>,
    stored_at: Time,
    last_offer_req: Option<RequestId>,
}

/// The benefactor state machine.
#[derive(Debug)]
pub struct Benefactor {
    id: NodeId,
    total: u64,
    used: u64,
    cfg: BenefactorConfig,
    index: HashMap<ChunkId, ChunkInfo>,
    next_op: u64,
    next_req: u64,
    joined: bool,
    join_req: Option<RequestId>,
    last_heartbeat: Option<Time>,
    gc_due: bool,
    last_gc: Option<Time>,
    last_reoffer: Option<Time>,
    pending_stores: HashMap<u64, PendingStore>,
    pending_loads: HashMap<u64, LoadPurpose>,
    repl_jobs: HashMap<u64, JobState>,
    outstanding_puts: HashMap<RequestId, OutstandingPut>,
    stash: Vec<Stash>,
    advertised_addr: String,
    actions: ActionQueue,
}

impl Benefactor {
    /// Creates a benefactor contributing `total` bytes.
    ///
    /// Pass `NodeId(0)` to have the node acquire an id from the manager via
    /// `JoinRequest` (the real-network flow); a non-zero id skips joining
    /// and registers implicitly through heartbeats (the simulator flow).
    pub fn new(id: NodeId, total: u64, cfg: BenefactorConfig) -> Benefactor {
        Benefactor {
            id,
            total,
            used: 0,
            cfg,
            index: HashMap::new(),
            next_op: 1,
            next_req: 1,
            joined: id != NodeId(0),
            join_req: None,
            last_heartbeat: None,
            gc_due: false,
            last_gc: None,
            last_reoffer: None,
            pending_stores: HashMap::new(),
            pending_loads: HashMap::new(),
            repl_jobs: HashMap::new(),
            outstanding_puts: HashMap::new(),
            stash: Vec::new(),
            advertised_addr: String::new(),
            actions: ActionQueue::new(),
        }
    }

    /// Sets the dial address announced to the manager in `JoinRequest`
    /// (real-network deployments; the simulator leaves it empty).
    pub fn set_advertised_addr(&mut self, addr: impl Into<String>) {
        self.advertised_addr = addr.into();
    }

    /// This node's id (0 until joined).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Free bytes (total minus indexed chunks).
    pub fn free_space(&self) -> u64 {
        self.total.saturating_sub(self.used)
    }

    /// Bytes currently indexed.
    pub fn used_space(&self) -> u64 {
        self.used
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// True if this benefactor stores `chunk`.
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.index.contains_key(&chunk)
    }

    /// Seeds the index from a persistent blob store at restart: the chunks
    /// become immediately servable and GC-reportable.
    ///
    /// Drivers feed this the store's recovered `(id, size)` listing (the
    /// net crate's `ChunkStore::entries()`), so a benefactor that crashed
    /// with gigabytes of durable chunks rejoins the pool serving all of
    /// them without replaying any payload bytes. Returns how many chunks
    /// were newly adopted (duplicates are ignored).
    pub fn adopt_existing(
        &mut self,
        chunks: impl IntoIterator<Item = (ChunkId, u32)>,
        now: Time,
    ) -> usize {
        let mut adopted = 0;
        for (id, size) in chunks {
            if self
                .index
                .insert(
                    id,
                    ChunkInfo {
                        size,
                        stored_at: now,
                    },
                )
                .is_none()
            {
                self.used += size as u64;
                adopted += 1;
            }
        }
        adopted
    }

    fn req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    fn op(&mut self) -> u64 {
        self.next_op += 1;
        self.next_op
    }

    // ------------------------------------------------------ message handling

    fn process_msg(&mut self, from: NodeId, msg: Msg, now: Time) {
        match msg {
            Msg::JoinOk { req, node, .. } => {
                // Accept any join grant while unjoined: a duplicate
                // JoinRequest (e.g. after a dropped reply) may be answered
                // out of order.
                let _ = req;
                if !self.joined {
                    self.id = node;
                    self.joined = true;
                    self.join_req = None;
                    self.emit_heartbeat(now);
                }
            }
            Msg::HeartbeatAck { gc_due, .. } => {
                if gc_due {
                    self.gc_due = true;
                }
            }
            Msg::PutChunk {
                req,
                chunk,
                size,
                data,
                ..
            } => self.on_put(from, req, chunk, size, data, now),
            Msg::DeltaPutChunk {
                req,
                chunk,
                basis,
                size,
                delta,
            } => self.on_delta_put(from, req, chunk, basis, size, delta),
            Msg::GetChunk { req, chunk } => self.on_get(from, req, chunk),
            Msg::DeleteChunks { chunks } => {
                for c in chunks {
                    self.remove_chunk(c);
                }
            }
            Msg::GcReply { deletable, .. } => {
                for c in deletable {
                    self.remove_chunk(c);
                }
            }
            Msg::ReplicateCmd { job, copies } => self.on_replicate(job, copies),
            Msg::PutChunkOk { req, .. } => self.on_put_ack(req, true),
            Msg::ErrorReply { req, .. } => {
                // Either a failed replication transfer or a stale reply.
                self.on_put_ack(req, false);
            }
            Msg::StashCommit {
                req,
                path,
                entries,
                placements,
            } => {
                self.stash.push(Stash {
                    path,
                    entries,
                    placements,
                    stored_at: now,
                    last_offer_req: None,
                });
                // Quiet period before the first re-offer: the manager that
                // granted this commit is alive right now, and an immediate
                // offer would only be acked and dropped — defeating the
                // stash's purpose of surviving a manager crash shortly
                // after the commit.
                self.last_reoffer = Some(now);
                self.actions.send(from, Msg::Ack { req });
            }
            Msg::Ack { req } => {
                // Ack of a re-offer: the manager has (re)learned this commit.
                self.stash.retain(|s| s.last_offer_req != Some(req));
            }
            other => {
                if let Some(req) = other.request_id() {
                    self.actions.send(
                        from,
                        Msg::ErrorReply {
                            req,
                            code: ErrorCode::BadRequest,
                            detail: format!("benefactor cannot serve tag {}", other.wire_tag()),
                        },
                    );
                }
            }
        }
    }

    fn on_put(
        &mut self,
        from: NodeId,
        req: RequestId,
        chunk: ChunkId,
        size: u32,
        data: bytes::Bytes,
        now: Time,
    ) {
        if !self.joined {
            // Until the pool identity is known, acknowledgements would be
            // unattributable; make the client fail over.
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::Unavailable,
                    detail: "benefactor has not joined the pool yet".to_string(),
                },
            );
            return;
        }
        if self.index.contains_key(&chunk) {
            // Content-addressed dedup: already stored, ack immediately.
            self.actions.send(
                from,
                Msg::PutChunkOk {
                    req,
                    chunk,
                    node: self.id,
                },
            );
            return;
        }
        if !data.is_empty() {
            if data.len() != size as usize {
                self.actions.send(
                    from,
                    Msg::ErrorReply {
                        req,
                        code: ErrorCode::BadRequest,
                        detail: format!("size field {size} != payload {}", data.len()),
                    },
                );
                return;
            }
            if !chunk.verify(&data) {
                // Content-based addressability doubles as an integrity
                // check: refuse tampered or corrupted data.
                self.actions.send(
                    from,
                    Msg::ErrorReply {
                        req,
                        code: ErrorCode::Corrupt,
                        detail: "chunk data does not match its content hash".to_string(),
                    },
                );
                return;
            }
        }
        if self.used + size as u64 > self.total {
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::NoSpace,
                    detail: format!("{} bytes free", self.free_space()),
                },
            );
            return;
        }
        self.index.insert(
            chunk,
            ChunkInfo {
                size,
                stored_at: now,
            },
        );
        self.used += size as u64;
        let op = self.op();
        let payload = if data.is_empty() {
            Payload::Virtual { size, tag: 0 }
        } else {
            Payload::Real(data)
        };
        self.pending_stores.insert(
            op,
            PendingStore {
                req,
                chunk,
                reply_to: from,
            },
        );
        self.actions.push(Action::Store { op, chunk, payload });
    }

    /// Stores a chunk shipped as a delta against a basis chunk already held
    /// here (wire-level dedup for near-miss chunks). The reconstruction is
    /// verified against the target's content hash before anything lands, and
    /// the stored blob is the *full* chunk: storage stays self-contained, so
    /// reads, replication, and GC are oblivious to how the bytes arrived.
    /// Every refusal is an `ErrorReply` the sending client answers by
    /// re-shipping the chunk in full.
    fn on_delta_put(
        &mut self,
        from: NodeId,
        req: RequestId,
        chunk: ChunkId,
        basis: ChunkId,
        size: u32,
        delta: bytes::Bytes,
    ) {
        if !self.joined {
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::Unavailable,
                    detail: "benefactor has not joined the pool yet".to_string(),
                },
            );
            return;
        }
        if self.index.contains_key(&chunk) {
            // Content-addressed dedup: already stored, ack immediately.
            self.actions.send(
                from,
                Msg::PutChunkOk {
                    req,
                    chunk,
                    node: self.id,
                },
            );
            return;
        }
        let Some(info) = self.index.get(&basis) else {
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("delta basis {basis} not stored here"),
                },
            );
            return;
        };
        if self.used + size as u64 > self.total {
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::NoSpace,
                    detail: format!("{} bytes free", self.free_space()),
                },
            );
            return;
        }
        let basis_size = info.size;
        let op = self.op();
        self.pending_loads.insert(
            op,
            LoadPurpose::DeltaApply {
                req,
                to: from,
                chunk,
                size,
                delta,
            },
        );
        self.actions.push(Action::Load {
            op,
            chunk: basis,
            size: basis_size,
            serve: false,
        });
    }

    fn complete_store(&mut self, op: u64, _now: Time) {
        let Some(p) = self.pending_stores.remove(&op) else {
            return;
        };
        self.actions.send(
            p.reply_to,
            Msg::PutChunkOk {
                req: p.req,
                chunk: p.chunk,
                node: self.id,
            },
        );
    }

    fn on_get(&mut self, from: NodeId, req: RequestId, chunk: ChunkId) {
        if !self.index.contains_key(&chunk) {
            self.actions.send(
                from,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("chunk {chunk} not stored here"),
                },
            );
            return;
        }
        let size = self.index[&chunk].size;
        let op = self.op();
        self.pending_loads
            .insert(op, LoadPurpose::ServeGet { req, to: from });
        self.actions.push(Action::Load {
            op,
            chunk,
            size,
            serve: true,
        });
    }

    fn complete_load(&mut self, op: u64, chunk: ChunkId, payload: Payload, now: Time) {
        let Some(purpose) = self.pending_loads.remove(&op) else {
            return;
        };
        match purpose {
            LoadPurpose::ServeGet { req, to } => self.actions.send(
                to,
                Msg::GetChunkOk {
                    req,
                    chunk,
                    size: payload.len() as u32,
                    data: payload.bytes(),
                },
            ),
            LoadPurpose::ReplPush { job, copy } => {
                let req = self.req();
                self.outstanding_puts.insert(
                    req,
                    OutstandingPut {
                        job,
                        copy,
                        sent_at: now,
                    },
                );
                self.actions.send(
                    copy.target,
                    Msg::PutChunk {
                        req,
                        chunk,
                        size: payload.len() as u32,
                        data: payload.bytes(),
                        background: true,
                    },
                );
            }
            LoadPurpose::DeltaApply {
                req,
                to,
                chunk: target,
                size,
                delta,
            } => {
                // `chunk` is the basis that was loaded; `target` is the
                // chunk being reconstructed.
                let full = match &payload {
                    Payload::Real(basis) => delta_apply(basis, &delta).ok(),
                    // Virtual payloads (simulator drivers) carry no bytes
                    // to patch; refuse so the client falls back to full.
                    Payload::Virtual { .. } => None,
                };
                let ok = full
                    .as_deref()
                    .is_some_and(|f| f.len() == size as usize && target.verify(f));
                if !ok {
                    self.actions.send(
                        to,
                        Msg::ErrorReply {
                            req,
                            code: ErrorCode::Corrupt,
                            detail: format!("delta for {target} does not reconstruct its content"),
                        },
                    );
                    return;
                }
                if self.used + size as u64 > self.total {
                    // Capacity may have shrunk while the basis was loading.
                    self.actions.send(
                        to,
                        Msg::ErrorReply {
                            req,
                            code: ErrorCode::NoSpace,
                            detail: format!("{} bytes free", self.free_space()),
                        },
                    );
                    return;
                }
                self.index.insert(
                    target,
                    ChunkInfo {
                        size,
                        stored_at: now,
                    },
                );
                self.used += size as u64;
                let op = self.op();
                self.pending_stores.insert(
                    op,
                    PendingStore {
                        req,
                        chunk: target,
                        reply_to: to,
                    },
                );
                self.actions.push(Action::Store {
                    op,
                    chunk: target,
                    payload: Payload::Real(bytes::Bytes::from(full.expect("checked ok"))),
                });
            }
        }
    }

    /// The driver could not read a chunk this node's index advertises: the
    /// backing blob is lost or corrupt. Drop it from the index (GC and
    /// heartbeats stop advertising it) and fail the pending request so the
    /// requester fails over to another replica.
    fn load_failed(&mut self, op: u64, chunk: ChunkId) {
        let Some(purpose) = self.pending_loads.remove(&op) else {
            return;
        };
        self.remove_chunk(chunk);
        match purpose {
            LoadPurpose::ServeGet { req, to } => self.actions.send(
                to,
                Msg::ErrorReply {
                    req,
                    code: ErrorCode::NotFound,
                    detail: format!("chunk {chunk} lost from backing store"),
                },
            ),
            LoadPurpose::ReplPush { job, copy } => {
                let Some(mut state) = self.repl_jobs.remove(&job) else {
                    return;
                };
                state.outstanding -= 1;
                state.failed.push(copy);
                if state.outstanding == 0 {
                    self.report_job(job, state);
                } else {
                    self.repl_jobs.insert(job, state);
                }
            }
            LoadPurpose::DeltaApply { req, to, .. } => {
                // The basis is gone from the backing store: the client
                // re-ships the target chunk in full.
                self.actions.send(
                    to,
                    Msg::ErrorReply {
                        req,
                        code: ErrorCode::NotFound,
                        detail: format!("delta basis {chunk} lost from backing store"),
                    },
                );
            }
        }
    }

    fn on_replicate(&mut self, job: u64, copies: Vec<ReplicaCopy>) {
        let mut state = JobState {
            outstanding: 0,
            done: Vec::new(),
            failed: Vec::new(),
        };
        for copy in copies {
            if let Some(info) = self.index.get(&copy.chunk) {
                let size = info.size;
                state.outstanding += 1;
                let op = self.op();
                let chunk = copy.chunk;
                self.pending_loads
                    .insert(op, LoadPurpose::ReplPush { job, copy });
                self.actions.push(Action::Load {
                    op,
                    chunk,
                    size,
                    serve: false,
                });
            } else {
                state.failed.push(copy);
            }
        }
        if state.outstanding == 0 {
            self.report_job(job, state);
        } else {
            self.repl_jobs.insert(job, state);
        }
    }

    fn on_put_ack(&mut self, req: RequestId, ok: bool) {
        let Some(put) = self.outstanding_puts.remove(&req) else {
            return;
        };
        let Some(mut state) = self.repl_jobs.remove(&put.job) else {
            return;
        };
        state.outstanding -= 1;
        if ok {
            state.done.push(put.copy);
        } else {
            state.failed.push(put.copy);
        }
        if state.outstanding == 0 {
            self.report_job(put.job, state);
        } else {
            self.repl_jobs.insert(put.job, state);
        }
    }

    fn report_job(&mut self, job: u64, state: JobState) {
        self.actions.send(
            MANAGER_NODE,
            Msg::ReplicateReport {
                job,
                node: self.id,
                done: state.done,
                failed: state.failed,
            },
        );
    }

    fn remove_chunk(&mut self, chunk: ChunkId) {
        if let Some(info) = self.index.remove(&chunk) {
            self.used = self.used.saturating_sub(info.size as u64);
            self.actions.push(Action::DropChunk { chunk });
        }
    }

    fn emit_heartbeat(&mut self, now: Time) {
        self.last_heartbeat = Some(now);
        self.actions.send(
            MANAGER_NODE,
            Msg::Heartbeat {
                node: self.id,
                free_space: self.free_space(),
                total_space: self.total,
                addr: self.advertised_addr.clone(),
            },
        );
    }

    // ------------------------------------------------------------ timers

    /// Runs time-based behaviour: joining, heartbeats, GC reports,
    /// replication timeouts, stash re-offers.
    fn process_timeout(&mut self, now: Time) {
        if !self.joined {
            let due = self
                .last_heartbeat
                .map(|t| now.since(t) >= self.cfg.heartbeat_every)
                .unwrap_or(true);
            if due {
                let req = self.req();
                self.join_req = Some(req);
                self.last_heartbeat = Some(now);
                self.actions.send(
                    MANAGER_NODE,
                    Msg::JoinRequest {
                        req,
                        addr: self.advertised_addr.clone(),
                        total_space: self.total,
                    },
                );
            }
            return;
        }
        let hb_due = self
            .last_heartbeat
            .map(|t| now.since(t) >= self.cfg.heartbeat_every)
            .unwrap_or(true);
        if hb_due {
            self.emit_heartbeat(now);
        }
        if self.gc_due {
            let gc_ok = self
                .last_gc
                .map(|t| now.since(t) >= self.cfg.gc_min_interval)
                .unwrap_or(true);
            if gc_ok {
                self.gc_due = false;
                self.last_gc = Some(now);
                let req = self.req();
                let mut chunks: Vec<ChunkId> = self
                    .index
                    .iter()
                    .filter(|(_, info)| now.since(info.stored_at) >= self.cfg.gc_grace)
                    .map(|(id, _)| *id)
                    .collect();
                chunks.sort_unstable();
                self.actions.send(
                    MANAGER_NODE,
                    Msg::GcReport {
                        req,
                        node: self.id,
                        chunks,
                    },
                );
            }
        }
        // Replication transfer timeouts.
        let mut timed_out: Vec<RequestId> = self
            .outstanding_puts
            .iter()
            .filter(|(_, p)| now.since(p.sent_at) >= self.cfg.put_timeout)
            .map(|(r, _)| *r)
            .collect();
        timed_out.sort_unstable();
        for req in timed_out {
            self.on_put_ack(req, false);
        }
        // Stash maintenance.
        self.stash
            .retain(|s| now.since(s.stored_at) <= self.cfg.stash_ttl);
        let reoffer_due = self
            .last_reoffer
            .map(|t| now.since(t) >= self.cfg.reoffer_every)
            .unwrap_or(true);
        if reoffer_due && !self.stash.is_empty() {
            self.last_reoffer = Some(now);
            let id = self.id;
            for i in 0..self.stash.len() {
                let req = self.req();
                let s = &mut self.stash[i];
                s.last_offer_req = Some(req);
                let msg = Msg::ReofferCommit {
                    req,
                    node: id,
                    path: s.path.clone(),
                    entries: s.entries.clone(),
                    placements: s.placements.clone(),
                };
                self.actions.send(MANAGER_NODE, msg);
            }
        }
    }

    /// Number of stashed (not yet manager-acknowledged) commits.
    pub fn stashed_commits(&self) -> usize {
        self.stash.len()
    }

    // ------------------------------------------------------ legacy shims

    fn take_legacy(&mut self) -> Vec<BenefactorAction> {
        self.actions
            .drain()
            .into_iter()
            .map(BenefactorAction::from)
            .collect()
    }

    /// Compatibility shim over [`Node::handle`]: processes one message and
    /// drains the resulting actions.
    pub fn handle_msg(&mut self, from: NodeId, msg: Msg, now: Time) -> Vec<BenefactorAction> {
        Node::handle(self, from, msg, now);
        self.take_legacy()
    }

    /// Compatibility shim over [`Node::handle_timeout`].
    pub fn tick(&mut self, now: Time) -> Vec<BenefactorAction> {
        Node::handle_timeout(self, now);
        self.take_legacy()
    }

    /// Compatibility shim over [`Completion::Stored`].
    pub fn on_store_complete(&mut self, op: u64, now: Time) -> Vec<BenefactorAction> {
        self.complete_store(op, now);
        self.take_legacy()
    }

    /// Compatibility shim over [`Completion::Loaded`].
    pub fn on_load_complete(
        &mut self,
        op: u64,
        chunk: ChunkId,
        payload: Payload,
        now: Time,
    ) -> Vec<BenefactorAction> {
        self.complete_load(op, chunk, payload, now);
        self.take_legacy()
    }
}

impl Node for Benefactor {
    fn handle(&mut self, from: NodeId, msg: Msg, now: Time) {
        self.process_msg(from, msg, now);
    }

    fn handle_completion(&mut self, completion: Completion, now: Time) {
        match completion {
            Completion::Stored { op } => self.complete_store(op, now),
            Completion::Loaded { op, chunk, payload } => {
                self.complete_load(op, chunk, payload, now)
            }
            Completion::LoadFailed { op, chunk } => self.load_failed(op, chunk),
            // Benefactor transfers are fire-and-forget at the transport
            // level; replication failures surface via the put timeout.
            Completion::SendDone { .. } | Completion::SendFailed { .. } => {}
            other => debug_assert!(false, "unexpected completion {other:?}"),
        }
    }

    fn handle_timeout(&mut self, now: Time) {
        self.process_timeout(now);
    }

    fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop()
    }

    fn poll_timeout(&self) -> Option<Time> {
        let hb = Some(match self.last_heartbeat {
            Some(t) => t + self.cfg.heartbeat_every,
            None => Time::ZERO,
        });
        if !self.joined {
            // Next join attempt.
            return hb;
        }
        let mut next = hb;
        if self.gc_due {
            next = earliest(
                next,
                Some(match self.last_gc {
                    Some(t) => t + self.cfg.gc_min_interval,
                    None => Time::ZERO,
                }),
            );
        }
        for p in self.outstanding_puts.values() {
            next = earliest(next, Some(p.sent_at + self.cfg.put_timeout));
        }
        if !self.stash.is_empty() {
            next = earliest(
                next,
                Some(match self.last_reoffer {
                    Some(t) => t + self.cfg.reoffer_every,
                    None => Time::ZERO,
                }),
            );
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn send_msgs(actions: &[BenefactorAction]) -> Vec<&Msg> {
        actions
            .iter()
            .filter_map(|a| match a {
                BenefactorAction::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect()
    }

    fn make() -> Benefactor {
        Benefactor::new(NodeId(5), 1 << 20, BenefactorConfig::fast_for_tests())
    }

    #[test]
    fn pre_assigned_id_heartbeats_without_joining() {
        let mut b = make();
        let out = b.tick(Time::ZERO);
        let msgs = send_msgs(&out);
        assert!(matches!(
            msgs[0],
            Msg::Heartbeat {
                node: NodeId(5),
                ..
            }
        ));
        // No duplicate heartbeat before the period elapses.
        assert!(b.tick(Time::ZERO + Dur::from_millis(10)).is_empty());
        let out = b.tick(Time::ZERO + Dur::from_millis(60));
        assert!(!send_msgs(&out).is_empty());
    }

    #[test]
    fn zero_id_joins_first() {
        let mut b = Benefactor::new(NodeId(0), 1 << 20, BenefactorConfig::fast_for_tests());
        let out = b.tick(Time::ZERO);
        let req = match send_msgs(&out)[0] {
            Msg::JoinRequest { req, .. } => *req,
            other => panic!("expected join, got {other:?}"),
        };
        let out = b.handle_msg(
            MANAGER_NODE,
            Msg::JoinOk {
                req,
                node: NodeId(9),
                heartbeat_every: Dur::from_millis(50),
            },
            Time::ZERO,
        );
        assert_eq!(b.id(), NodeId(9));
        assert!(matches!(
            send_msgs(&out)[0],
            Msg::Heartbeat {
                node: NodeId(9),
                ..
            }
        ));
    }

    #[test]
    fn put_stores_then_acks() {
        let mut b = make();
        let data = Bytes::from_static(b"hello chunk");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: data.len() as u32,
                data,
                background: false,
            },
            Time::ZERO,
        );
        let op = match &out[0] {
            BenefactorAction::Store { op, .. } => *op,
            other => panic!("expected store, got {other:?}"),
        };
        assert!(b.contains(chunk));
        assert_eq!(b.used_space(), 11);
        let out = b.on_store_complete(op, Time::ZERO);
        match &out[0] {
            BenefactorAction::Send { to, msg } => {
                assert_eq!(*to, NodeId(7));
                assert!(matches!(msg, Msg::PutChunkOk { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_put_acks_without_storing() {
        let mut b = make();
        let data = Bytes::from_static(b"x");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: 1,
                data: data.clone(),
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let out = b.handle_msg(
            NodeId(8),
            Msg::PutChunk {
                req: RequestId(2),
                chunk,
                size: 1,
                data,
                background: false,
            },
            Time::ZERO,
        );
        assert!(matches!(
            &out[0],
            BenefactorAction::Send {
                msg: Msg::PutChunkOk { .. },
                ..
            }
        ));
        assert_eq!(b.used_space(), 1, "no double accounting");
    }

    #[test]
    fn corrupt_put_is_rejected() {
        let mut b = make();
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk: ChunkId::for_content(b"expected"),
                size: 6,
                data: Bytes::from_static(b"actual"),
                background: false,
            },
            Time::ZERO,
        );
        match send_msgs(&out)[0] {
            Msg::ErrorReply { code, .. } => assert_eq!(*code, ErrorCode::Corrupt),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(b.chunk_count(), 0);
    }

    #[test]
    fn put_beyond_capacity_is_no_space() {
        let mut b = Benefactor::new(NodeId(5), 10, BenefactorConfig::fast_for_tests());
        let data = Bytes::from(vec![1u8; 11]);
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: 11,
                data,
                background: false,
            },
            Time::ZERO,
        );
        match send_msgs(&out)[0] {
            Msg::ErrorReply { code, .. } => assert_eq!(*code, ErrorCode::NoSpace),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_round_trips_through_load() {
        let mut b = make();
        let data = Bytes::from_static(b"payload");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: 7,
                data: data.clone(),
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let out = b.handle_msg(
            NodeId(8),
            Msg::GetChunk {
                req: RequestId(2),
                chunk,
            },
            Time::ZERO,
        );
        let op = match &out[0] {
            BenefactorAction::Load { op, .. } => *op,
            other => panic!("expected load, got {other:?}"),
        };
        let out = b.on_load_complete(op, chunk, Payload::Real(data.clone()), Time::ZERO);
        match &out[0] {
            BenefactorAction::Send { to, msg } => {
                assert_eq!(*to, NodeId(8));
                match msg {
                    Msg::GetChunkOk { data: d, .. } => assert_eq!(d, &data),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_missing_chunk_is_not_found() {
        let mut b = make();
        let out = b.handle_msg(
            NodeId(8),
            Msg::GetChunk {
                req: RequestId(2),
                chunk: ChunkId::test_id(1),
            },
            Time::ZERO,
        );
        match send_msgs(&out)[0] {
            Msg::ErrorReply { code, .. } => assert_eq!(*code, ErrorCode::NotFound),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_chunks_frees_space() {
        let mut b = make();
        let data = Bytes::from_static(b"abc");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: 3,
                data,
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let out = b.handle_msg(
            MANAGER_NODE,
            Msg::DeleteChunks {
                chunks: vec![chunk],
            },
            Time::ZERO,
        );
        assert!(matches!(out[0], BenefactorAction::Drop { .. }));
        assert_eq!(b.used_space(), 0);
    }

    #[test]
    fn replication_pushes_background_puts_and_reports() {
        let mut b = make();
        let data = Bytes::from_static(b"replica me");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: data.len() as u32,
                data: data.clone(),
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let out = b.handle_msg(
            MANAGER_NODE,
            Msg::ReplicateCmd {
                job: 9,
                copies: vec![ReplicaCopy {
                    chunk,
                    target: NodeId(6),
                }],
            },
            Time::ZERO,
        );
        let op = match &out[0] {
            BenefactorAction::Load { op, .. } => *op,
            other => panic!("expected load, got {other:?}"),
        };
        let out = b.on_load_complete(op, chunk, Payload::Real(data), Time::ZERO);
        let req = match &out[0] {
            BenefactorAction::Send { to, msg } => {
                assert_eq!(*to, NodeId(6));
                match msg {
                    Msg::PutChunk {
                        req, background, ..
                    } => {
                        assert!(*background, "replication traffic is background");
                        *req
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        };
        // Target acks; job completes.
        let out = b.handle_msg(
            NodeId(6),
            Msg::PutChunkOk {
                req,
                chunk,
                node: NodeId(6),
            },
            Time::ZERO,
        );
        match send_msgs(&out)[0] {
            Msg::ReplicateReport { done, failed, .. } => {
                assert_eq!(done.len(), 1);
                assert!(failed.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replication_of_missing_chunk_fails_fast() {
        let mut b = make();
        let out = b.handle_msg(
            MANAGER_NODE,
            Msg::ReplicateCmd {
                job: 3,
                copies: vec![ReplicaCopy {
                    chunk: ChunkId::test_id(1),
                    target: NodeId(6),
                }],
            },
            Time::ZERO,
        );
        match send_msgs(&out)[0] {
            Msg::ReplicateReport { done, failed, .. } => {
                assert!(done.is_empty());
                assert_eq!(failed.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replication_times_out_and_reports_failure() {
        let mut b = make();
        let data = Bytes::from_static(b"slow");
        let chunk = ChunkId::for_content(&data);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk,
                size: 4,
                data: data.clone(),
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let out = b.handle_msg(
            MANAGER_NODE,
            Msg::ReplicateCmd {
                job: 4,
                copies: vec![ReplicaCopy {
                    chunk,
                    target: NodeId(6),
                }],
            },
            Time::ZERO,
        );
        if let BenefactorAction::Load { op, .. } = out[0] {
            b.on_load_complete(op, chunk, Payload::Real(data), Time::ZERO);
        }
        // No ack arrives; tick past the timeout.
        let out = b.tick(Time::ZERO + Dur::from_millis(300));
        let report = send_msgs(&out)
            .into_iter()
            .find(|m| matches!(m, Msg::ReplicateReport { .. }))
            .expect("timeout report");
        match report {
            Msg::ReplicateReport { failed, .. } => assert_eq!(failed.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn gc_report_respects_grace_period() {
        let mut b = make();
        let old = Bytes::from_static(b"old");
        let old_id = ChunkId::for_content(&old);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(1),
                chunk: old_id,
                size: 3,
                data: old,
                background: false,
            },
            Time::ZERO,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, Time::ZERO);
        }
        let later = Time::ZERO + Dur::from_millis(150);
        let fresh = Bytes::from_static(b"fresh");
        let fresh_id = ChunkId::for_content(&fresh);
        let out = b.handle_msg(
            NodeId(7),
            Msg::PutChunk {
                req: RequestId(2),
                chunk: fresh_id,
                size: 5,
                data: fresh,
                background: false,
            },
            later,
        );
        if let BenefactorAction::Store { op, .. } = out[0] {
            b.on_store_complete(op, later);
        }
        b.handle_msg(
            MANAGER_NODE,
            Msg::HeartbeatAck {
                node: NodeId(5),
                gc_due: true,
            },
            later,
        );
        let out = b.tick(later + Dur::from_millis(10));
        let report = send_msgs(&out)
            .into_iter()
            .find(|m| matches!(m, Msg::GcReport { .. }))
            .expect("gc report");
        match report {
            Msg::GcReport { chunks, .. } => {
                assert!(chunks.contains(&old_id), "old chunk reported");
                assert!(!chunks.contains(&fresh_id), "fresh chunk withheld by grace");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stash_reoffers_until_acked() {
        let mut b = make();
        let out = b.handle_msg(
            NodeId(7),
            Msg::StashCommit {
                req: RequestId(1),
                path: "/f".into(),
                entries: vec![],
                placements: vec![],
            },
            Time::ZERO,
        );
        assert!(matches!(send_msgs(&out)[0], Msg::Ack { .. }));
        assert_eq!(b.stashed_commits(), 1);
        let out = b.tick(Time::ZERO + Dur::from_millis(150));
        let offer_req = send_msgs(&out)
            .into_iter()
            .find_map(|m| match m {
                Msg::ReofferCommit { req, .. } => Some(*req),
                _ => None,
            })
            .expect("reoffer");
        // Manager acks: stash drains.
        b.handle_msg(MANAGER_NODE, Msg::Ack { req: offer_req }, Time::ZERO);
        assert_eq!(b.stashed_commits(), 0);
    }
}
