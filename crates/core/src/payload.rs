//! Payload abstraction: real bytes or virtual (size + content tag).
//!
//! The same session/benefactor state machines run under a real driver
//! (payloads carry actual bytes) and the discrete-event simulator (payloads
//! carry only a size and a deterministic *content tag*). Content tags stand
//! in for content: equal tag sequences hash to equal [`ChunkId`]s, so dedup,
//! content addressing and integrity logic behave identically without
//! allocating gigabytes during simulation.

use bytes::Bytes;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::ChunkId;
use stdchk_util::sha256::Sha256;

/// A write payload: application bytes or their virtual stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Real application bytes.
    Real(Bytes),
    /// Virtual bytes: `size` bytes whose content is identified by `tag`.
    /// Two virtual payloads with the same `(size, tag)` represent identical
    /// content.
    Virtual {
        /// Logical length in bytes.
        size: u32,
        /// Deterministic content identity.
        tag: u64,
    },
}

impl Payload {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Real(b) => b.len() as u64,
            Payload::Virtual { size, .. } => *size as u64,
        }
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The real bytes, or an empty buffer for virtual payloads (what goes
    /// into `PutChunk::data`).
    pub fn bytes(&self) -> Bytes {
        match self {
            Payload::Real(b) => b.clone(),
            Payload::Virtual { .. } => Bytes::new(),
        }
    }

    /// Builds a real payload from a byte vector.
    pub fn real(data: impl Into<Bytes>) -> Payload {
        Payload::Real(data.into())
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::Real(b)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Real(Bytes::from(v))
    }
}

/// Accumulates payload segments into fixed-size chunks, hashing content as
/// it streams in (stdchk computes chunk identities *on the write path*, the
/// cost the paper's Figure 7 measures).
///
/// # Examples
///
/// ```
/// use stdchk_core::payload::{ChunkAssembler, Payload};
///
/// let mut asm = ChunkAssembler::new(4);
/// let mut done = Vec::new();
/// asm.push(Payload::real(vec![1u8, 2, 3, 4, 5]), &mut done);
/// assert_eq!(done.len(), 1); // one full 4-byte chunk
/// assert_eq!(done[0].entry.size, 4);
/// let tail = asm.finish().expect("partial chunk");
/// assert_eq!(tail.entry.size, 1);
/// ```
#[derive(Debug)]
pub struct ChunkAssembler {
    chunk_size: u32,
    hasher: Sha256,
    segments: Vec<Payload>,
    current: u64,
    virtual_only: bool,
}

/// A completed chunk: its catalog entry plus the payload to ship.
#[derive(Clone, Debug)]
pub struct AssembledChunk {
    /// Content-addressed entry (id + size).
    pub entry: ChunkEntry,
    /// The data to transfer (real bytes, or virtual size).
    pub payload: Payload,
}

impl ChunkAssembler {
    /// Creates an assembler cutting chunks of `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: u32) -> ChunkAssembler {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkAssembler {
            chunk_size,
            hasher: Sha256::new(),
            segments: Vec::new(),
            current: 0,
            virtual_only: true,
        }
    }

    /// Bytes accumulated toward the current (incomplete) chunk.
    pub fn pending_bytes(&self) -> u64 {
        self.current
    }

    /// Feeds a payload, emitting every chunk it completes into `done`.
    pub fn push(&mut self, payload: Payload, done: &mut Vec<AssembledChunk>) {
        let mut payload = payload;
        loop {
            let room = self.chunk_size as u64 - self.current;
            let take = payload.len().min(room);
            if take == 0 && payload.is_empty() {
                break;
            }
            let (head, rest) = split_payload(payload, take);
            self.absorb(head);
            if self.current == self.chunk_size as u64 {
                let chunk = self.cut();
                done.push(chunk);
            }
            match rest {
                Some(r) => payload = r,
                None => break,
            }
        }
    }

    /// Finishes the stream, returning the final partial chunk if any.
    pub fn finish(&mut self) -> Option<AssembledChunk> {
        if self.current == 0 {
            return None;
        }
        Some(self.cut())
    }

    fn absorb(&mut self, p: Payload) {
        match &p {
            Payload::Real(b) => {
                self.hasher.update(b);
                self.virtual_only = false;
            }
            Payload::Virtual { size, tag } => {
                // Hash the identity, not the bytes: deterministic and cheap.
                self.hasher.update(&tag.to_le_bytes());
                self.hasher.update(&size.to_le_bytes());
            }
        }
        self.current += p.len();
        if !p.is_empty() {
            self.segments.push(p);
        }
    }

    fn cut(&mut self) -> AssembledChunk {
        let size = self.current as u32;
        let digest = std::mem::replace(&mut self.hasher, Sha256::new()).finalize();
        let id = ChunkId(digest);
        let payload = if self.virtual_only
            && self
                .segments
                .iter()
                .all(|s| matches!(s, Payload::Virtual { .. }))
        {
            // Preserve virtuality: identity is the chunk id itself.
            let tag = u64::from_le_bytes(digest[..8].try_into().expect("digest len"));
            Payload::Virtual { size, tag }
        } else {
            // Concatenate real segments (zero-copy when single segment).
            if self.segments.len() == 1 {
                self.segments.pop().expect("non-empty").into_real()
            } else {
                let mut buf = Vec::with_capacity(size as usize);
                for s in &self.segments {
                    buf.extend_from_slice(&s.bytes());
                }
                Payload::Real(Bytes::from(buf))
            }
        };
        self.segments.clear();
        self.current = 0;
        self.virtual_only = true;
        AssembledChunk {
            entry: ChunkEntry { id, size },
            payload,
        }
    }
}

impl Payload {
    fn into_real(self) -> Payload {
        match self {
            Payload::Real(_) => self,
            Payload::Virtual { .. } => self,
        }
    }
}

fn split_payload(p: Payload, at: u64) -> (Payload, Option<Payload>) {
    if at >= p.len() {
        return (p, None);
    }
    match p {
        Payload::Real(b) => {
            let head = b.slice(..at as usize);
            let tail = b.slice(at as usize..);
            (Payload::Real(head), Some(Payload::Real(tail)))
        }
        Payload::Virtual { size, tag } => (
            Payload::Virtual {
                size: at as u32,
                tag,
            },
            Some(Payload::Virtual {
                size: size - at as u32,
                // Distinguish the two halves deterministically.
                tag: stdchk_util::mix64(tag ^ at),
            }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_chunks_hash_to_content_id() {
        let mut asm = ChunkAssembler::new(4);
        let mut done = Vec::new();
        asm.push(Payload::real(vec![9u8; 8]), &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].entry.id, ChunkId::for_content(&[9u8; 4]));
        assert_eq!(
            done[0].entry.id, done[1].entry.id,
            "identical content dedupes"
        );
    }

    #[test]
    fn split_writes_hash_like_contiguous_writes() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut a = ChunkAssembler::new(64);
        let mut done_a = Vec::new();
        a.push(Payload::real(data.clone()), &mut done_a);
        done_a.extend(a.finish());

        let mut b = ChunkAssembler::new(64);
        let mut done_b = Vec::new();
        for piece in data.chunks(7) {
            b.push(Payload::real(piece.to_vec()), &mut done_b);
        }
        done_b.extend(b.finish());

        let ids_a: Vec<_> = done_a.iter().map(|c| c.entry.id).collect();
        let ids_b: Vec<_> = done_b.iter().map(|c| c.entry.id).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn virtual_payloads_with_same_tags_dedupe() {
        let mut a = ChunkAssembler::new(1024);
        let mut out_a = Vec::new();
        a.push(
            Payload::Virtual {
                size: 1024,
                tag: 42,
            },
            &mut out_a,
        );
        let mut b = ChunkAssembler::new(1024);
        let mut out_b = Vec::new();
        b.push(
            Payload::Virtual {
                size: 1024,
                tag: 42,
            },
            &mut out_b,
        );
        assert_eq!(out_a[0].entry.id, out_b[0].entry.id);

        let mut c = ChunkAssembler::new(1024);
        let mut out_c = Vec::new();
        c.push(
            Payload::Virtual {
                size: 1024,
                tag: 43,
            },
            &mut out_c,
        );
        assert_ne!(out_a[0].entry.id, out_c[0].entry.id);
    }

    #[test]
    fn virtual_chunks_stay_virtual() {
        let mut a = ChunkAssembler::new(512);
        let mut out = Vec::new();
        a.push(Payload::Virtual { size: 2048, tag: 7 }, &mut out);
        assert_eq!(out.len(), 4);
        for c in &out {
            assert!(matches!(c.payload, Payload::Virtual { .. }));
            assert_eq!(c.payload.len(), 512);
        }
    }

    #[test]
    fn finish_emits_partial_tail_once() {
        let mut a = ChunkAssembler::new(10);
        let mut out = Vec::new();
        a.push(Payload::real(vec![1u8; 13]), &mut out);
        assert_eq!(out.len(), 1);
        let tail = a.finish().expect("tail");
        assert_eq!(tail.entry.size, 3);
        assert!(a.finish().is_none());
    }

    #[test]
    fn mixed_real_segments_concatenate() {
        let mut a = ChunkAssembler::new(8);
        let mut out = Vec::new();
        a.push(Payload::real(vec![1u8; 3]), &mut out);
        a.push(Payload::real(vec![2u8; 5]), &mut out);
        assert_eq!(out.len(), 1);
        let expect = [1u8, 1, 1, 2, 2, 2, 2, 2];
        assert_eq!(&out[0].payload.bytes()[..], &expect);
        assert_eq!(out[0].entry.id, ChunkId::for_content(&expect));
    }
}
