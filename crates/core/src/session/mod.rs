//! Client-proxy sessions: the data path between an application and the pool.
//!
//! A [`write::WriteSession`] implements the paper's three write-optimized
//! protocols (§IV.B) over striped, content-addressed chunk transfers with
//! session semantics (atomic chunk-map commit at close). A
//! [`read::ReadSession`] implements the read path with read-ahead and
//! replica failover (§IV.A, §III.B "reasonable read performance for timely
//! job restarts").

pub mod read;
pub mod write;

use stdchk_proto::ids::RequestId;

/// Generates request ids unique across the sessions of one client: the high
/// bits carry a session discriminator, the low bits a sequence number.
#[derive(Clone, Debug)]
pub(crate) struct ReqGen {
    base: u64,
    seq: u64,
}

impl ReqGen {
    pub(crate) fn new(session_id: u64) -> ReqGen {
        ReqGen {
            base: session_id << 32,
            seq: 0,
        }
    }

    pub(crate) fn next(&mut self) -> RequestId {
        self.seq += 1;
        RequestId(self.base | self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::ReqGen;

    #[test]
    fn request_ids_are_distinct_across_sessions() {
        let mut a = ReqGen::new(1);
        let mut b = ReqGen::new(2);
        let ra: Vec<_> = (0..4).map(|_| a.next()).collect();
        let rb: Vec<_> = (0..4).map(|_| b.next()).collect();
        for x in &ra {
            assert!(!rb.contains(x));
        }
    }
}
