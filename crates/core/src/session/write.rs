//! The write session: CLW, IW and SW protocols (paper §IV.B).
//!
//! One state machine implements all three write-optimized protocols as
//! routing strategies over shared machinery (chunk assembly with on-path
//! content hashing, FsCH dedup against the previous version, round-robin
//! striping, reservation management, retries, atomic commit):
//!
//! - **Complete local write (CLW)**: every byte is staged locally; the push
//!   to benefactors starts only at `close()`. Application-observed bandwidth
//!   tracks local I/O; achieved storage bandwidth pays the serialized push.
//! - **Incremental write (IW)**: staging is split into temporary files of a
//!   configurable size; a sealed temp is pushed while the application keeps
//!   writing the next one, overlapping creation and propagation.
//! - **Sliding window (SW)**: no local I/O at all; data leaves a bounded
//!   memory buffer straight to the stripe. The buffer size bounds how far
//!   the application can run ahead of the network.
//!
//! Two timestamps implement the paper's metrics: `app_close_at` ends the
//! *observed application bandwidth* window (all data handed off: staged
//! locally for CLW/IW, sent on the wire for SW), and `done_at` ends the
//! *achieved storage bandwidth* window (all chunks acked remotely and the
//! chunk-map committed).

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;
use stdchk_chunker::delta::{delta_encode, ChunkSignature};
use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::{ChunkId, FileId, NodeId, RequestId, ReservationId, VersionId};
use stdchk_proto::msg::{DedupSummary, Msg};
use stdchk_proto::ErrorCode;
use stdchk_util::{Dur, Time};

use super::ReqGen;
use crate::node::{Action, ActionQueue, Completion, Node};
use crate::payload::{AssembledChunk, ChunkAssembler, Payload};
use crate::MANAGER_NODE;

/// Which write-optimized protocol a session uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Complete local write: stage everything, push after `close()`.
    CompleteLocal,
    /// Incremental write: stage into temps of `temp_size` bytes; push sealed
    /// temps while writing continues.
    Incremental {
        /// Size of each temporary file.
        temp_size: u64,
    },
    /// Sliding window: push straight from a memory buffer of `buffer` bytes.
    SlidingWindow {
        /// Memory buffer capacity.
        buffer: u64,
    },
}

/// Write-session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The write protocol.
    pub protocol: WriteProtocol,
    /// Enable FsCH incremental checkpointing: chunks whose content hash
    /// matches the previous version are not transferred or stored again.
    pub dedup: bool,
    /// Enable have/want negotiation: chunk ids not resolvable locally are
    /// offered to the manager (`OfferChunks`) before transfer, and only the
    /// chunks the pool lacks ship — as deltas against the previous version
    /// when a basis signature is available, in full otherwise.
    pub negotiate: bool,
    /// Pessimistic write semantics: the commit acknowledges only once the
    /// replication target is met.
    pub pessimistic: bool,
    /// Per-chunk transfer retry budget before the session fails.
    pub put_retries: u32,
    /// Stash the final chunk-map on the stripe's benefactors so a failed
    /// manager can recover the commit (paper §IV.A).
    pub stash_commits: bool,
    /// IW: sealed-but-unpushed temps tolerated before the app is blocked.
    pub max_pending_temps: usize,
    /// Bound on concurrently outstanding chunk transfers.
    pub max_inflight_puts: usize,
    /// Bound on staged bytes whose local write has not completed yet.
    pub stage_window: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            protocol: WriteProtocol::SlidingWindow { buffer: 64 << 20 },
            dedup: false,
            negotiate: false,
            pessimistic: false,
            put_retries: 3,
            stash_commits: false,
            max_pending_temps: 2,
            max_inflight_puts: 16,
            stage_window: 8 << 20,
        }
    }
}

/// The manager's grant for a write session (a parsed `CreateFileOk` plus the
/// path the client asked for).
#[derive(Clone, Debug)]
pub struct OpenGrant {
    /// Path being written.
    pub path: String,
    /// File id.
    pub file: FileId,
    /// The version this session will commit.
    pub version: VersionId,
    /// Reservation handle.
    pub reservation: ReservationId,
    /// Stripe of benefactors, round-robin order.
    pub stripe: Vec<NodeId>,
    /// Previous version's chunk entries (dedup baseline).
    pub prev_chunks: Vec<ChunkEntry>,
    /// Pool chunk size.
    pub chunk_size: u32,
    /// Chunks covered by the initial reservation.
    pub reserved_chunks: u64,
}

/// Legacy write-session action vocabulary, kept as a compatibility shim
/// for tests. Drivers dispatch on the unified [`Action`] enum.
#[derive(Clone, Debug)]
pub enum WriteAction {
    /// Send a protocol message (chunk puts to benefactors; extend, commit,
    /// abort to the manager; stashes to benefactors).
    Send {
        /// Destination.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Append chunk bytes to the local stage (CLW/IW temp storage). The
    /// driver persists and calls [`WriteSession::on_stage_append_done`].
    StageAppend {
        /// Completion token.
        op: u64,
        /// Stage offset (equals the chunk's file offset).
        offset: u64,
        /// The data.
        payload: Payload,
    },
    /// Read staged bytes back for pushing. The driver answers with
    /// [`WriteSession::on_stage_fetch`].
    StageFetch {
        /// Completion token.
        op: u64,
        /// Stage offset.
        offset: u64,
        /// Length.
        len: u32,
    },
    /// The stage below this offset is no longer needed (temp deletion).
    StageDiscard {
        /// All staged bytes before this offset may be dropped.
        upto: u64,
    },
}

impl From<WriteAction> for Action {
    fn from(a: WriteAction) -> Action {
        match a {
            WriteAction::Send { to, msg } => Action::Send { to, msg },
            WriteAction::StageAppend {
                op,
                offset,
                payload,
            } => Action::StageAppend {
                op,
                offset,
                payload,
            },
            WriteAction::StageFetch { op, offset, len } => Action::StageFetch { op, offset, len },
            WriteAction::StageDiscard { upto } => Action::StageDiscard { upto },
        }
    }
}

impl From<Action> for WriteAction {
    fn from(a: Action) -> WriteAction {
        match a {
            Action::Send { to, msg } => WriteAction::Send { to, msg },
            Action::StageAppend {
                op,
                offset,
                payload,
            } => WriteAction::StageAppend {
                op,
                offset,
                payload,
            },
            Action::StageFetch { op, offset, len } => WriteAction::StageFetch { op, offset, len },
            Action::StageDiscard { upto } => WriteAction::StageDiscard { upto },
            other => unreachable!("write session never emits {other:?}"),
        }
    }
}

/// Lifecycle of a write session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Accepting application writes.
    Open,
    /// `close()` called; draining data and committing.
    Closing,
    /// Chunk-map committed; all remote I/O complete.
    Done,
    /// Unrecoverable failure.
    Failed(ErrorCode),
}

/// Metrics for the paper's OAB/ASB accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteStats {
    /// Bytes the application wrote.
    pub bytes_written: u64,
    /// Bytes actually shipped to benefactors (network/storage effort).
    pub bytes_stored: u64,
    /// Bytes saved by incremental-checkpointing dedup.
    pub bytes_deduped: u64,
    /// Total chunks in the committed map.
    pub chunks_total: u64,
    /// Chunks that were dedup hits.
    pub chunks_deduped: u64,
    /// When the session opened.
    pub open_at: Time,
    /// When `close()` returned to the application (ends the OAB window).
    pub app_close_at: Option<Time>,
    /// When all remote I/O completed and the map committed (ends ASB).
    pub done_at: Option<Time>,
    /// Chunks offered to the manager for have/want negotiation.
    pub offered_chunks: u64,
    /// Offered chunks the manager asked for.
    pub wanted_chunks: u64,
    /// Bytes that never travelled: prev-version hits plus offers the
    /// manager declined.
    pub wire_reused_bytes: u64,
    /// Bytes shipped as delta encodings.
    pub wire_delta_bytes: u64,
    /// Bytes shipped as full chunk payloads.
    pub wire_full_bytes: u64,
    /// Checkpoint interval the manager suggested at commit, derived from
    /// observed fleet churn ([`Dur::ZERO`] = no guidance).
    pub suggested_interval: Dur,
}

impl WriteStats {
    /// Observed application bandwidth in bytes/sec, if the close returned.
    pub fn oab(&self) -> Option<f64> {
        let end = self.app_close_at?;
        let dt = end.since(self.open_at).as_secs_f64();
        (dt > 0.0).then(|| self.bytes_written as f64 / dt)
    }

    /// Achieved storage bandwidth in bytes/sec, if the session completed.
    pub fn asb(&self) -> Option<f64> {
        let end = self.done_at?;
        let dt = end.since(self.open_at).as_secs_f64();
        (dt > 0.0).then(|| self.bytes_written as f64 / dt)
    }
}

/// Chunk entries accumulated per `OfferChunks` batch before it is sent;
/// `close()` flushes a partial batch.
const OFFER_BATCH: usize = 16;

#[derive(Clone, Debug)]
struct PendingPut {
    chunk: ChunkId,
    size: u32,
    payload: Payload,
    target: NodeId,
    attempts: u32,
    sent: bool,
    /// True when the in-flight transfer is a `DeltaPutChunk`; an
    /// `ErrorReply` then downgrades to a full `PutChunk` instead of
    /// failing over to another benefactor.
    as_delta: bool,
    /// Bytes this transfer puts on the wire (delta length, or the full
    /// chunk size).
    wire_cost: u64,
}

/// Manager verdict on one offered chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    /// Offered; the `WantChunks` answer is still outstanding.
    Pending,
    /// The pool lacks it — it must ship.
    Wanted,
    /// Already stored — commit by reference.
    Reused,
}

#[derive(Clone, Debug)]
struct StagedChunk {
    entry: ChunkEntry,
    offset: u64,
    /// Index of the IW temp this chunk belongs to (0 for CLW).
    temp: u64,
    deduped: bool,
}

/// The write-session state machine. See the module docs.
#[derive(Debug)]
pub struct WriteSession {
    cfg: SessionConfig,
    grant: OpenGrant,
    /// This client's pool identity (kept for diagnostics/logging).
    #[allow(dead_code)]
    client: NodeId,
    reqs: ReqGen,
    next_op: u64,
    state: SessionState,
    asm: ChunkAssembler,
    entries: Vec<ChunkEntry>,
    prev: HashSet<ChunkId>,
    placements: HashMap<ChunkId, Vec<NodeId>>,
    stripe: Vec<NodeId>,
    rr: usize,
    used_chunks: u64,
    reserved_chunks: u64,
    extend_pending: Option<RequestId>,
    // Direct-push state (SW; also the push engine for staged protocols).
    pending_puts: HashMap<RequestId, PendingPut>,
    queued_puts: VecDeque<AssembledChunk>,
    buffered: u64,
    // Staging state (CLW/IW).
    staged: VecDeque<StagedChunk>,
    stage_tail: u64,
    stage_inflight: u64,
    stage_ops: HashMap<u64, u64>,
    sealed_temps: u64,
    pushed_temps: u64,
    push_open: bool,
    pending_fetches: HashMap<u64, StagedChunk>,
    // Negotiation state (have/want + delta).
    /// Entries awaiting the next `OfferChunks` batch.
    offer_pending: Vec<ChunkEntry>,
    /// Outstanding offer batches, by request id.
    pending_offers: HashMap<RequestId, Vec<ChunkEntry>>,
    /// Per-chunk negotiation verdicts (also marks a chunk as seen).
    verdicts: HashMap<ChunkId, Verdict>,
    /// SW payloads held back until their verdict arrives.
    offer_hold: HashMap<ChunkId, AssembledChunk>,
    /// new chunk id → previous-version chunk at the same position, when a
    /// signature for it is available (delta candidate).
    chunk_basis: HashMap<ChunkId, ChunkId>,
    /// Signatures of previous-version chunks (injected by the driver).
    basis_sigs: HashMap<ChunkId, ChunkSignature>,
    /// Known locations of previous-version chunks (injected by the
    /// driver): a delta must be routed to a node storing its basis.
    basis_homes: HashMap<ChunkId, Vec<NodeId>>,
    /// Signatures of chunks shipped this session, harvested by the driver
    /// as delta bases for the next version.
    out_sigs: HashMap<ChunkId, ChunkSignature>,
    // Commit state.
    commit_req: Option<RequestId>,
    stash_sent: bool,
    stash_reqs: HashSet<RequestId>,
    stats: WriteStats,
    actions: ActionQueue,
}

impl WriteSession {
    /// Opens a session from a manager grant.
    ///
    /// `session_id` must be unique among the client's sessions (request-id
    /// namespace); `client` is this client's node id.
    pub fn new(
        session_id: u64,
        client: NodeId,
        grant: OpenGrant,
        cfg: SessionConfig,
        now: Time,
    ) -> WriteSession {
        let prev = grant.prev_chunks.iter().map(|e| e.id).collect();
        let asm = ChunkAssembler::new(grant.chunk_size);
        let stripe = grant.stripe.clone();
        let reserved = grant.reserved_chunks.max(1);
        // IW pushes sealed temps immediately; CLW opens the push phase only
        // at close. (SW never stages, so the flag is inert.)
        let push_open = !matches!(cfg.protocol, WriteProtocol::CompleteLocal);
        WriteSession {
            cfg,
            client,
            reqs: ReqGen::new(session_id),
            next_op: 0,
            state: SessionState::Open,
            asm,
            entries: Vec::new(),
            prev,
            placements: HashMap::new(),
            stripe,
            rr: 0,
            used_chunks: 0,
            reserved_chunks: reserved,
            extend_pending: None,
            pending_puts: HashMap::new(),
            queued_puts: VecDeque::new(),
            buffered: 0,
            staged: VecDeque::new(),
            stage_tail: 0,
            stage_inflight: 0,
            stage_ops: HashMap::new(),
            sealed_temps: 0,
            pushed_temps: 0,
            push_open,
            pending_fetches: HashMap::new(),
            offer_pending: Vec::new(),
            pending_offers: HashMap::new(),
            verdicts: HashMap::new(),
            offer_hold: HashMap::new(),
            chunk_basis: HashMap::new(),
            basis_sigs: HashMap::new(),
            basis_homes: HashMap::new(),
            out_sigs: HashMap::new(),
            commit_req: None,
            stash_sent: false,
            stash_reqs: HashSet::new(),
            stats: WriteStats {
                open_at: now,
                ..WriteStats::default()
            },
            actions: ActionQueue::new(),
            grant,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Session metrics.
    pub fn stats(&self) -> WriteStats {
        self.stats
    }

    /// The committed chunk-map entries so far (final after `Done`).
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// True once the session has fully completed (ASB endpoint).
    pub fn is_done(&self) -> bool {
        self.state == SessionState::Done
    }

    /// True once `close()` has returned to the application (OAB endpoint).
    pub fn app_close_returned(&self) -> bool {
        self.stats.app_close_at.is_some()
    }

    /// Injects signatures of previous-version chunks so near-miss chunks
    /// can ship as deltas. Call before the first `write()`.
    pub fn set_basis_signatures(&mut self, sigs: HashMap<ChunkId, ChunkSignature>) {
        self.basis_sigs = sigs;
    }

    /// Injects the known locations of previous-version chunks. A delta is
    /// only worth encoding when some stripe node stores its basis — the
    /// benefactor reconstructs the full chunk locally, so the delta must
    /// land where the basis lives. Call before the first `write()`.
    pub fn set_basis_placements(&mut self, homes: HashMap<ChunkId, Vec<NodeId>>) {
        self.basis_homes = homes;
    }

    /// Where each chunk this session shipped (or will ship) has landed —
    /// harvested by the driver as the delta-put routing hint for the next
    /// version of the same file.
    pub fn shipped_placements(&self) -> HashMap<ChunkId, Vec<NodeId>> {
        self.placements.clone()
    }

    /// A stripe node storing `basis`, if any.
    fn basis_home_in_stripe(&self, basis: ChunkId) -> Option<NodeId> {
        self.basis_homes
            .get(&basis)?
            .iter()
            .copied()
            .find(|n| self.stripe.contains(n))
    }

    /// Takes the signatures of chunks shipped this session — the delta
    /// bases for the *next* version of the same file.
    pub fn take_signatures(&mut self) -> HashMap<ChunkId, ChunkSignature> {
        std::mem::take(&mut self.out_sigs)
    }

    fn op(&mut self) -> u64 {
        self.next_op += 1;
        self.next_op
    }

    /// How many bytes the application may write right now without
    /// overrunning the protocol's backpressure bound (0 = blocked).
    pub fn writable(&self) -> u64 {
        if self.state != SessionState::Open {
            return 0;
        }
        match self.cfg.protocol {
            WriteProtocol::SlidingWindow { buffer } => buffer.saturating_sub(self.buffered),
            WriteProtocol::CompleteLocal => {
                self.cfg.stage_window.saturating_sub(self.stage_inflight)
            }
            WriteProtocol::Incremental { .. } => {
                let pending_temps = self.sealed_temps.saturating_sub(self.pushed_temps);
                if pending_temps >= self.cfg.max_pending_temps as u64 {
                    0
                } else {
                    self.cfg.stage_window.saturating_sub(self.stage_inflight)
                }
            }
        }
    }

    /// Application write. Callers should respect [`WriteSession::writable`];
    /// writes beyond it are accepted but simply extend the backpressure
    /// window (the driver decides whether to block the application).
    /// Resulting effects are drained through [`Node::poll_action`].
    ///
    /// # Panics
    ///
    /// Panics if called after `close()`.
    pub fn write(&mut self, payload: Payload, now: Time) {
        assert_eq!(self.state, SessionState::Open, "write after close");
        let mut out = std::mem::take(&mut self.actions);
        self.stats.bytes_written += payload.len();
        let mut done = Vec::new();
        self.asm.push(payload, &mut done);
        for chunk in done {
            self.route_chunk(chunk, now, &mut out);
        }
        self.actions = out;
    }

    /// Application close: drains remaining data, then commits. Resulting
    /// effects are drained through [`Node::poll_action`].
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn close(&mut self, now: Time) {
        assert_eq!(self.state, SessionState::Open, "close called twice");
        self.state = SessionState::Closing;
        let mut out = std::mem::take(&mut self.actions);
        if let Some(tail) = self.asm.finish() {
            self.route_chunk(tail, now, &mut out);
        }
        // CLW: the push phase starts now.
        if matches!(self.cfg.protocol, WriteProtocol::CompleteLocal) {
            self.push_open = true;
        }
        // IW: the final (partial) temp seals at close.
        if matches!(self.cfg.protocol, WriteProtocol::Incremental { .. }) {
            self.seal_temps(true);
        }
        // Any partial offer batch must go out now: the commit waits on it.
        self.flush_offers(&mut out);
        self.pump(now, &mut out);
        self.actions = out;
    }

    // ------------------------------------------------------------ routing

    fn route_chunk(&mut self, chunk: AssembledChunk, now: Time, out: &mut ActionQueue) {
        self.stats.chunks_total += 1;
        self.entries.push(chunk.entry);
        let dedup_hit = self.cfg.dedup && self.prev.contains(&chunk.entry.id);
        // A chunk already shipped (or queued) in *this* session is also a
        // dedup hit: content addressing is set-based.
        let already_here = self.placements.contains_key(&chunk.entry.id)
            || self.verdicts.contains_key(&chunk.entry.id)
            || self
                .pending_puts
                .values()
                .any(|p| p.chunk == chunk.entry.id)
            || self
                .queued_puts
                .iter()
                .any(|q| q.entry.id == chunk.entry.id)
            || self
                .staged
                .iter()
                .any(|s| !s.deduped && s.entry.id == chunk.entry.id)
            || self
                .pending_fetches
                .values()
                .any(|s| s.entry.id == chunk.entry.id);
        let dedup = dedup_hit || already_here;
        if dedup {
            self.stats.chunks_deduped += 1;
            self.stats.bytes_deduped += chunk.entry.size as u64;
            self.stats.wire_reused_bytes += chunk.entry.size as u64;
        }
        // Chunks neither resolvable locally nor already in flight enter
        // have/want negotiation instead of shipping unconditionally.
        let negotiate = self.cfg.negotiate && !dedup;
        if negotiate {
            // The previous version's chunk at the same file position is the
            // delta basis candidate, when its signature is in hand.
            let idx = self.entries.len() - 1;
            if let Some(prev_e) = self.grant.prev_chunks.get(idx) {
                if prev_e.id != chunk.entry.id && self.basis_sigs.contains_key(&prev_e.id) {
                    self.chunk_basis.insert(chunk.entry.id, prev_e.id);
                }
            }
            self.verdicts.insert(chunk.entry.id, Verdict::Pending);
            self.offer_pending.push(chunk.entry);
            self.stats.offered_chunks += 1;
        }
        match self.cfg.protocol {
            WriteProtocol::SlidingWindow { .. } => {
                if dedup {
                    // Nothing to transfer; the manager resolves locations.
                } else if negotiate {
                    // Held (still inside the window) until the verdict.
                    self.buffered += chunk.entry.size as u64;
                    self.offer_hold.insert(chunk.entry.id, chunk);
                } else {
                    self.buffered += chunk.entry.size as u64;
                    self.queued_puts.push_back(chunk);
                }
            }
            WriteProtocol::CompleteLocal | WriteProtocol::Incremental { .. } => {
                // Stage every byte locally (the local dump), push later.
                let op = self.op();
                let offset = self.stage_tail;
                self.stage_tail += chunk.entry.size as u64;
                self.stage_inflight += chunk.entry.size as u64;
                self.stage_ops.insert(op, chunk.entry.size as u64);
                out.push(WriteAction::StageAppend {
                    op,
                    offset,
                    payload: chunk.payload,
                });
                let temp = match self.cfg.protocol {
                    WriteProtocol::Incremental { temp_size } => offset / temp_size.max(1),
                    _ => 0,
                };
                self.staged.push_back(StagedChunk {
                    entry: chunk.entry,
                    offset,
                    temp,
                    deduped: dedup,
                });
                self.seal_temps(false);
            }
        }
        // A full batch amortizes the manager round-trip, but a blocked
        // window cannot wait for one: held offers count against `buffered`,
        // so a window smaller than OFFER_BATCH chunks would deadlock with
        // the writer (offers waiting for writes, writes waiting for the
        // window the offers hold). Flush partial batches on window-full.
        if self.offer_pending.len() >= OFFER_BATCH
            || (!self.offer_pending.is_empty() && self.writable() == 0)
        {
            self.flush_offers(out);
        }
        self.pump(now, out);
    }

    /// Sends the accumulated offer batch to the manager.
    fn flush_offers(&mut self, out: &mut ActionQueue) {
        if self.offer_pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.offer_pending);
        let req = self.reqs.next();
        self.pending_offers.insert(req, entries.clone());
        out.push(WriteAction::Send {
            to: MANAGER_NODE,
            msg: Msg::OfferChunks {
                req,
                reservation: self.grant.reservation,
                entries,
            },
        });
    }

    /// Applies a `Reused` verdict: the pool already stores the chunk, so it
    /// commits by reference and its bytes never travel.
    fn resolve_reused(&mut self, e: ChunkEntry) {
        self.verdicts.insert(e.id, Verdict::Reused);
        self.stats.chunks_deduped += 1;
        self.stats.bytes_deduped += e.size as u64;
        self.stats.wire_reused_bytes += e.size as u64;
        if self.offer_hold.remove(&e.id).is_some() {
            self.buffered = self.buffered.saturating_sub(e.size as u64);
        }
    }

    /// Applies a `Wanted` verdict: the chunk must ship after all.
    fn resolve_wanted(&mut self, e: ChunkEntry) {
        self.stats.wanted_chunks += 1;
        self.verdicts.insert(e.id, Verdict::Wanted);
        if let Some(held) = self.offer_hold.remove(&e.id) {
            self.queued_puts.push_back(held);
        }
    }

    fn seal_temps(&mut self, all: bool) {
        if let WriteProtocol::Incremental { temp_size } = self.cfg.protocol {
            let complete = self.stage_tail / temp_size.max(1);
            let target = if all {
                // Seal the partial temp too (close).
                if self.stage_tail.is_multiple_of(temp_size.max(1)) {
                    complete
                } else {
                    complete + 1
                }
            } else {
                complete
            };
            self.sealed_temps = self.sealed_temps.max(target);
        } else if all {
            self.sealed_temps = 1;
        }
    }

    /// Central scheduler: issues queued transfers, stage fetches, extension
    /// requests, close transitions and the final commit.
    fn pump(&mut self, now: Time, out: &mut ActionQueue) {
        if matches!(self.state, SessionState::Done | SessionState::Failed(_)) {
            return;
        }
        // Reservation exhaustion → extend.
        if self.needs_reservation() && self.extend_pending.is_none() {
            let req = self.reqs.next();
            self.extend_pending = Some(req);
            let additional = (self.queued_puts.len() as u64 + self.staged.len() as u64).max(8);
            out.push(WriteAction::Send {
                to: MANAGER_NODE,
                msg: Msg::ExtendReservation {
                    req,
                    reservation: self.grant.reservation,
                    additional_chunks: additional as u32,
                },
            });
        }
        // Direct queue (SW).
        while !self.queued_puts.is_empty()
            && self.pending_puts.len() < self.cfg.max_inflight_puts
            && self.reservation_available()
        {
            let chunk = self.queued_puts.pop_front().expect("non-empty");
            self.issue_put(chunk.entry.id, chunk.entry.size, chunk.payload, false, out);
        }
        // Staged pushes (CLW/IW).
        if self.push_open {
            while let Some(front) = self.staged.front() {
                if front.deduped {
                    let c = self.staged.pop_front().expect("non-empty");
                    let _ = c;
                    continue;
                }
                match self.verdicts.get(&front.entry.id) {
                    // The offer is outstanding: hold the push until the
                    // manager says whether the pool already has it.
                    Some(Verdict::Pending) => break,
                    Some(Verdict::Reused) => {
                        self.staged.pop_front();
                        continue;
                    }
                    _ => {}
                }
                let pushable = match self.cfg.protocol {
                    WriteProtocol::Incremental { .. } => front.temp < self.sealed_temps,
                    WriteProtocol::CompleteLocal => self.state == SessionState::Closing,
                    WriteProtocol::SlidingWindow { .. } => false,
                };
                if !pushable
                    || self.pending_puts.len() + self.pending_fetches.len()
                        >= self.cfg.max_inflight_puts
                    || !self.reservation_available()
                {
                    break;
                }
                let c = self.staged.pop_front().expect("non-empty");
                let op = self.op();
                out.push(WriteAction::StageFetch {
                    op,
                    offset: c.offset,
                    len: c.entry.size,
                });
                self.pending_fetches.insert(op, c);
            }
        }
        self.check_close_progress(now, out);
    }

    fn needs_reservation(&self) -> bool {
        let demand = !self.queued_puts.is_empty()
            || self
                .staged
                .front()
                .map(|c| !c.deduped && self.push_open)
                .unwrap_or(false);
        demand && self.used_chunks >= self.reserved_chunks
    }

    fn reservation_available(&self) -> bool {
        self.used_chunks < self.reserved_chunks
    }

    fn issue_put(
        &mut self,
        chunk: ChunkId,
        size: u32,
        payload: Payload,
        background: bool,
        out: &mut ActionQueue,
    ) {
        let mut target = self.stripe[self.rr % self.stripe.len()];
        self.rr += 1;
        self.used_chunks += 1;
        let req = self.reqs.next();
        if self.cfg.negotiate {
            // Shipped chunks become delta bases for the next version.
            if let Payload::Real(bytes) = &payload {
                self.out_sigs
                    .entry(chunk)
                    .or_insert_with(|| ChunkSignature::of(bytes));
            }
        }
        // Near miss with a usable basis: ship a delta when it beats the
        // full chunk on the wire.
        let delta = if self.cfg.negotiate && !background {
            self.chunk_basis.get(&chunk).and_then(|basis| {
                let sig = self.basis_sigs.get(basis)?;
                let Payload::Real(bytes) = &payload else {
                    return None;
                };
                delta_encode(sig, bytes).map(|d| (*basis, Bytes::from(d)))
            })
        } else {
            None
        };
        // A delta can only be applied by a benefactor that stores the
        // basis; route it to one, or ship full if no stripe node does.
        let delta = delta.filter(|(basis, _)| {
            if let Some(home) = self.basis_home_in_stripe(*basis) {
                target = home;
                true
            } else {
                false
            }
        });
        let (as_delta, wire_cost, msg) = match delta {
            Some((basis, d)) => (
                true,
                d.len() as u64,
                Msg::DeltaPutChunk {
                    req,
                    chunk,
                    basis,
                    size,
                    delta: d,
                },
            ),
            None => (
                false,
                size as u64,
                Msg::PutChunk {
                    req,
                    chunk,
                    size,
                    data: payload.bytes(),
                    background,
                },
            ),
        };
        self.pending_puts.insert(
            req,
            PendingPut {
                chunk,
                size,
                payload,
                target,
                attempts: 0,
                sent: false,
                as_delta,
                wire_cost,
            },
        );
        out.push(WriteAction::Send { to: target, msg });
    }

    // ------------------------------------------------------------ callbacks

    fn put_sent(&mut self, req: RequestId, now: Time, out: &mut ActionQueue) {
        if let Some(p) = self.pending_puts.get_mut(&req) {
            p.sent = true;
        }
        self.check_close_progress(now, out);
    }

    fn put_failed(&mut self, req: RequestId, now: Time, out: &mut ActionQueue) {
        let Some(mut p) = self.pending_puts.remove(&req) else {
            return;
        };
        p.attempts += 1;
        // Exclude the failed target from the stripe.
        self.stripe.retain(|n| *n != p.target);
        if p.attempts > self.cfg.put_retries || self.stripe.is_empty() {
            self.fail(ErrorCode::Unavailable, out);
            return;
        }
        let target = self.stripe[self.rr % self.stripe.len()];
        self.rr += 1;
        let new_req = self.reqs.next();
        out.push(WriteAction::Send {
            to: target,
            msg: Msg::PutChunk {
                req: new_req,
                chunk: p.chunk,
                size: p.size,
                data: p.payload.bytes(),
                background: false,
            },
        });
        self.pending_puts.insert(
            new_req,
            PendingPut {
                target,
                sent: false,
                // Retries always ship the full chunk: the replacement
                // target may not hold the delta basis.
                as_delta: false,
                wire_cost: p.size as u64,
                ..p
            },
        );
        self.pump(now, out);
    }

    /// The benefactor refused a delta (basis missing, or the
    /// reconstruction failed verification): resend the same chunk in full
    /// to the same target. The node itself is healthy, so it stays in the
    /// stripe and no retry is charged.
    fn delta_rejected(&mut self, req: RequestId, now: Time, out: &mut ActionQueue) {
        let Some(mut p) = self.pending_puts.remove(&req) else {
            return;
        };
        self.chunk_basis.remove(&p.chunk);
        let new_req = self.reqs.next();
        out.push(WriteAction::Send {
            to: p.target,
            msg: Msg::PutChunk {
                req: new_req,
                chunk: p.chunk,
                size: p.size,
                data: p.payload.bytes(),
                background: false,
            },
        });
        p.sent = false;
        p.as_delta = false;
        p.wire_cost = p.size as u64;
        self.pending_puts.insert(new_req, p);
        self.pump(now, out);
    }

    fn stage_append_done(&mut self, op: u64, now: Time, out: &mut ActionQueue) {
        if let Some(bytes) = self.stage_ops.remove(&op) {
            self.stage_inflight = self.stage_inflight.saturating_sub(bytes);
        }
        self.pump(now, out);
    }

    fn stage_fetched(&mut self, op: u64, payload: Payload, now: Time, out: &mut ActionQueue) {
        let Some(c) = self.pending_fetches.remove(&op) else {
            return;
        };
        self.issue_put(c.entry.id, c.entry.size, payload, false, out);
        // Track temp completion for IW discard/backpressure.
        if matches!(self.cfg.protocol, WriteProtocol::Incremental { .. }) {
            let min_unpushed_temp = self
                .staged
                .iter()
                .map(|s| s.temp)
                .chain(self.pending_fetches.values().map(|s| s.temp))
                .min()
                .unwrap_or(u64::MAX);
            let newly_pushed = min_unpushed_temp.min(self.sealed_temps);
            if newly_pushed > self.pushed_temps {
                self.pushed_temps = newly_pushed;
                if let WriteProtocol::Incremental { temp_size } = self.cfg.protocol {
                    out.push(WriteAction::StageDiscard {
                        upto: self.pushed_temps * temp_size,
                    });
                }
            }
        }
        self.pump(now, out);
    }

    fn process_msg(&mut self, msg: Msg, now: Time, out: &mut ActionQueue) {
        match msg {
            Msg::PutChunkOk { req, chunk, node } => {
                if let Some(p) = self.pending_puts.remove(&req) {
                    debug_assert_eq!(p.chunk, chunk);
                    self.stats.bytes_stored += p.size as u64;
                    if p.as_delta {
                        self.stats.wire_delta_bytes += p.wire_cost;
                    } else {
                        self.stats.wire_full_bytes += p.wire_cost;
                    }
                    self.buffered = self.buffered.saturating_sub(p.size as u64);
                    self.placements.entry(chunk).or_default().push(node);
                    self.placements.get_mut(&chunk).expect("just added").dedup();
                }
                self.pump(now, out);
            }
            Msg::WantChunks { req, wanted } => {
                if let Some(batch) = self.pending_offers.remove(&req) {
                    let want: HashSet<u32> = wanted.into_iter().collect();
                    for (i, e) in batch.into_iter().enumerate() {
                        if want.contains(&(i as u32)) {
                            self.resolve_wanted(e);
                        } else {
                            self.resolve_reused(e);
                        }
                    }
                }
                self.pump(now, out);
            }
            Msg::ExtendOk { req, stripe } => {
                if self.extend_pending == Some(req) {
                    self.extend_pending = None;
                    self.reserved_chunks +=
                        (self.queued_puts.len() as u64 + self.staged.len() as u64).max(8);
                    if !stripe.is_empty() {
                        self.stripe = stripe;
                    }
                }
                self.pump(now, out);
            }
            Msg::CommitOk {
                req,
                suggested_interval,
                ..
            } if self.commit_req == Some(req) => {
                self.state = SessionState::Done;
                self.stats.done_at = Some(now);
                self.stats.suggested_interval = suggested_interval;
            }
            Msg::Ack { req } => {
                self.stash_reqs.remove(&req);
                self.check_close_progress(now, out);
            }
            Msg::ErrorReply { req, code, .. } => {
                if self.commit_req == Some(req) || self.extend_pending == Some(req) {
                    self.fail(code, out);
                } else if let Some(batch) = self.pending_offers.remove(&req) {
                    // Negotiation refused (reservation expired, manager
                    // without dedup support): ship everything in full.
                    for e in batch {
                        self.resolve_wanted(e);
                    }
                    self.pump(now, out);
                } else if self.pending_puts.get(&req).is_some_and(|p| p.as_delta) {
                    self.delta_rejected(req, now, out);
                } else if self.pending_puts.contains_key(&req) {
                    self.put_failed(req, now, out);
                } else {
                    self.stash_reqs.remove(&req);
                    self.check_close_progress(now, out);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------ legacy shims

    /// Drains pending actions into the legacy `Vec` form (tests).
    pub fn take_actions(&mut self) -> Vec<WriteAction> {
        self.actions
            .drain()
            .into_iter()
            .map(WriteAction::from)
            .collect()
    }

    /// Compatibility shim over [`Node::handle`].
    pub fn on_msg(&mut self, msg: Msg, now: Time) -> Vec<WriteAction> {
        Node::handle(self, MANAGER_NODE, msg, now);
        self.take_actions()
    }

    /// Compatibility shim over [`Completion::SendDone`].
    pub fn on_put_sent(&mut self, req: RequestId, now: Time) -> Vec<WriteAction> {
        self.handle_completion(Completion::SendDone { req }, now);
        self.take_actions()
    }

    /// Compatibility shim over [`Completion::SendFailed`].
    pub fn on_put_failed(&mut self, req: RequestId, now: Time) -> Vec<WriteAction> {
        self.handle_completion(Completion::SendFailed { req }, now);
        self.take_actions()
    }

    /// Compatibility shim over [`Completion::StageAppended`].
    pub fn on_stage_append_done(&mut self, op: u64, now: Time) -> Vec<WriteAction> {
        self.handle_completion(Completion::StageAppended { op }, now);
        self.take_actions()
    }

    /// Compatibility shim over [`Completion::StageFetched`].
    pub fn on_stage_fetch(&mut self, op: u64, payload: Payload, now: Time) -> Vec<WriteAction> {
        self.handle_completion(Completion::StageFetched { op, payload }, now);
        self.take_actions()
    }

    fn fail(&mut self, code: ErrorCode, out: &mut ActionQueue) {
        self.state = SessionState::Failed(code);
        let req = self.reqs.next();
        out.push(WriteAction::Send {
            to: MANAGER_NODE,
            msg: Msg::AbortWrite {
                req,
                reservation: self.grant.reservation,
            },
        });
    }

    // ------------------------------------------------------------ close path

    fn check_close_progress(&mut self, now: Time, out: &mut ActionQueue) {
        if self.state != SessionState::Closing {
            return;
        }
        // OAB endpoint: the application's close() unblocks.
        if self.stats.app_close_at.is_none() {
            let handed_off = match self.cfg.protocol {
                WriteProtocol::SlidingWindow { .. } => {
                    self.queued_puts.is_empty()
                        && self.offer_hold.is_empty()
                        && self.offer_pending.is_empty()
                        && self.pending_offers.is_empty()
                        && self.pending_puts.values().all(|p| p.sent)
                }
                WriteProtocol::CompleteLocal | WriteProtocol::Incremental { .. } => {
                    self.stage_inflight == 0 && self.stage_ops.is_empty()
                }
            };
            if handed_off {
                self.stats.app_close_at = Some(now);
            }
        }
        // Commit once every chunk is durably stored once and every
        // negotiation verdict is in.
        let all_stored = self.queued_puts.is_empty()
            && self.pending_puts.is_empty()
            && self.pending_fetches.is_empty()
            && self.offer_pending.is_empty()
            && self.pending_offers.is_empty()
            && self.offer_hold.is_empty()
            && self
                .staged
                .iter()
                .all(|c| c.deduped || self.verdicts.get(&c.entry.id) == Some(&Verdict::Reused));
        if all_stored && self.commit_req.is_none() && self.stash_reqs.is_empty() {
            self.staged.clear();
            let entries = self.entries.clone();
            let placements: Vec<(ChunkId, Vec<NodeId>)> = {
                let mut v: Vec<_> = self
                    .placements
                    .iter()
                    .map(|(c, l)| (*c, l.clone()))
                    .collect();
                v.sort_by_key(|a| a.0);
                v
            };
            if self.cfg.stash_commits && !self.stripe.is_empty() && !self.stash_sent {
                self.stash_sent = true;
                for node in self.stripe.clone() {
                    let req = self.reqs.next();
                    self.stash_reqs.insert(req);
                    out.push(WriteAction::Send {
                        to: node,
                        msg: Msg::StashCommit {
                            req,
                            path: self.grant.path.clone(),
                            entries: entries.clone(),
                            placements: placements.clone(),
                        },
                    });
                }
                // Commit is sent once stashes ack (next pass).
                return;
            }
            let req = self.reqs.next();
            self.commit_req = Some(req);
            out.push(WriteAction::Send {
                to: MANAGER_NODE,
                msg: Msg::CommitChunkMap {
                    req,
                    reservation: self.grant.reservation,
                    entries,
                    placements,
                    pessimistic: self.cfg.pessimistic,
                    dedup: self.dedup_summary(),
                },
            });
        }
    }

    /// The commit-time accounting of how this version's bytes travelled.
    pub fn dedup_summary(&self) -> DedupSummary {
        DedupSummary {
            offered: self.stats.offered_chunks as u32,
            wanted: self.stats.wanted_chunks as u32,
            reused_bytes: self.stats.wire_reused_bytes,
            delta_bytes: self.stats.wire_delta_bytes,
            full_bytes: self.stats.wire_full_bytes,
        }
    }
}

impl Node for WriteSession {
    fn handle(&mut self, _from: NodeId, msg: Msg, now: Time) {
        let mut out = std::mem::take(&mut self.actions);
        self.process_msg(msg, now, &mut out);
        self.actions = out;
    }

    fn handle_completion(&mut self, completion: Completion, now: Time) {
        let mut out = std::mem::take(&mut self.actions);
        match completion {
            Completion::SendDone { req } => self.put_sent(req, now, &mut out),
            Completion::SendFailed { req } => self.put_failed(req, now, &mut out),
            Completion::StageAppended { op } => self.stage_append_done(op, now, &mut out),
            Completion::StageFetched { op, payload } => {
                self.stage_fetched(op, payload, now, &mut out)
            }
            other => debug_assert!(false, "unexpected completion {other:?}"),
        }
        self.actions = out;
    }

    fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop()
    }
}
