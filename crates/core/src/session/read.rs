//! The read path: striped chunk retrieval with read-ahead and replica
//! failover.
//!
//! Restarting a job from a checkpoint is latency-sensitive (paper §III.B),
//! so the read session keeps a configurable window of chunk fetches in
//! flight across the replica holders, verifies content hashes end-to-end
//! (catching faulty or malicious benefactors), retries failed or corrupt
//! chunks on other replicas, and delivers data to the application strictly
//! in file order.

use std::collections::{BTreeMap, HashMap};

use stdchk_proto::chunkmap::FileVersionView;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_proto::ErrorCode;
use stdchk_util::Time;

use super::ReqGen;
use crate::node::{Action, ActionQueue, Completion, Node};
use crate::payload::Payload;

/// Legacy read-session action vocabulary, kept as a compatibility shim for
/// tests. Drivers dispatch on the unified [`Action`] enum.
#[derive(Clone, Debug)]
pub enum ReadAction {
    /// Send a protocol message.
    Send {
        /// Destination benefactor.
        to: NodeId,
        /// The message (always `GetChunk`).
        msg: Msg,
    },
}

impl From<ReadAction> for Action {
    fn from(a: ReadAction) -> Action {
        let ReadAction::Send { to, msg } = a;
        Action::Send { to, msg }
    }
}

impl From<Action> for ReadAction {
    fn from(a: Action) -> ReadAction {
        match a {
            Action::Send { to, msg } => ReadAction::Send { to, msg },
            other => unreachable!("read session never emits {other:?}"),
        }
    }
}

#[derive(Clone, Debug)]
struct InFlight {
    slot: usize,
}

/// Read-session lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadState {
    /// Fetching and delivering.
    Active,
    /// Every byte delivered.
    Done,
    /// A chunk could not be retrieved from any replica.
    Failed(ErrorCode),
}

/// The read-session state machine.
#[derive(Debug)]
pub struct ReadSession {
    view: FileVersionView,
    reqs: ReqGen,
    window: usize,
    verify: bool,
    next_issue: usize,
    inflight: HashMap<RequestId, InFlight>,
    attempts: HashMap<usize, u32>,
    ready: BTreeMap<usize, Payload>,
    next_deliver: usize,
    delivered: u64,
    state: ReadState,
    actions: ActionQueue,
}

impl ReadSession {
    /// Opens a read over a version view obtained from the manager.
    ///
    /// `window` is the read-ahead depth in chunks; `verify` enables content
    /// hash verification (disable under the simulator where payloads are
    /// virtual).
    pub fn new(session_id: u64, view: FileVersionView, window: usize, verify: bool) -> ReadSession {
        let state = if view.map.is_empty() {
            ReadState::Done
        } else {
            ReadState::Active
        };
        ReadSession {
            view,
            reqs: ReqGen::new(session_id),
            window: window.max(1),
            verify,
            next_issue: 0,
            inflight: HashMap::new(),
            attempts: HashMap::new(),
            ready: BTreeMap::new(),
            next_deliver: 0,
            delivered: 0,
            state,
            actions: ActionQueue::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> ReadState {
        self.state
    }

    /// True when every chunk has been delivered.
    pub fn is_done(&self) -> bool {
        self.state == ReadState::Done
    }

    /// Total bytes delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// File size being read.
    pub fn file_size(&self) -> u64 {
        self.view.map.file_size()
    }

    /// Fills the read-ahead window with fetches.
    fn fill_window(&mut self, out: &mut ActionQueue) {
        if self.state != ReadState::Active {
            return;
        }
        while self.inflight.len() < self.window && self.next_issue < self.view.map.len() {
            let slot = self.next_issue;
            self.next_issue += 1;
            if self.ready.contains_key(&slot) {
                continue;
            }
            self.issue(slot, out);
            if self.state != ReadState::Active {
                break;
            }
        }
    }

    fn chunk_of(&self, slot: usize) -> ChunkId {
        self.view.map.entries()[slot].id
    }

    fn issue(&mut self, slot: usize, out: &mut ActionQueue) {
        let chunk = self.chunk_of(slot);
        let attempt = *self.attempts.get(&slot).unwrap_or(&0);
        let holders = self.view.locations_of(chunk).unwrap_or(&[]);
        if holders.is_empty() || attempt as usize >= holders.len() {
            // No replica left to try: unrecoverable for this version.
            self.state = ReadState::Failed(ErrorCode::Unavailable);
            return;
        }
        // Spread load: start from a slot-dependent replica, advance on retry.
        let target = holders[(slot + attempt as usize) % holders.len()];
        let req = self.reqs.next();
        self.inflight.insert(req, InFlight { slot });
        out.push(ReadAction::Send {
            to: target,
            msg: Msg::GetChunk { req, chunk },
        });
    }

    fn process_msg(&mut self, msg: Msg, out: &mut ActionQueue) {
        match msg {
            Msg::GetChunkOk {
                req,
                chunk,
                size,
                data,
                ..
            } => {
                let Some(inf) = self.inflight.remove(&req) else {
                    return;
                };
                let expected = self.view.map.entries()[inf.slot];
                let ok = if !data.is_empty() {
                    data.len() as u64 == expected.size as u64
                        && (!self.verify || chunk.verify(&data))
                } else {
                    size == expected.size
                };
                if ok {
                    let payload = if data.is_empty() {
                        Payload::Virtual { size, tag: 0 }
                    } else {
                        Payload::Real(data)
                    };
                    self.ready.insert(inf.slot, payload);
                } else {
                    // Corrupt replica: try another holder.
                    *self.attempts.entry(inf.slot).or_insert(0) += 1;
                    self.issue(inf.slot, out);
                }
            }
            Msg::ErrorReply { req, .. } => {
                if let Some(inf) = self.inflight.remove(&req) {
                    *self.attempts.entry(inf.slot).or_insert(0) += 1;
                    self.issue(inf.slot, out);
                }
            }
            _ => {}
        }
        self.fill_window(out);
    }

    fn get_failed(&mut self, req: RequestId, out: &mut ActionQueue) {
        if let Some(inf) = self.inflight.remove(&req) {
            *self.attempts.entry(inf.slot).or_insert(0) += 1;
            self.issue(inf.slot, out);
        }
        self.fill_window(out);
    }

    // ------------------------------------------------------ legacy shims

    /// Drains pending actions into the legacy `Vec` form (tests).
    pub fn take_actions(&mut self) -> Vec<ReadAction> {
        self.actions
            .drain()
            .into_iter()
            .map(ReadAction::from)
            .collect()
    }

    /// Compatibility shim: fills the read-ahead window and drains the
    /// resulting fetches.
    pub fn poll(&mut self, _now: Time) -> Vec<ReadAction> {
        let mut out = std::mem::take(&mut self.actions);
        self.fill_window(&mut out);
        self.actions = out;
        self.take_actions()
    }

    /// Compatibility shim over [`Node::handle`].
    pub fn on_msg(&mut self, msg: Msg, now: Time) -> Vec<ReadAction> {
        Node::handle(self, NodeId(0), msg, now);
        self.take_actions()
    }

    /// Compatibility shim over [`Completion::SendFailed`].
    pub fn on_get_failed(&mut self, req: RequestId, now: Time) -> Vec<ReadAction> {
        self.handle_completion(Completion::SendFailed { req }, now);
        self.take_actions()
    }

    /// Delivers the next in-order chunk to the application, if ready.
    pub fn next_ready(&mut self) -> Option<(usize, Payload)> {
        if self.state != ReadState::Active {
            return None;
        }
        let slot = self.next_deliver;
        let payload = self.ready.remove(&slot)?;
        self.next_deliver += 1;
        self.delivered += payload.len();
        if self.next_deliver == self.view.map.len() {
            self.state = ReadState::Done;
        }
        Some((slot, payload))
    }
}

impl Node for ReadSession {
    fn handle(&mut self, _from: NodeId, msg: Msg, _now: Time) {
        let mut out = std::mem::take(&mut self.actions);
        self.process_msg(msg, &mut out);
        self.actions = out;
    }

    fn handle_completion(&mut self, completion: Completion, _now: Time) {
        let mut out = std::mem::take(&mut self.actions);
        match completion {
            Completion::SendFailed { req } => self.get_failed(req, &mut out),
            // A completed send carries no information for reads.
            Completion::SendDone { .. } => {}
            other => debug_assert!(false, "unexpected completion {other:?}"),
        }
        self.actions = out;
    }

    fn poll_action(&mut self) -> Option<Action> {
        // Delivering chunks to the application opens window slots; top the
        // window up lazily whenever the driver polls.
        let mut out = std::mem::take(&mut self.actions);
        self.fill_window(&mut out);
        self.actions = out;
        self.actions.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use stdchk_proto::chunkmap::{ChunkEntry, ChunkMap};
    use stdchk_proto::ids::VersionId;

    fn view(chunk_data: &[&'static [u8]], holders: &[&[u64]]) -> FileVersionView {
        let entries: Vec<ChunkEntry> = chunk_data
            .iter()
            .map(|d| ChunkEntry {
                id: ChunkId::for_content(d),
                size: d.len() as u32,
            })
            .collect();
        let mut locations: Vec<(ChunkId, Vec<NodeId>)> = entries
            .iter()
            .zip(holders)
            .map(|(e, h)| (e.id, h.iter().map(|n| NodeId(*n)).collect()))
            .collect();
        locations.sort_by_key(|a| a.0);
        locations.dedup_by(|a, b| a.0 == b.0);
        FileVersionView {
            version: VersionId(1),
            map: ChunkMap::from_entries(entries),
            locations,
        }
    }

    fn reply_for(actions: &[ReadAction], data_for: impl Fn(ChunkId) -> Bytes) -> Vec<Msg> {
        actions
            .iter()
            .map(|ReadAction::Send { msg, .. }| match msg {
                Msg::GetChunk { req, chunk } => Msg::GetChunkOk {
                    req: *req,
                    chunk: *chunk,
                    size: data_for(*chunk).len() as u32,
                    data: data_for(*chunk),
                },
                other => panic!("unexpected action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn delivers_in_order_despite_out_of_order_replies() {
        let v = view(&[b"aaaa", b"bbbb", b"cc"], &[&[1], &[2], &[1]]);
        let mut rs = ReadSession::new(1, v, 8, true);
        let actions = rs.poll(Time::ZERO);
        assert_eq!(actions.len(), 3);
        let mut replies = reply_for(&actions, |c| {
            for d in [&b"aaaa"[..], b"bbbb", b"cc"] {
                if ChunkId::for_content(d) == c {
                    return Bytes::from_static(d);
                }
            }
            unreachable!()
        });
        // Deliver replies in reverse.
        replies.reverse();
        for r in replies {
            rs.on_msg(r, Time::ZERO);
        }
        let mut got = Vec::new();
        while let Some((_, p)) = rs.next_ready() {
            got.extend_from_slice(&p.bytes());
        }
        assert_eq!(got, b"aaaabbbbcc");
        assert!(rs.is_done());
    }

    #[test]
    fn window_bounds_inflight_fetches() {
        let v = view(
            &[b"1", b"2", b"3", b"4", b"5"],
            &[&[1], &[1], &[1], &[1], &[1]],
        );
        let mut rs = ReadSession::new(1, v, 2, true);
        let actions = rs.poll(Time::ZERO);
        assert_eq!(actions.len(), 2, "read-ahead window respected");
    }

    #[test]
    fn corrupt_reply_retries_other_replica() {
        let v = view(&[b"data"], &[&[1, 2]]);
        let mut rs = ReadSession::new(1, v, 4, true);
        let actions = rs.poll(Time::ZERO);
        let (req, chunk) = match &actions[0] {
            ReadAction::Send {
                msg: Msg::GetChunk { req, chunk },
                ..
            } => (*req, *chunk),
            other => panic!("unexpected {other:?}"),
        };
        // First replica returns tampered bytes.
        let retry = rs.on_msg(
            Msg::GetChunkOk {
                req,
                chunk,
                size: 4,
                data: Bytes::from_static(b"EVIL"),
            },
            Time::ZERO,
        );
        assert_eq!(retry.len(), 1, "must retry on the other replica");
        let ReadAction::Send {
            to,
            msg: Msg::GetChunk { req: req2, .. },
        } = &retry[0]
        else {
            panic!("unexpected {retry:?}");
        };
        assert_eq!(*to, NodeId(2));
        let ok = rs.on_msg(
            Msg::GetChunkOk {
                req: *req2,
                chunk,
                size: 4,
                data: Bytes::from_static(b"data"),
            },
            Time::ZERO,
        );
        assert!(ok.is_empty());
        let (_, p) = rs.next_ready().expect("delivered");
        assert_eq!(&p.bytes()[..], b"data");
        assert!(rs.is_done());
    }

    #[test]
    fn exhausted_replicas_fail_the_read() {
        let v = view(&[b"x"], &[&[1]]);
        let mut rs = ReadSession::new(1, v, 4, true);
        let actions = rs.poll(Time::ZERO);
        let ReadAction::Send {
            msg: Msg::GetChunk { req, .. },
            ..
        } = &actions[0]
        else {
            panic!();
        };
        rs.on_msg(
            Msg::ErrorReply {
                req: *req,
                code: ErrorCode::NotFound,
                detail: String::new(),
            },
            Time::ZERO,
        );
        assert!(matches!(rs.state(), ReadState::Failed(_)));
    }

    #[test]
    fn chunk_with_no_holders_fails_immediately() {
        let mut v = view(&[b"x"], &[&[1]]);
        v.locations.clear();
        let mut rs = ReadSession::new(1, v, 4, true);
        rs.poll(Time::ZERO);
        assert!(matches!(rs.state(), ReadState::Failed(_)));
    }

    #[test]
    fn empty_file_is_immediately_done() {
        let v = FileVersionView::default();
        let mut rs = ReadSession::new(1, v, 4, true);
        assert!(rs.is_done());
        assert!(rs.poll(Time::ZERO).is_empty());
    }

    #[test]
    fn virtual_replies_check_size_only() {
        let v = view(&[b"abcd"], &[&[1]]);
        let mut rs = ReadSession::new(1, v, 4, false);
        let actions = rs.poll(Time::ZERO);
        let ReadAction::Send {
            msg: Msg::GetChunk { req, chunk },
            ..
        } = &actions[0]
        else {
            panic!();
        };
        rs.on_msg(
            Msg::GetChunkOk {
                req: *req,
                chunk: *chunk,
                size: 4,
                data: Bytes::new(),
            },
            Time::ZERO,
        );
        let (_, p) = rs.next_ready().expect("virtual chunk delivered");
        assert_eq!(p.len(), 4);
        assert!(rs.is_done());
    }
}
