//! Property test: a manager rebuilt from snapshot + WAL replay is
//! observably identical to the manager that emitted the log.
//!
//! A random sequence of joins, commits, abandoned mid-write sessions,
//! deletes, policy changes and clock advances drives a WAL-enabled
//! manager through the `Node` API; every emitted `MetaAppend` record is
//! captured (and its mutation-order stamp checked gapless). At a random
//! point a snapshot is taken. The rebuilt manager — `Manager::restore`
//! of the snapshot plus `Manager::replay` of the records after it, with
//! a random *overlap* window replaying records the snapshot already
//! contains (the fuzzy-snapshot case) — must answer `GetAttr`,
//! `ListVersions`, `GetFile` and `ListDir` exactly like the original and
//! pass `check_invariants`.
//!
//! Mid-write crashes are covered by the abandoned sessions: reservations
//! and uncommitted file entries are deliberately not logged, and both
//! managers must agree they are invisible.

use proptest::prelude::*;

use stdchk_core::node::{Action, Node};
use stdchk_core::{Manager, PoolConfig};
use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, ReservationId};
use stdchk_proto::meta::{MetaRecord, MetaSnapshot};
use stdchk_proto::msg::Msg;
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

const CLIENT: NodeId = NodeId(9000);
const OBSERVER: NodeId = NodeId(9001);

#[derive(Clone, Debug)]
enum Op {
    /// Open + commit a version of `/p{path}` built from `chunks`.
    OpenCommit {
        path: u8,
        chunks: Vec<u8>,
        replication: u8,
    },
    /// Open a session and walk away — a mid-write crash leaves exactly
    /// this: a reservation and an invisible empty file entry.
    OpenLeak {
        path: u8,
    },
    Delete {
        path: u8,
    },
    SetPolicy {
        dir: u8,
        policy: RetentionPolicy,
    },
    Heartbeats,
    Advance {
        ms: u16,
    },
    /// Take the snapshot here (the last one in the sequence wins).
    Snapshot,
}

fn arb_policy() -> impl Strategy<Value = RetentionPolicy> {
    prop_oneof![
        Just(RetentionPolicy::NoIntervention),
        (1u32..4).prop_map(|k| RetentionPolicy::AutomatedReplace { keep_last: k }),
        (1u64..2000).prop_map(|ms| RetentionPolicy::AutomatedPurge {
            after: Dur::from_millis(ms)
        }),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, proptest::collection::vec(0u8..24, 1..6), 1u8..3).prop_map(
            |(path, chunks, replication)| Op::OpenCommit {
                path,
                chunks,
                replication
            }
        ),
        (0u8..5).prop_map(|path| Op::OpenLeak { path }),
        (0u8..5).prop_map(|path| Op::Delete { path }),
        (0u8..3, arb_policy()).prop_map(|(dir, policy)| Op::SetPolicy { dir, policy }),
        Just(Op::Heartbeats),
        (10u16..400).prop_map(|ms| Op::Advance { ms }),
        Just(Op::Snapshot),
    ]
}

/// The pool config for this test: tight maintenance timers but a huge
/// liveness timeout, so benefactor online-ness (soft state that a restart
/// deliberately resets) never diverges between the two managers.
fn cfg() -> PoolConfig {
    PoolConfig {
        benefactor_timeout: Dur::from_secs(3600),
        ..PoolConfig::fast_for_tests()
    }
}

struct Driver {
    mgr: Manager,
    now: Time,
    req: u64,
    nodes: Vec<NodeId>,
    /// Every WAL record the manager emitted, in mutation order.
    records: Vec<MetaRecord>,
    /// Latest snapshot and the record index it was taken at.
    snap: Option<(MetaSnapshot, usize)>,
}

impl Driver {
    fn new() -> Driver {
        let mut mgr = Manager::new(cfg());
        mgr.enable_wal();
        let mut d = Driver {
            mgr,
            now: Time::ZERO,
            req: 100,
            nodes: Vec::new(),
            records: Vec::new(),
            snap: None,
        };
        for i in 0..3u64 {
            let out = d.deliver(
                NodeId(500 + i),
                Msg::JoinRequest {
                    req: RequestId(i + 1),
                    addr: format!("10.0.0.{i}:4402"),
                    total_space: 1 << 30,
                },
            );
            if let Msg::JoinOk { node, .. } = out[0].1 {
                d.nodes.push(node);
            }
        }
        d
    }

    /// Feeds one message through the `Node` API, draining sends and
    /// capturing WAL records (asserting their order stamps are gapless).
    fn deliver(&mut self, from: NodeId, msg: Msg) -> Vec<(NodeId, Msg)> {
        Node::handle(&mut self.mgr, from, msg, self.now);
        self.drain()
    }

    fn drain(&mut self) -> Vec<(NodeId, Msg)> {
        let mut sends = Vec::new();
        while let Some(action) = self.mgr.poll_action() {
            match action {
                Action::Send { to, msg } => sends.push((to, msg)),
                Action::MetaAppend { seq, record } => {
                    assert_eq!(
                        seq as usize,
                        self.records.len(),
                        "WAL order stamps must be gapless"
                    );
                    self.records.push(record);
                }
                other => panic!("manager never emits {other:?}"),
            }
        }
        sends
    }

    fn req(&mut self) -> RequestId {
        self.req += 1;
        RequestId(self.req)
    }

    fn open(&mut self, path: u8, replication: u8) -> Option<(ReservationId, Vec<NodeId>)> {
        let req = self.req();
        let out = self.deliver(
            CLIENT,
            Msg::CreateFile {
                req,
                client: CLIENT,
                path: format!("/p{path}"),
                stripe_width: 3,
                replication: replication as u32,
                expected_chunks: 8,
            },
        );
        match &out[0].1 {
            Msg::CreateFileOk {
                reservation,
                stripe,
                ..
            } => Some((*reservation, stripe.clone())),
            _ => None,
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::OpenCommit {
                path,
                chunks,
                replication,
            } => {
                let Some((res, stripe)) = self.open(path, replication) else {
                    return;
                };
                let entries: Vec<ChunkEntry> = chunks
                    .iter()
                    .map(|c| ChunkEntry {
                        id: ChunkId::test_id(*c as u64),
                        size: 100 + *c as u32,
                    })
                    .collect();
                let mut placements = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (i, e) in entries.iter().enumerate() {
                    if seen.insert(e.id) {
                        placements.push((e.id, vec![stripe[i % stripe.len()]]));
                    }
                }
                let req = self.req();
                self.deliver(
                    CLIENT,
                    Msg::CommitChunkMap {
                        req,
                        reservation: res,
                        entries,
                        placements,
                        pessimistic: false,
                        dedup: Default::default(),
                    },
                );
            }
            Op::OpenLeak { path } => {
                let _ = self.open(path, 1);
            }
            Op::Delete { path } => {
                let req = self.req();
                self.deliver(
                    CLIENT,
                    Msg::DeleteFile {
                        req,
                        path: format!("/p{path}"),
                    },
                );
            }
            Op::SetPolicy { dir, policy } => {
                let req = self.req();
                let dir = match dir {
                    0 => "/".to_string(),
                    d => format!("/d{d}"),
                };
                self.deliver(
                    CLIENT,
                    Msg::SetPolicy {
                        req,
                        dir,
                        policy,
                        repl_bounds: None,
                    },
                );
            }
            Op::Heartbeats => {
                for n in self.nodes.clone() {
                    self.deliver(
                        n,
                        Msg::Heartbeat {
                            node: n,
                            free_space: 1 << 30,
                            total_space: 1 << 30,
                            addr: String::new(),
                        },
                    );
                }
            }
            Op::Advance { ms } => {
                self.now += Dur::from_millis(ms as u64);
                Node::handle_timeout(&mut self.mgr, self.now);
                self.drain();
            }
            Op::Snapshot => {
                self.snap = Some((self.mgr.snapshot(), self.records.len()));
            }
        }
    }
}

/// Everything a client can observe about the namespace, as raw replies.
fn observe(mgr: &mut Manager, now: Time) -> Vec<(NodeId, Msg)> {
    let mut out = Vec::new();
    let mut req = 8_000_000u64;
    let mut ask = |mgr: &mut Manager, msg: Msg| {
        for send in mgr.handle_msg(OBSERVER, msg, now) {
            out.push((send.to, send.msg));
        }
    };
    for p in 0..5u8 {
        let path = format!("/p{p}");
        req += 1;
        ask(
            mgr,
            Msg::GetAttr {
                req: RequestId(req),
                path: path.clone(),
            },
        );
        req += 1;
        ask(
            mgr,
            Msg::ListVersions {
                req: RequestId(req),
                path: path.clone(),
            },
        );
        req += 1;
        ask(
            mgr,
            Msg::GetFile {
                req: RequestId(req),
                path,
                version: None,
            },
        );
    }
    req += 1;
    ask(
        mgr,
        Msg::ListDir {
            req: RequestId(req),
            path: "/".into(),
        },
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rebuilt_manager_matches_original(
        ops in proptest::collection::vec(arb_op(), 1..50),
        overlap in 0usize..4,
    ) {
        let mut d = Driver::new();
        for op in ops {
            d.apply(op);
            d.mgr.check_invariants();
        }

        // "Crash": rebuild purely from snapshot + logged records. The
        // overlap window re-replays records the snapshot already
        // reflects, exactly what a fuzzy runtime snapshot produces.
        let restart = d.now + Dur::from_millis(1);
        let (mut rebuilt, base) = match &d.snap {
            Some((snap, at)) => (Manager::restore(cfg(), snap, restart), at.saturating_sub(overlap)),
            None => (Manager::new(cfg()), 0),
        };
        for record in &d.records[base..] {
            rebuilt.replay(record, restart);
        }
        rebuilt.check_invariants();

        let expected = observe(&mut d.mgr, restart);
        let got = observe(&mut rebuilt, restart);
        if expected != got {
            for (e, g) in expected.iter().zip(got.iter()) {
                if e != g {
                    eprintln!("FIRST DIVERGENCE:\n  expected {e:?}\n  got      {g:?}");
                    break;
                }
            }
        }
        prop_assert_eq!(expected, got);

        // Membership durability: every benefactor id and its donated
        // space must be known again (liveness is soft and reset).
        prop_assert_eq!(rebuilt.online_benefactors(), d.nodes.len());
        prop_assert_eq!(rebuilt.pool_space().0, d.mgr.pool_space().0);
    }
}

/// Regression: a purge that empties a file removes its entry on the live
/// manager (`drop_file_if_empty`), so a re-created file gets a fresh
/// `FileId`. Replay must mirror the removal — otherwise the rebuilt
/// manager resurrects the stale id, which leaks to clients through
/// `CreateFileOk`.
#[test]
fn purge_to_empty_then_recreate_keeps_file_ids_aligned() {
    let mut d = Driver::new();
    d.apply(Op::SetPolicy {
        dir: 0, // "/"
        policy: RetentionPolicy::AutomatedPurge {
            after: Dur::from_millis(50),
        },
    });
    d.apply(Op::OpenCommit {
        path: 0,
        chunks: vec![1, 2],
        replication: 1,
    });
    // Age the version past the purge deadline; the sweep empties /p0 and
    // drops its entry.
    d.apply(Op::Advance { ms: 400 });
    // Re-create the same path: the live manager assigns a fresh FileId.
    d.apply(Op::OpenCommit {
        path: 0,
        chunks: vec![3],
        replication: 1,
    });

    let restart = d.now + Dur::from_millis(1);
    let mut rebuilt = Manager::new(cfg());
    for record in &d.records {
        rebuilt.replay(record, restart);
    }
    rebuilt.check_invariants();
    assert_eq!(observe(&mut d.mgr, restart), observe(&mut rebuilt, restart));

    // The file id is what CreateFile hands back; both managers must
    // grant the same one for the same path.
    let open_on = |mgr: &mut Manager| {
        let out = mgr.handle_msg(
            CLIENT,
            Msg::CreateFile {
                req: RequestId(7_000_001),
                client: CLIENT,
                path: "/p0".into(),
                stripe_width: 3,
                replication: 1,
                expected_chunks: 1,
            },
            restart,
        );
        match &out[0].msg {
            Msg::CreateFileOk { file, .. } => *file,
            other => panic!("expected CreateFileOk, got {other:?}"),
        }
    };
    assert_eq!(open_on(&mut d.mgr), open_on(&mut rebuilt));
}
