//! Drives a manager, benefactors, and client sessions **purely through the
//! unified [`Node`] trait**: one generic effect executor fulfils every
//! [`Action`] variant and feeds [`Completion`]s back, with no per-role
//! action enums and no legacy `Vec`-returning shims involved.
//!
//! This is the contract the real drivers (`stdchk-net`, `stdchk-sim`) build
//! on; if the protocol round-trips here, a driver only has to execute
//! actions faithfully.

use std::collections::{HashMap, VecDeque};

use stdchk_core::node::{Action, Completion, Node};
use stdchk_core::payload::Payload;
use stdchk_core::session::read::ReadSession;
use stdchk_core::session::write::{
    OpenGrant, SessionConfig, SessionState, WriteProtocol, WriteSession,
};
use stdchk_core::{Benefactor, BenefactorConfig, Manager, PoolConfig, MANAGER_NODE};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::{Dur, Time};

const CLIENT: NodeId = NodeId(7_000);

/// In-flight wire messages: `(from, to, msg)`.
type Wire = VecDeque<(NodeId, NodeId, Msg)>;

/// The generic driver core: drains `poll_action` and fulfils every effect
/// against in-memory stores, feeding completions straight back. Identical
/// code runs the manager, a benefactor, or a client session — that is the
/// point of the unified API.
fn drain_node(
    node: &mut dyn Node,
    me: NodeId,
    now: Time,
    mut blobs: Option<&mut HashMap<ChunkId, Payload>>,
    mut stage: Option<&mut HashMap<u64, Payload>>,
    wire: &mut Wire,
) {
    while let Some(action) = node.poll_action() {
        match action {
            Action::Send { to, msg } => {
                // The message leaves this node instantly; report the
                // transport handoff so OAB accounting can close.
                let req = msg.request_id();
                wire.push_back((me, to, msg));
                if let Some(req) = req {
                    node.handle_completion(Completion::SendDone { req }, now);
                }
            }
            Action::Store { op, chunk, payload } => {
                blobs
                    .as_mut()
                    .expect("node has a blob store")
                    .insert(chunk, payload);
                node.handle_completion(Completion::Stored { op }, now);
            }
            Action::Load { op, chunk, .. } => {
                let payload = blobs
                    .as_mut()
                    .expect("node has a blob store")
                    .get(&chunk)
                    .cloned()
                    .expect("load of stored chunk");
                node.handle_completion(Completion::Loaded { op, chunk, payload }, now);
            }
            Action::DropChunk { chunk } => {
                blobs
                    .as_mut()
                    .expect("node has a blob store")
                    .remove(&chunk);
            }
            Action::StageAppend {
                op,
                offset,
                payload,
            } => {
                stage
                    .as_mut()
                    .expect("node has a stage")
                    .insert(offset, payload);
                node.handle_completion(Completion::StageAppended { op }, now);
            }
            Action::StageFetch { op, offset, .. } => {
                let payload = stage
                    .as_mut()
                    .expect("node has a stage")
                    .get(&offset)
                    .cloned()
                    .expect("staged bytes present");
                node.handle_completion(Completion::StageFetched { op, payload }, now);
            }
            Action::StageDiscard { upto } => {
                stage
                    .as_mut()
                    .expect("node has a stage")
                    .retain(|off, _| *off >= upto);
            }
            Action::MetaAppend { .. } => {
                // This driver runs volatile managers; a record would only
                // appear if a test enabled the WAL, and then it is simply
                // not persisted.
            }
        }
    }
}

struct Harness {
    now: Time,
    mgr: Manager,
    benefs: Vec<Benefactor>,
    blobs: Vec<HashMap<ChunkId, Payload>>,
    wire: Wire,
}

/// Client-side state for one write session driven through the trait.
struct ClientWrite {
    session: WriteSession,
    stage: HashMap<u64, Payload>,
}

impl Harness {
    fn new(n_benefactors: usize) -> Harness {
        let mut cfg = PoolConfig::fast_for_tests();
        cfg.chunk_size = 1024;
        let mut h = Harness {
            now: Time::ZERO,
            mgr: Manager::new(cfg),
            benefs: (0..n_benefactors)
                .map(|i| {
                    Benefactor::new(
                        NodeId(1 + i as u64),
                        64 << 20,
                        BenefactorConfig::fast_for_tests(),
                    )
                })
                .collect(),
            blobs: vec![HashMap::new(); n_benefactors],
            wire: VecDeque::new(),
        };
        // Benefactors announce themselves through their own timers: every
        // pre-assigned node's first `handle_timeout` emits a heartbeat.
        h.fire_due_timers();
        h.run(None, None);
        h
    }

    /// Fires `handle_timeout` on every node whose `poll_timeout` is due.
    fn fire_due_timers(&mut self) {
        if self.mgr.poll_timeout().is_some_and(|t| t <= self.now) {
            self.mgr.handle_timeout(self.now);
            drain_node(
                &mut self.mgr,
                MANAGER_NODE,
                self.now,
                None,
                None,
                &mut self.wire,
            );
        }
        for (i, b) in self.benefs.iter_mut().enumerate() {
            if b.poll_timeout().is_some_and(|t| t <= self.now) {
                let me = b.id();
                b.handle_timeout(self.now);
                drain_node(
                    b,
                    me,
                    self.now,
                    Some(&mut self.blobs[i]),
                    None,
                    &mut self.wire,
                );
            }
        }
    }

    /// Routes queued messages until quiescent, delivering client-addressed
    /// messages to the active session (if any).
    fn run(&mut self, mut w: Option<&mut ClientWrite>, mut r: Option<&mut ReadSession>) {
        let mut guard = 0;
        while let Some((from, to, msg)) = self.wire.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "message storm");
            if to == MANAGER_NODE {
                self.mgr.handle(from, msg, self.now);
                drain_node(
                    &mut self.mgr,
                    MANAGER_NODE,
                    self.now,
                    None,
                    None,
                    &mut self.wire,
                );
            } else if to == CLIENT {
                if let Some(cw) = w.as_deref_mut() {
                    cw.session.handle(from, msg, self.now);
                    drain_node(
                        &mut cw.session,
                        CLIENT,
                        self.now,
                        None,
                        Some(&mut cw.stage),
                        &mut self.wire,
                    );
                } else if let Some(rs) = r.as_deref_mut() {
                    rs.handle(from, msg, self.now);
                    drain_node(rs, CLIENT, self.now, None, None, &mut self.wire);
                }
            } else if let Some(i) = self.benefs.iter().position(|b| b.id() == to) {
                self.benefs[i].handle(from, msg, self.now);
                drain_node(
                    &mut self.benefs[i],
                    to,
                    self.now,
                    Some(&mut self.blobs[i]),
                    None,
                    &mut self.wire,
                );
            }
        }
    }

    fn advance(&mut self, d: Dur) {
        self.now += d;
        self.fire_due_timers();
        self.run(None, None);
    }

    /// Opens a write session by exchanging `CreateFile` through the trait.
    fn open(&mut self, path: &str, protocol: WriteProtocol) -> ClientWrite {
        self.mgr.handle(
            CLIENT,
            Msg::CreateFile {
                req: RequestId(1),
                client: CLIENT,
                path: path.to_string(),
                stripe_width: 2,
                replication: 1,
                expected_chunks: 4,
            },
            self.now,
        );
        let grant = loop {
            let Some(a) = self.mgr.poll_action() else {
                panic!("manager never answered CreateFile");
            };
            match a {
                Action::Send {
                    to,
                    msg:
                        Msg::CreateFileOk {
                            file,
                            version,
                            reservation,
                            stripe,
                            prev_chunks,
                            chunk_size,
                            ..
                        },
                } => {
                    assert_eq!(to, CLIENT);
                    break OpenGrant {
                        path: path.to_string(),
                        file,
                        version,
                        reservation,
                        stripe,
                        prev_chunks,
                        chunk_size,
                        reserved_chunks: 4,
                    };
                }
                Action::Send { to, msg } => self.wire.push_back((MANAGER_NODE, to, msg)),
                other => panic!("unexpected action {other:?}"),
            }
        };
        let cfg = SessionConfig {
            protocol,
            ..SessionConfig::default()
        };
        ClientWrite {
            session: WriteSession::new(42, CLIENT, grant, cfg, self.now),
            stage: HashMap::new(),
        }
    }

    /// Writes `data` through a session and commits, all via the trait.
    fn write_file(&mut self, path: &str, protocol: WriteProtocol, data: &[u8]) {
        let mut cw = self.open(path, protocol);
        for piece in data.chunks(700) {
            cw.session.write(Payload::real(piece.to_vec()), self.now);
            drain_node(
                &mut cw.session,
                CLIENT,
                self.now,
                None,
                Some(&mut cw.stage),
                &mut self.wire,
            );
            self.run(Some(&mut cw), None);
        }
        cw.session.close(self.now);
        drain_node(
            &mut cw.session,
            CLIENT,
            self.now,
            None,
            Some(&mut cw.stage),
            &mut self.wire,
        );
        self.run(Some(&mut cw), None);
        assert_eq!(
            cw.session.state(),
            SessionState::Done,
            "session must commit through the trait"
        );
    }

    /// Reads `path` back through a `ReadSession` driven via the trait.
    fn read_file(&mut self, path: &str) -> Vec<u8> {
        self.mgr.handle(
            CLIENT,
            Msg::GetFile {
                req: RequestId(2),
                path: path.to_string(),
                version: None,
            },
            self.now,
        );
        let view = match self.mgr.poll_action() {
            Some(Action::Send {
                msg: Msg::FileViewReply { view, .. },
                ..
            }) => view,
            other => panic!("expected file view, got {other:?}"),
        };
        let mut rs = ReadSession::new(43, view, 4, true);
        let mut out = Vec::new();
        let mut guard = 0;
        while !rs.is_done() {
            guard += 1;
            assert!(guard < 100_000, "read stuck");
            // poll_action fills the read-ahead window lazily.
            drain_node(&mut rs, CLIENT, self.now, None, None, &mut self.wire);
            self.run(None, Some(&mut rs));
            while let Some((_, p)) = rs.next_ready() {
                out.extend_from_slice(&p.bytes());
            }
        }
        out
    }
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| stdchk_util::mix64(seed as u64 ^ (i as u64).wrapping_mul(0x9e37)) as u8)
        .collect()
}

#[test]
fn full_exchange_through_node_trait_sliding_window() {
    let mut h = Harness::new(3);
    assert_eq!(h.mgr.online_benefactors(), 3, "heartbeats registered");
    let data = pattern(5000, 1);
    h.write_file(
        "/nt/sw",
        WriteProtocol::SlidingWindow { buffer: 16 << 20 },
        &data,
    );
    h.mgr.check_invariants();
    assert_eq!(h.read_file("/nt/sw"), data);
}

#[test]
fn full_exchange_through_node_trait_staged_protocols() {
    // CLW and IW exercise the Stage* actions of the unified enum.
    let mut h = Harness::new(3);
    let data = pattern(4096, 2);
    h.write_file("/nt/clw", WriteProtocol::CompleteLocal, &data);
    assert_eq!(h.read_file("/nt/clw"), data);
    let data2 = pattern(8192, 3);
    h.write_file(
        "/nt/iw",
        WriteProtocol::Incremental { temp_size: 2048 },
        &data2,
    );
    assert_eq!(h.read_file("/nt/iw"), data2);
    h.mgr.check_invariants();
}

#[test]
fn poll_timeout_schedules_heartbeats_and_expiry() {
    let mut h = Harness::new(2);
    // Every node advertises a next deadline.
    assert!(
        h.mgr.poll_timeout().is_some(),
        "manager has periodic sweeps"
    );
    for b in &h.benefs {
        let t = b.poll_timeout().expect("benefactor heartbeats");
        assert!(t > h.now, "already-fired timers must re-arm in the future");
    }
    let before = h.mgr.stats().transactions;
    // Following poll_timeout keeps heartbeats flowing...
    for _ in 0..4 {
        let next = h
            .benefs
            .iter()
            .filter_map(|b| b.poll_timeout())
            .min()
            .expect("deadline");
        let d = next.since(h.now);
        h.advance(d);
    }
    assert!(h.mgr.stats().transactions > before, "heartbeats arrived");
    assert_eq!(h.mgr.online_benefactors(), 2);
    // ...and starving the timers expires the benefactors.
    h.now += Dur::from_secs(30);
    h.mgr.handle_timeout(h.now);
    assert_eq!(h.mgr.online_benefactors(), 0, "silent donors expire");
}
