//! End-to-end protocol flows with all state machines wired together through
//! an in-memory router: manager + benefactors + write/read sessions.
//!
//! These tests exercise the same code paths the real network driver and the
//! simulator drive, with instant "I/O": every action is fulfilled
//! immediately and messages are delivered in FIFO order.

use std::collections::{HashMap, VecDeque};

use stdchk_core::payload::Payload;
use stdchk_core::session::read::{ReadAction, ReadSession};
use stdchk_core::session::write::{
    OpenGrant, SessionConfig, SessionState, WriteAction, WriteProtocol, WriteSession,
};
use stdchk_core::{
    Benefactor, BenefactorAction, BenefactorConfig, Manager, PoolConfig, MANAGER_NODE,
};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::{Dur, Time};

const CLIENT: NodeId = NodeId(9000);

struct Pool {
    mgr: Manager,
    benefactors: HashMap<NodeId, Benefactor>,
    /// Driver-side blob store per benefactor (what `Store`/`Load` act on).
    blobs: HashMap<NodeId, HashMap<ChunkId, Payload>>,
    /// Messages in flight: (from, to, msg).
    queue: VecDeque<(NodeId, NodeId, Msg)>,
    /// Benefactors that silently drop everything (crash simulation).
    dead: Vec<NodeId>,
    now: Time,
    put_count: u64,
    next_session: u64,
}

impl Pool {
    fn new(n_benefactors: usize) -> Pool {
        let mut cfg = PoolConfig::fast_for_tests();
        cfg.chunk_size = 1024;
        let mut pool = Pool {
            mgr: Manager::new(cfg),
            benefactors: HashMap::new(),
            blobs: HashMap::new(),
            queue: VecDeque::new(),
            dead: Vec::new(),
            now: Time::ZERO,
            put_count: 0,
            next_session: 10,
        };
        for i in 0..n_benefactors {
            let id = NodeId(100 + i as u64);
            pool.benefactors.insert(
                id,
                Benefactor::new(id, 64 << 20, BenefactorConfig::fast_for_tests()),
            );
            pool.blobs.insert(id, HashMap::new());
            // Register through a heartbeat (simulator-style implicit join).
            pool.queue.push_back((
                id,
                MANAGER_NODE,
                Msg::Heartbeat {
                    node: id,
                    free_space: 64 << 20,
                    total_space: 64 << 20,
                    addr: String::new(),
                },
            ));
        }
        pool.run(None);
        pool
    }

    fn benefactor_ids(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.benefactors.keys().copied().collect();
        v.sort();
        v
    }

    fn apply_benefactor_actions(&mut self, id: NodeId, actions: Vec<BenefactorAction>) {
        for a in actions {
            match a {
                BenefactorAction::Send { to, msg } => self.queue.push_back((id, to, msg)),
                BenefactorAction::Store { op, chunk, payload } => {
                    self.blobs
                        .get_mut(&id)
                        .expect("blob store")
                        .insert(chunk, payload);
                    let b = self.benefactors.get_mut(&id).expect("benefactor");
                    let more = b.on_store_complete(op, self.now);
                    self.apply_benefactor_actions(id, more);
                }
                BenefactorAction::Load { op, chunk, .. } => {
                    let payload = self.blobs[&id]
                        .get(&chunk)
                        .cloned()
                        .expect("load of stored chunk");
                    let b = self.benefactors.get_mut(&id).expect("benefactor");
                    let more = b.on_load_complete(op, chunk, payload, self.now);
                    self.apply_benefactor_actions(id, more);
                }
                BenefactorAction::Drop { chunk } => {
                    self.blobs.get_mut(&id).expect("blob store").remove(&chunk);
                }
            }
        }
    }

    /// Routes queued messages until quiescent. Client-addressed messages go
    /// to `session` when provided.
    fn run(&mut self, mut session: Option<&mut Session>) {
        let mut guard = 0;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "message storm");
            if self.dead.contains(&to) || self.dead.contains(&from) {
                continue; // crashed node: drop silently
            }
            if to == MANAGER_NODE {
                let out = self.mgr.handle_msg(from, msg, self.now);
                for s in out {
                    self.queue.push_back((MANAGER_NODE, s.to, s.msg));
                }
            } else if to == CLIENT {
                if let Some(s) = session.as_deref_mut() {
                    s.on_msg(self, msg);
                }
            } else if self.benefactors.contains_key(&to) {
                if matches!(msg, Msg::PutChunk { .. }) {
                    self.put_count += 1;
                }
                let b = self.benefactors.get_mut(&to).expect("benefactor");
                let actions = b.handle_msg(from, msg, self.now);
                self.apply_benefactor_actions(to, actions);
            }
        }
    }

    fn tick_all(&mut self, session: Option<&mut Session>) {
        let sends = self.mgr.tick(self.now);
        for s in sends {
            self.queue.push_back((MANAGER_NODE, s.to, s.msg));
        }
        let ids = self.benefactor_ids();
        for id in ids {
            if self.dead.contains(&id) {
                continue;
            }
            let b = self.benefactors.get_mut(&id).expect("benefactor");
            let actions = b.tick(self.now);
            self.apply_benefactor_actions(id, actions);
        }
        self.run(session);
    }

    fn advance(&mut self, d: Dur, session: Option<&mut Session>) {
        self.now += d;
        self.tick_all(session);
    }

    /// Opens a write session via the manager.
    fn open(&mut self, path: &str, cfg: SessionConfig, replication: u32) -> Session {
        let out = self.mgr.handle_msg(
            CLIENT,
            Msg::CreateFile {
                req: RequestId(1),
                client: CLIENT,
                path: path.to_string(),
                stripe_width: 4,
                replication,
                expected_chunks: 4,
            },
            self.now,
        );
        let grant = match &out[0].msg {
            Msg::CreateFileOk {
                file,
                version,
                reservation,
                stripe,
                prev_chunks,
                chunk_size,
                ..
            } => OpenGrant {
                path: path.to_string(),
                file: *file,
                version: *version,
                reservation: *reservation,
                stripe: stripe.clone(),
                prev_chunks: prev_chunks.clone(),
                chunk_size: *chunk_size,
                reserved_chunks: 4,
            },
            other => panic!("open failed: {other:?}"),
        };
        self.next_session += 1;
        Session {
            inner: WriteSession::new(self.next_session, CLIENT, grant, cfg, self.now),
            stage: HashMap::new(),
            saw_put_before_close: false,
            discards: 0,
        }
    }
}

/// Client-side driver state around a WriteSession.
struct Session {
    inner: WriteSession,
    /// Driver-owned stage: offset → payload.
    stage: HashMap<u64, Payload>,
    saw_put_before_close: bool,
    discards: usize,
}

impl Session {
    fn apply(&mut self, pool: &mut Pool, actions: Vec<WriteAction>) {
        for a in actions {
            match a {
                WriteAction::Send { to, msg } => {
                    if matches!(msg, Msg::PutChunk { .. })
                        && self.inner.state() == SessionState::Open
                    {
                        self.saw_put_before_close = true;
                    }
                    // The message leaves the client instantly: report "sent".
                    if let (Msg::PutChunk { req, .. }, true) = (&msg, !pool.dead.contains(&to)) {
                        let req = *req;
                        pool.queue.push_back((CLIENT, to, msg));
                        let more = self.inner.on_put_sent(req, pool.now);
                        self.apply(pool, more);
                    } else if let Msg::PutChunk { req, .. } = &msg {
                        // Destination dead: the transport reports failure.
                        let req = *req;
                        let more = self.inner.on_put_failed(req, pool.now);
                        self.apply(pool, more);
                    } else {
                        pool.queue.push_back((CLIENT, to, msg));
                    }
                }
                WriteAction::StageAppend {
                    op,
                    offset,
                    payload,
                } => {
                    self.stage.insert(offset, payload);
                    let more = self.inner.on_stage_append_done(op, pool.now);
                    self.apply(pool, more);
                }
                WriteAction::StageFetch { op, offset, .. } => {
                    let p = self.stage.get(&offset).cloned().expect("staged data");
                    let more = self.inner.on_stage_fetch(op, p, pool.now);
                    self.apply(pool, more);
                }
                WriteAction::StageDiscard { upto } => {
                    self.discards += 1;
                    self.stage.retain(|off, _| *off >= upto);
                }
            }
        }
    }

    fn on_msg(&mut self, pool: &mut Pool, msg: Msg) {
        let actions = self.inner.on_msg(msg, pool.now);
        self.apply(pool, actions);
    }

    fn write(&mut self, pool: &mut Pool, data: &[u8]) {
        self.inner.write(Payload::real(data.to_vec()), pool.now);
        let actions = self.inner.take_actions();
        self.apply(pool, actions);
        pool.run(Some(self));
    }

    fn close(&mut self, pool: &mut Pool) {
        self.inner.close(pool.now);
        let actions = self.inner.take_actions();
        self.apply(pool, actions);
        pool.run(Some(self));
    }
}

fn session_new(pool: &mut Pool, path: &str, cfg: SessionConfig, repl: u32) -> Session {
    pool.open(path, cfg, repl)
}

/// Reads a file back through a ReadSession and returns its bytes.
fn read_back(pool: &mut Pool, path: &str) -> Vec<u8> {
    let out = pool.mgr.handle_msg(
        CLIENT,
        Msg::GetFile {
            req: RequestId(999),
            path: path.to_string(),
            version: None,
        },
        pool.now,
    );
    let view = match &out[0].msg {
        Msg::FileViewReply { view, .. } => view.clone(),
        other => panic!("get failed: {other:?}"),
    };
    let mut rs = ReadSession::new(2, view, 4, true);
    let mut result = Vec::new();
    let mut pending: VecDeque<ReadAction> = rs.poll(pool.now).into();
    let mut guard = 0;
    while !rs.is_done() {
        guard += 1;
        assert!(guard < 100_000, "read stuck");
        if let Some(ReadAction::Send { to, msg }) = pending.pop_front() {
            // Serve the GetChunk through the benefactor SM.
            let b = pool.benefactors.get_mut(&to).expect("holder");
            let actions = b.handle_msg(CLIENT, msg, pool.now);
            // Collect replies to the client.
            let mut replies = Vec::new();
            for a in actions {
                match a {
                    BenefactorAction::Load { op, chunk, .. } => {
                        let payload = pool.blobs[&to].get(&chunk).cloned().expect("blob");
                        let b = pool.benefactors.get_mut(&to).expect("holder");
                        for r in b.on_load_complete(op, chunk, payload, pool.now) {
                            if let BenefactorAction::Send { to: c, msg } = r {
                                assert_eq!(c, CLIENT);
                                replies.push(msg);
                            }
                        }
                    }
                    BenefactorAction::Send { to: c, msg } => {
                        assert_eq!(c, CLIENT);
                        replies.push(msg);
                    }
                    _ => {}
                }
            }
            for r in replies {
                pending.extend(rs.on_msg(r, pool.now));
            }
        } else {
            pending.extend(rs.poll(pool.now));
        }
        while let Some((_, p)) = rs.next_ready() {
            result.extend_from_slice(&p.bytes());
        }
    }
    result
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    // Aperiodic content so chunks are distinct unless a test makes them not.
    (0..len)
        .map(|i| stdchk_util::mix64(seed as u64 ^ (i as u64).wrapping_mul(0x9e37)) as u8)
        .collect()
}

fn sw_cfg() -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer: 16 << 20 },
        ..SessionConfig::default()
    }
}

#[test]
fn sliding_window_write_then_read_roundtrip() {
    let mut pool = Pool::new(4);
    let mut s = session_new(&mut pool, "/app/ck.n1", sw_cfg(), 1);
    let data = pattern(5000, 1);
    for piece in data.chunks(700) {
        s.write(&mut pool, piece);
    }
    s.close(&mut pool);
    assert!(s.inner.is_done(), "state: {:?}", s.inner.state());
    assert!(s.inner.app_close_returned());
    let stats = s.inner.stats();
    assert_eq!(stats.bytes_written, 5000);
    assert_eq!(stats.bytes_stored, 5000);
    pool.mgr.check_invariants();
    assert_eq!(read_back(&mut pool, "/app/ck.n1"), data);
}

/// Regression: a sliding window smaller than one offer batch must still
/// make progress. Held offers count against `buffered`, so if partial
/// batches only flushed at OFFER_BATCH or close, a 4-chunk window would
/// deadlock with the writer: offers waiting for more writes, writes
/// waiting for the window those held offers occupy.
#[test]
fn sliding_window_smaller_than_offer_batch_keeps_moving() {
    let mut pool = Pool::new(4);
    let cfg = SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer: 4 * 1024 },
        ..SessionConfig::default()
    };
    let mut s = session_new(&mut pool, "/app/small-window.n1", cfg, 1);
    let data = pattern(40 * 1024, 7); // 40 chunks through a 4-chunk window
    let mut off = 0;
    let mut guard = 0;
    while off < data.len() {
        guard += 1;
        assert!(guard < 10_000, "writer stuck");
        let w = s.inner.writable() as usize;
        if w == 0 {
            // Everything in flight has already resolved (the harness runs
            // the pool to quiescence inside `write`), so a blocked window
            // means offers are stranded behind the batch threshold.
            pool.run(Some(&mut s));
            assert!(
                s.inner.writable() > 0,
                "window never reopened: partial offer batch not flushed"
            );
            continue;
        }
        let n = w.min(data.len() - off).min(700);
        s.write(&mut pool, &data[off..off + n]);
        off += n;
    }
    s.close(&mut pool);
    assert!(s.inner.is_done(), "state: {:?}", s.inner.state());
    let stats = s.inner.stats();
    assert_eq!(stats.bytes_written, 40 * 1024);
    pool.mgr.check_invariants();
    assert_eq!(read_back(&mut pool, "/app/small-window.n1"), data);
}

#[test]
fn complete_local_write_pushes_only_after_close() {
    let mut pool = Pool::new(3);
    let cfg = SessionConfig {
        protocol: WriteProtocol::CompleteLocal,
        ..SessionConfig::default()
    };
    let mut s = session_new(&mut pool, "/clw", cfg, 1);
    let data = pattern(4096, 2);
    for piece in data.chunks(512) {
        s.write(&mut pool, piece);
    }
    assert!(!s.saw_put_before_close, "CLW must not push before close");
    assert_eq!(pool.put_count, 0);
    s.close(&mut pool);
    assert!(s.inner.is_done());
    assert_eq!(read_back(&mut pool, "/clw"), data);
}

#[test]
fn incremental_write_overlaps_push_with_writing() {
    let mut pool = Pool::new(3);
    let cfg = SessionConfig {
        protocol: WriteProtocol::Incremental { temp_size: 2048 },
        ..SessionConfig::default()
    };
    let mut s = session_new(&mut pool, "/iw", cfg, 1);
    let data = pattern(8192, 3);
    for piece in data.chunks(512) {
        s.write(&mut pool, piece);
    }
    assert!(
        s.saw_put_before_close,
        "IW must push sealed temps while writing continues"
    );
    s.close(&mut pool);
    assert!(s.inner.is_done());
    assert!(s.discards > 0, "IW should discard pushed temps");
    assert_eq!(read_back(&mut pool, "/iw"), data);
}

#[test]
fn dedup_skips_transfer_of_unchanged_chunks() {
    let mut pool = Pool::new(3);
    let data = pattern(4096, 4);
    // Version 1: everything is new.
    let mut s1 = session_new(
        &mut pool,
        "/app/x",
        SessionConfig {
            dedup: true,
            ..sw_cfg()
        },
        1,
    );
    s1.write(&mut pool, &data);
    s1.close(&mut pool);
    assert!(s1.inner.is_done());
    let puts_v1 = pool.put_count;
    assert!(puts_v1 > 0);
    // Version 2: identical content — zero transfers.
    let mut s2 = session_new(
        &mut pool,
        "/app/x",
        SessionConfig {
            dedup: true,
            ..sw_cfg()
        },
        1,
    );
    s2.write(&mut pool, &data);
    s2.close(&mut pool);
    assert!(s2.inner.is_done(), "state: {:?}", s2.inner.state());
    assert_eq!(
        pool.put_count, puts_v1,
        "identical version must transfer nothing"
    );
    let st = s2.inner.stats();
    assert_eq!(st.bytes_stored, 0);
    assert_eq!(st.bytes_deduped, st.bytes_written);
    pool.mgr.check_invariants();
    // Both versions readable; v2 shares v1's chunks.
    assert_eq!(read_back(&mut pool, "/app/x"), data);
}

#[test]
fn partial_dedup_transfers_only_changed_chunks() {
    let mut pool = Pool::new(3);
    let mut data = pattern(4096, 5);
    let mut s1 = session_new(
        &mut pool,
        "/app/y",
        SessionConfig {
            dedup: true,
            ..sw_cfg()
        },
        1,
    );
    s1.write(&mut pool, &data);
    s1.close(&mut pool);
    let puts_v1 = pool.put_count;
    // Dirty one chunk (chunk size is 1024).
    data[2048] ^= 0xff;
    let mut s2 = session_new(
        &mut pool,
        "/app/y",
        SessionConfig {
            dedup: true,
            ..sw_cfg()
        },
        1,
    );
    s2.write(&mut pool, &data);
    s2.close(&mut pool);
    assert!(s2.inner.is_done());
    assert_eq!(pool.put_count - puts_v1, 1, "exactly one chunk re-shipped");
    assert_eq!(read_back(&mut pool, "/app/y"), data);
}

#[test]
fn benefactor_failure_mid_write_retries_elsewhere() {
    let mut pool = Pool::new(4);
    let mut s = session_new(&mut pool, "/resilient", sw_cfg(), 1);
    // Kill one stripe member before any data flows.
    let victim = pool.benefactor_ids()[1];
    pool.dead.push(victim);
    let data = pattern(6144, 6);
    for piece in data.chunks(1024) {
        s.write(&mut pool, piece);
    }
    s.close(&mut pool);
    assert!(s.inner.is_done(), "state: {:?}", s.inner.state());
    assert_eq!(read_back(&mut pool, "/resilient"), data);
}

#[test]
fn reservation_extension_kicks_in_for_long_files() {
    let mut pool = Pool::new(3);
    // Initial reservation covers 4 chunks; write 12.
    let mut s = session_new(&mut pool, "/long", sw_cfg(), 1);
    let data = pattern(12 * 1024, 7);
    for piece in data.chunks(1024) {
        s.write(&mut pool, piece);
    }
    s.close(&mut pool);
    assert!(s.inner.is_done(), "state: {:?}", s.inner.state());
    assert_eq!(read_back(&mut pool, "/long"), data);
}

#[test]
fn pessimistic_close_waits_for_replication() {
    let mut pool = Pool::new(4);
    let cfg = SessionConfig {
        pessimistic: true,
        ..sw_cfg()
    };
    let mut s = session_new(&mut pool, "/safe", cfg, 2);
    let data = pattern(3072, 8);
    s.write(&mut pool, &data);
    s.close(&mut pool);
    // The in-memory pool executes replication inline, so by quiescence the
    // session is done AND every chunk has two replicas.
    assert!(s.inner.is_done(), "state: {:?}", s.inner.state());
    let out = pool.mgr.handle_msg(
        CLIENT,
        Msg::GetFile {
            req: RequestId(55),
            path: "/safe".into(),
            version: None,
        },
        pool.now,
    );
    match &out[0].msg {
        Msg::FileViewReply { view, .. } => {
            for (c, locs) in &view.locations {
                assert!(locs.len() >= 2, "chunk {c} has {} replicas", locs.len());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    pool.mgr.check_invariants();
}

#[test]
fn stashed_commits_survive_manager_restart() {
    let mut pool = Pool::new(3);
    let cfg = SessionConfig {
        stash_commits: true,
        ..sw_cfg()
    };
    let mut s = session_new(&mut pool, "/durable", cfg, 1);
    let data = pattern(4096, 9);
    s.write(&mut pool, &data);
    s.close(&mut pool);
    assert!(s.inner.is_done());
    let stashed: usize = pool.benefactors.values().map(|b| b.stashed_commits()).sum();
    assert!(stashed > 0, "stripe benefactors must hold the stash");

    // The manager loses all metadata.
    pool.mgr = Manager::new(PoolConfig::fast_for_tests());
    let out = pool.mgr.handle_msg(
        CLIENT,
        Msg::GetFile {
            req: RequestId(77),
            path: "/durable".into(),
            version: None,
        },
        pool.now,
    );
    assert!(
        matches!(out[0].msg, Msg::ErrorReply { .. }),
        "metadata gone"
    );

    // Benefactors heartbeat (re-registering) and re-offer their stashes.
    for _ in 0..5 {
        pool.advance(Dur::from_millis(120), None);
    }
    let out = pool.mgr.handle_msg(
        CLIENT,
        Msg::GetFile {
            req: RequestId(78),
            path: "/durable".into(),
            version: None,
        },
        pool.now,
    );
    assert!(
        matches!(out[0].msg, Msg::FileViewReply { .. }),
        "recovered commit must be readable: {out:?}"
    );
    assert_eq!(pool.mgr.stats().recovered_commits, 1);
    assert_eq!(read_back(&mut pool, "/durable"), data);
}

#[test]
fn gc_reclaims_orphans_after_aborted_session() {
    let mut pool = Pool::new(2);
    let mut s = session_new(&mut pool, "/aborted", sw_cfg(), 1);
    let data = pattern(2048, 10);
    s.write(&mut pool, &data);
    // Client dies without closing: chunks are on benefactors, no commit.
    let stored_before: usize = pool.blobs.values().map(|m| m.len()).sum();
    assert!(stored_before > 0);
    drop(s);
    // Time passes: reservation expires, GC grace elapses, GC runs.
    for _ in 0..10 {
        pool.advance(Dur::from_millis(120), None);
    }
    let stored_after: usize = pool.blobs.values().map(|m| m.len()).sum();
    assert_eq!(stored_after, 0, "orphaned chunks must be collected");
    pool.mgr.check_invariants();
}

#[test]
fn oab_and_asb_are_ordered() {
    let mut pool = Pool::new(3);
    let mut s = session_new(&mut pool, "/metrics", sw_cfg(), 1);
    s.write(&mut pool, &pattern(4096, 11));
    pool.now += Dur::from_millis(5);
    s.close(&mut pool);
    let st = s.inner.stats();
    let close_at = st.app_close_at.expect("closed");
    let done_at = st.done_at.expect("done");
    assert!(close_at <= done_at);
    assert!(st.oab().is_some());
    assert!(st.asb().is_some());
}
