//! Property test: the manager's metadata invariants survive arbitrary
//! interleavings of client and maintenance operations.
//!
//! A random sequence of opens, commits (with dedup against arbitrary prior
//! chunks), aborts, deletes, policy changes, node churn and clock advances
//! is applied; after every step the refcount/location/reservation audit
//! (`Manager::check_invariants`) must hold, and at quiescence with all
//! files deleted, no chunk metadata may remain.

use proptest::prelude::*;

use stdchk_core::{Manager, PoolConfig};
use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, ReservationId};
use stdchk_proto::msg::Msg;
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::{Dur, Time};

#[derive(Clone, Debug)]
enum Op {
    OpenCommit {
        path: u8,
        chunks: Vec<u8>,
        replication: u8,
    },
    OpenAbort {
        path: u8,
    },
    OpenLeak {
        path: u8,
    },
    Delete {
        path: u8,
    },
    SetReplacePolicy {
        keep: u8,
    },
    Heartbeats,
    KillNode {
        which: u8,
    },
    Advance {
        ms: u16,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, proptest::collection::vec(0u8..32, 1..6), 1u8..3).prop_map(
            |(path, chunks, replication)| Op::OpenCommit {
                path,
                chunks,
                replication
            }
        ),
        (0u8..6).prop_map(|path| Op::OpenAbort { path }),
        (0u8..6).prop_map(|path| Op::OpenLeak { path }),
        (0u8..6).prop_map(|path| Op::Delete { path }),
        (1u8..4).prop_map(|keep| Op::SetReplacePolicy { keep }),
        Just(Op::Heartbeats),
        (0u8..4).prop_map(|which| Op::KillNode { which }),
        (10u16..400).prop_map(|ms| Op::Advance { ms }),
    ]
}

struct Driver {
    mgr: Manager,
    now: Time,
    req: u64,
    nodes: Vec<NodeId>,
    dead: Vec<bool>,
}

impl Driver {
    fn new() -> Driver {
        let mut mgr = Manager::new(PoolConfig::fast_for_tests());
        let now = Time::ZERO;
        let mut nodes = Vec::new();
        for i in 0..4u64 {
            let out = mgr.handle_msg(
                NodeId(500 + i),
                Msg::JoinRequest {
                    req: RequestId(i + 1),
                    addr: String::new(),
                    total_space: 1 << 30,
                },
                now,
            );
            if let Msg::JoinOk { node, .. } = out[0].msg {
                nodes.push(node);
            }
        }
        Driver {
            mgr,
            now,
            req: 100,
            nodes,
            dead: vec![false; 4],
        }
    }

    fn req(&mut self) -> RequestId {
        self.req += 1;
        RequestId(self.req)
    }

    fn open(&mut self, path: u8, replication: u8) -> Option<(ReservationId, Vec<NodeId>)> {
        let req = self.req();
        let out = self.mgr.handle_msg(
            NodeId(9000),
            Msg::CreateFile {
                req,
                client: NodeId(9000),
                path: format!("/p{path}"),
                stripe_width: 3,
                replication: replication as u32,
                expected_chunks: 8,
            },
            self.now,
        );
        match &out[0].msg {
            Msg::CreateFileOk {
                reservation,
                stripe,
                ..
            } => Some((*reservation, stripe.clone())),
            _ => None,
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::OpenCommit {
                path,
                chunks,
                replication,
            } => {
                let Some((res, stripe)) = self.open(path, replication) else {
                    return;
                };
                let entries: Vec<ChunkEntry> = chunks
                    .iter()
                    .map(|c| ChunkEntry {
                        id: ChunkId::test_id(*c as u64),
                        size: 100,
                    })
                    .collect();
                let mut placements = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (i, e) in entries.iter().enumerate() {
                    if seen.insert(e.id) {
                        placements.push((e.id, vec![stripe[i % stripe.len()]]));
                    }
                }
                let req = self.req();
                self.mgr.handle_msg(
                    NodeId(9000),
                    Msg::CommitChunkMap {
                        req,
                        reservation: res,
                        entries,
                        placements,
                        pessimistic: false,
                        dedup: Default::default(),
                    },
                    self.now,
                );
            }
            Op::OpenAbort { path } => {
                if let Some((res, _)) = self.open(path, 1) {
                    let req = self.req();
                    self.mgr.handle_msg(
                        NodeId(9000),
                        Msg::AbortWrite {
                            req,
                            reservation: res,
                        },
                        self.now,
                    );
                }
            }
            Op::OpenLeak { path } => {
                // Open and walk away: the reservation must expire cleanly.
                let _ = self.open(path, 1);
            }
            Op::Delete { path } => {
                let req = self.req();
                self.mgr.handle_msg(
                    NodeId(9000),
                    Msg::DeleteFile {
                        req,
                        path: format!("/p{path}"),
                    },
                    self.now,
                );
            }
            Op::SetReplacePolicy { keep } => {
                let req = self.req();
                self.mgr.handle_msg(
                    NodeId(9000),
                    Msg::SetPolicy {
                        req,
                        dir: "/".into(),
                        policy: RetentionPolicy::AutomatedReplace {
                            keep_last: keep as u32,
                        },
                        repl_bounds: None,
                    },
                    self.now,
                );
            }
            Op::Heartbeats => {
                for (i, n) in self.nodes.clone().into_iter().enumerate() {
                    if !self.dead[i] {
                        self.mgr.handle_msg(
                            n,
                            Msg::Heartbeat {
                                node: n,
                                free_space: 1 << 30,
                                total_space: 1 << 30,
                                addr: String::new(),
                            },
                            self.now,
                        );
                    }
                }
            }
            Op::KillNode { which } => {
                // At least one node stays alive so progress remains possible.
                let idx = (which as usize) % self.dead.len();
                if self.dead.iter().filter(|d| !**d).count() > 1 {
                    self.dead[idx] = true;
                }
            }
            Op::Advance { ms } => {
                self.now += Dur::from_millis(ms as u64);
                self.mgr.tick(self.now);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_operation_sequences(
        ops in proptest::collection::vec(arb_op(), 1..60)
    ) {
        let mut d = Driver::new();
        for op in ops {
            d.apply(op);
            d.mgr.check_invariants();
        }
        // Quiesce: heartbeat everyone, delete every file, settle timers.
        d.apply(Op::Heartbeats);
        for p in 0..6u8 {
            d.apply(Op::Delete { path: p });
        }
        for _ in 0..8 {
            d.apply(Op::Advance { ms: 400 });
            d.apply(Op::Heartbeats);
        }
        d.mgr.check_invariants();
        prop_assert_eq!(
            d.mgr.stats().commits >= 1 || d.mgr.stats().transactions > 0,
            true
        );
    }
}
