//! Property tests for the chunking heuristics.
//!
//! The central invariant: for every chunker and every input, the chunk list
//! tiles the input exactly, and reassembling stored chunk payloads through a
//! content-addressed store reproduces the original bytes. This is the
//! property stdchk's copy-on-write versioning rests on.

use std::collections::HashMap;

use proptest::prelude::*;

use stdchk_chunker::{Advance, CbChunker, CbRollingChunker, Chunker, FsChunker};
use stdchk_proto::ids::ChunkId;

fn reassemble_through_store(chunker: &dyn Chunker, data: &[u8]) -> Vec<u8> {
    // Simulate a content-addressed store: write each chunk under its id,
    // then rebuild the file from the chunk-map alone.
    let ranges = chunker.ranges(data);
    let mut store: HashMap<ChunkId, Vec<u8>> = HashMap::new();
    let mut map = Vec::new();
    for r in ranges {
        let payload = data[r].to_vec();
        let id = ChunkId::for_content(&payload);
        store.insert(id, payload);
        map.push(id);
    }
    let mut out = Vec::with_capacity(data.len());
    for id in map {
        out.extend_from_slice(&store[&id]);
    }
    out
}

fn arb_data() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 0..20_000),
        // Low-entropy: long runs (exercises no-boundary paths and caps).
        (1usize..2000, any::<u8>()).prop_map(|(n, b)| vec![b; n * 8]),
        // Structured: repeated small motifs (exercises dedup).
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(|motif| motif
            .iter()
            .copied()
            .cycle()
            .take(16_384)
            .collect()),
    ]
}

fn chunkers() -> Vec<Box<dyn Chunker>> {
    vec![
        Box::new(FsChunker::new(1024)),
        Box::new(FsChunker::new(7)), // odd size: exercises tail handling
        Box::new(CbChunker::new(20, 6, Advance::Overlap)),
        Box::new(CbChunker::new(20, 6, Advance::NoOverlap)),
        Box::new(CbChunker::new(48, 8, Advance::NoOverlap).with_max_chunk(4096)),
        Box::new(CbRollingChunker::new(20, 6)),
        Box::new(CbRollingChunker::new(64, 9).with_max_chunk(8192)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiling_and_reconstruction(data in arb_data()) {
        for c in chunkers() {
            let ranges = c.ranges(&data);
            // Tiling invariant.
            let mut pos = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, pos, "{}", c.label());
                prop_assert!(r.end > r.start, "{}", c.label());
                pos = r.end;
            }
            prop_assert_eq!(pos, data.len(), "{}", c.label());
            // Reconstruction invariant.
            let rebuilt = reassemble_through_store(c.as_ref(), &data);
            prop_assert_eq!(&rebuilt, &data, "{}", c.label());
        }
    }

    #[test]
    fn chunking_is_deterministic(data in arb_data()) {
        for c in chunkers() {
            prop_assert_eq!(c.ranges(&data), c.ranges(&data), "{}", c.label());
        }
    }

    #[test]
    fn cbch_insertion_locality(
        base in proptest::collection::vec(any::<u8>(), 5_000..20_000),
        insert in proptest::collection::vec(any::<u8>(), 1..16),
        frac in 0.1f64..0.9,
    ) {
        // Content-defined chunking: an insertion must not reduce byte-level
        // similarity below what distance-from-the-edit explains. We assert
        // the weaker, always-true form: chunks strictly before the edit
        // window are unchanged.
        let at = (base.len() as f64 * frac) as usize;
        let mut edited = base.clone();
        edited.splice(at..at, insert.iter().copied());
        let c = CbRollingChunker::new(16, 5);
        let before: Vec<_> = c.ranges(&base).into_iter().filter(|r| r.end + 16 < at).collect();
        let after: Vec<_> = c.ranges(&edited).into_iter().filter(|r| r.end + 16 < at).collect();
        // Every pre-edit chunk that ends well before the edit also appears
        // in the edited version's chunk list.
        for r in &before {
            prop_assert!(after.contains(r), "chunk {r:?} lost after edit at {at}");
        }
    }
}
