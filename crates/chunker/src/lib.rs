//! Incremental-checkpointing similarity heuristics (paper §IV.C).
//!
//! Successive checkpoint images of the same application are often largely
//! similar. stdchk detects that similarity *in the storage system*, without
//! application or OS support, by splitting images into chunks and comparing
//! chunk content hashes against the previous version. Two heuristics are
//! evaluated in the paper:
//!
//! - [`FsChunker`] — **FsCH**, *fixed-size compare-by-hash*: split at fixed
//!   offsets and hash each chunk. Fast (one SHA-256 pass), but a single byte
//!   inserted near the start of the image shifts every later boundary and
//!   destroys all detectable similarity.
//! - [`CbChunker`] — **CbCH**, *content-based compare-by-hash* (LBFS-style):
//!   slide a window of `m` bytes; declare a chunk boundary wherever the
//!   lowest `k` bits of the window hash are zero. Insertion/deletion only
//!   perturbs the surrounding chunk. The paper's implementation recomputes
//!   the full window hash at every position; with the window advanced 1 byte
//!   at a time (*overlap*) this costs `m` hash-bytes per input byte, which is
//!   why the paper measures ~1 MB/s. Advancing by the window size
//!   (*no-overlap*) hashes each byte once but tests fewer boundary sites.
//! - [`CbRollingChunker`] — an **extension** (not in the paper): the same
//!   boundary rule evaluated with an O(1)-slide rolling hash, making the
//!   overlap regime cheap. The `ablation_cbch_rolling` bench quantifies it.
//!
//! All chunkers implement [`Chunker`], produce chunk lists that exactly tile
//! the input (property-tested), and name chunks by content hash so that
//! similarity detection is a set intersection — see [`similarity`].
//!
//! # Examples
//!
//! ```
//! use stdchk_chunker::{Chunker, FsChunker};
//!
//! let image = vec![7u8; 100_000];
//! let chunks = FsChunker::new(64 * 1024).split(&image);
//! assert_eq!(chunks.iter().map(|c| c.size as usize).sum::<usize>(), image.len());
//! // Identical content ⇒ identical chunk ids (content addressing).
//! assert_eq!(chunks[0].id, stdchk_proto::ChunkId::for_content(&image[..64 * 1024]));
//! ```

#![forbid(unsafe_code)]

pub mod cbch;
pub mod delta;
pub mod fsch;
pub mod similarity;
pub mod stats;

pub use cbch::{Advance, CbChunker, CbRollingChunker};
pub use delta::{delta_apply, delta_encode, ChunkSignature};
pub use fsch::FsChunker;
pub use similarity::{SimilarityReport, SimilarityTracker};
pub use stats::ChunkStats;

use std::ops::Range;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::ChunkId;

/// A checkpoint-image chunking strategy.
///
/// Implementations must tile the input exactly: ranges are contiguous,
/// start at 0, and end at `data.len()`.
pub trait Chunker {
    /// Chunk boundaries over `data`, in order.
    fn ranges(&self, data: &[u8]) -> Vec<Range<usize>>;

    /// Short human-readable label for harness tables (e.g. `"FsCH 1MB"`).
    fn label(&self) -> String;

    /// Splits `data` and names each chunk by its content hash.
    fn split(&self, data: &[u8]) -> Vec<ChunkEntry> {
        self.ranges(data)
            .into_iter()
            .map(|r| ChunkEntry {
                id: ChunkId::for_content(&data[r.clone()]),
                size: (r.end - r.start) as u32,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared invariant check used by per-chunker tests too.
    pub(crate) fn assert_tiles(chunker: &dyn Chunker, data: &[u8]) {
        let ranges = chunker.ranges(data);
        let mut pos = 0usize;
        for r in &ranges {
            assert_eq!(r.start, pos, "{}: gap/overlap at {pos}", chunker.label());
            assert!(r.end > r.start, "{}: empty range", chunker.label());
            pos = r.end;
        }
        assert_eq!(pos, data.len(), "{}: does not cover input", chunker.label());
        if data.is_empty() {
            assert!(ranges.is_empty());
        }
    }

    #[test]
    fn split_sums_to_input_length() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for c in [
            &FsChunker::new(1024) as &dyn Chunker,
            &CbChunker::no_overlap(32, 6),
            &CbChunker::overlap(16, 7),
            &CbRollingChunker::new(32, 6),
        ] {
            let total: u64 = c.split(&data).iter().map(|e| e.size as u64).sum();
            assert_eq!(total, data.len() as u64, "{}", c.label());
        }
    }
}
