//! Similarity accounting between successive checkpoint images.
//!
//! The paper's metric ("ratio of detected similarity", Tables 3/4) is the
//! fraction of a new image's bytes that duplicate chunks already present in
//! the previous image. [`SimilarityTracker`] runs that accounting over a
//! stream of images; it also supports comparing against *all* prior versions
//! (what a content-addressed store actually achieves).
//!
//! # Examples
//!
//! ```
//! use stdchk_chunker::{Chunker, FsChunker, SimilarityTracker};
//!
//! let chunker = FsChunker::new(4 << 10);
//! let mut tracker = SimilarityTracker::new();
//! let v1 = vec![7u8; 64 << 10];
//! tracker.observe(&chunker.split(&v1));
//!
//! // Second image: identical except the first chunk.
//! let mut v2 = v1.clone();
//! v2[0] ^= 0xFF;
//! let report = tracker.observe(&chunker.split(&v2));
//! assert!(report.ratio() > 0.9, "all but one chunk dedups");
//! ```

use std::collections::HashSet;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::ChunkId;

/// What the new image was compared against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompareScope {
    /// Only the immediately preceding image (the paper's metric).
    #[default]
    Previous,
    /// Every chunk stored so far (what content addressing achieves).
    AllHistory,
}

/// Byte-level accounting for one observed image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimilarityReport {
    /// Total bytes in the image.
    pub total_bytes: u64,
    /// Bytes whose chunks already existed in the comparison scope.
    pub dup_bytes: u64,
    /// Bytes in chunks that must actually be stored/transferred (distinct
    /// new chunks only — repeats within the image are also deduplicated).
    pub new_bytes: u64,
}

impl SimilarityReport {
    /// Detected similarity in `[0, 1]` (the paper's percentage).
    pub fn ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.dup_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Tracks chunk sets across a sequence of checkpoint images.
///
/// # Examples
///
/// ```
/// use stdchk_chunker::{Chunker, FsChunker, SimilarityTracker};
///
/// let c = FsChunker::new(1024);
/// let mut tracker = SimilarityTracker::new();
/// let v1 = vec![1u8; 8192];
/// let mut v2 = v1.clone();
/// v2[0] = 2; // dirty one chunk
/// tracker.observe(&c.split(&v1));
/// let rep = tracker.observe(&c.split(&v2));
/// // 7 of 8 chunks unchanged.
/// assert!((rep.ratio() - 7.0 / 8.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimilarityTracker {
    scope: CompareScope,
    previous: HashSet<ChunkId>,
    history: HashSet<ChunkId>,
    reports: Vec<SimilarityReport>,
}

impl SimilarityTracker {
    /// Creates a tracker comparing against the previous image only.
    pub fn new() -> SimilarityTracker {
        SimilarityTracker::default()
    }

    /// Creates a tracker with an explicit comparison scope.
    pub fn with_scope(scope: CompareScope) -> SimilarityTracker {
        SimilarityTracker {
            scope,
            ..SimilarityTracker::default()
        }
    }

    /// Accounts one image (already chunked) and returns its report.
    pub fn observe(&mut self, chunks: &[ChunkEntry]) -> SimilarityReport {
        let baseline: &HashSet<ChunkId> = match self.scope {
            CompareScope::Previous => &self.previous,
            CompareScope::AllHistory => &self.history,
        };
        let mut report = SimilarityReport::default();
        let mut fresh: HashSet<ChunkId> = HashSet::with_capacity(chunks.len());
        let mut new_distinct: HashSet<ChunkId> = HashSet::new();
        for e in chunks {
            report.total_bytes += e.size as u64;
            if baseline.contains(&e.id) {
                report.dup_bytes += e.size as u64;
            } else if new_distinct.insert(e.id) {
                report.new_bytes += e.size as u64;
            }
            fresh.insert(e.id);
        }
        self.history.extend(fresh.iter().copied());
        self.previous = fresh;
        self.reports.push(report);
        report
    }

    /// Reports for every observed image, in order. The first image always
    /// reports zero similarity (nothing to compare against).
    pub fn reports(&self) -> &[SimilarityReport] {
        &self.reports
    }

    /// Mean similarity ratio across all images *after the first* — the
    /// paper's "average rate of detected similarity".
    pub fn mean_ratio(&self) -> f64 {
        if self.reports.len() <= 1 {
            return 0.0;
        }
        let tail = &self.reports[1..];
        tail.iter().map(|r| r.ratio()).sum::<f64>() / tail.len() as f64
    }

    /// Total bytes across all observed images.
    pub fn total_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.total_bytes).sum()
    }

    /// Total bytes that had to be stored (distinct new chunks only) — the
    /// "storage space and network effort" the paper reports savings on.
    pub fn stored_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.new_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chunker, FsChunker};

    #[test]
    fn first_image_reports_zero_similarity() {
        let c = FsChunker::new(16);
        let mut t = SimilarityTracker::new();
        let r = t.observe(&c.split(&[1u8; 64]));
        assert_eq!(r.dup_bytes, 0);
        assert_eq!(t.mean_ratio(), 0.0);
    }

    #[test]
    fn identical_images_are_fully_similar() {
        let c = FsChunker::new(16);
        let img = vec![3u8; 160];
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&img));
        let r = t.observe(&c.split(&img));
        assert_eq!(r.ratio(), 1.0);
        assert_eq!(r.new_bytes, 0);
    }

    #[test]
    fn previous_scope_forgets_older_versions() {
        let c = FsChunker::new(4);
        let a = vec![1u8; 16];
        let b = vec![2u8; 16];
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&a));
        t.observe(&c.split(&b));
        // `a` again: previous (=b) has no a-chunks.
        let r = t.observe(&c.split(&a));
        assert_eq!(r.dup_bytes, 0);
    }

    #[test]
    fn all_history_scope_remembers() {
        let c = FsChunker::new(4);
        let a = vec![1u8; 16];
        let b = vec![2u8; 16];
        let mut t = SimilarityTracker::with_scope(CompareScope::AllHistory);
        t.observe(&c.split(&a));
        t.observe(&c.split(&b));
        let r = t.observe(&c.split(&a));
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn intra_image_repeats_counted_once_in_new_bytes() {
        let c = FsChunker::new(4);
        // 4 identical chunks: total 16, but only 4 bytes must be stored.
        let img = vec![7u8; 16];
        let mut t = SimilarityTracker::new();
        let r = t.observe(&c.split(&img));
        assert_eq!(r.total_bytes, 16);
        assert_eq!(r.new_bytes, 4);
    }

    #[test]
    fn stored_bytes_accumulates_savings() {
        let c = FsChunker::new(8);
        let img = vec![5u8; 64];
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&img));
        t.observe(&c.split(&img));
        t.observe(&c.split(&img));
        assert_eq!(t.total_bytes(), 192);
        // Only the first image's single distinct chunk is ever stored.
        assert_eq!(t.stored_bytes(), 8);
    }
}
