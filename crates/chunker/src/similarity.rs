//! Similarity accounting between successive checkpoint images.
//!
//! The paper's metric ("ratio of detected similarity", Tables 3/4) is the
//! fraction of a new image's bytes that duplicate chunks already present in
//! the previous image. [`SimilarityTracker`] runs that accounting over a
//! stream of images; it also supports comparing against *all* prior versions
//! (what a content-addressed store actually achieves).
//!
//! # Examples
//!
//! ```
//! use stdchk_chunker::{Chunker, FsChunker, SimilarityTracker};
//!
//! let chunker = FsChunker::new(4 << 10);
//! let mut tracker = SimilarityTracker::new();
//! let v1 = vec![7u8; 64 << 10];
//! tracker.observe(&chunker.split(&v1));
//!
//! // Second image: identical except the first chunk.
//! let mut v2 = v1.clone();
//! v2[0] ^= 0xFF;
//! let report = tracker.observe(&chunker.split(&v2));
//! assert!(report.ratio() > 0.9, "all but one chunk dedups");
//! ```

use std::collections::HashSet;

use stdchk_proto::chunkmap::ChunkEntry;
use stdchk_proto::ids::ChunkId;

/// What the new image was compared against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompareScope {
    /// Only the immediately preceding image (the paper's metric).
    #[default]
    Previous,
    /// Every chunk stored so far (what content addressing achieves).
    AllHistory,
}

/// Byte-level accounting for one observed image.
///
/// `dup_bytes + new_bytes == total_bytes` always holds: every byte either
/// duplicates a chunk the scope (or an earlier occurrence in the same
/// image) already has, or belongs to the first occurrence of a new chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimilarityReport {
    /// Total bytes in the image.
    pub total_bytes: u64,
    /// Bytes whose chunks already existed in the comparison scope, or
    /// earlier in the same image — repeats within an image are
    /// deduplicated too.
    pub dup_bytes: u64,
    /// Bytes in chunks that must actually be stored/transferred (first
    /// occurrences of distinct new chunks only).
    pub new_bytes: u64,
}

impl SimilarityReport {
    /// Detected similarity in `[0, 1]` (the paper's percentage).
    pub fn ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.dup_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Tracks chunk sets across a sequence of checkpoint images.
///
/// # Examples
///
/// ```
/// use stdchk_chunker::{Chunker, FsChunker, SimilarityTracker};
///
/// let c = FsChunker::new(1024);
/// let mut tracker = SimilarityTracker::new();
/// let v1 = vec![1u8; 8192];
/// let mut v2 = v1.clone();
/// v2[0] = 2; // dirty one chunk
/// tracker.observe(&c.split(&v1));
/// let rep = tracker.observe(&c.split(&v2));
/// // 7 of 8 chunks unchanged.
/// assert!((rep.ratio() - 7.0 / 8.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimilarityTracker {
    scope: CompareScope,
    previous: HashSet<ChunkId>,
    history: HashSet<ChunkId>,
    reports: Vec<SimilarityReport>,
}

impl SimilarityTracker {
    /// Creates a tracker comparing against the previous image only.
    pub fn new() -> SimilarityTracker {
        SimilarityTracker::default()
    }

    /// Creates a tracker with an explicit comparison scope.
    pub fn with_scope(scope: CompareScope) -> SimilarityTracker {
        SimilarityTracker {
            scope,
            ..SimilarityTracker::default()
        }
    }

    /// Accounts one image (already chunked) and returns its report.
    pub fn observe(&mut self, chunks: &[ChunkEntry]) -> SimilarityReport {
        let report = self.predict(chunks);
        let fresh: HashSet<ChunkId> = chunks.iter().map(|e| e.id).collect();
        self.history.extend(fresh.iter().copied());
        self.previous = fresh;
        self.reports.push(report);
        report
    }

    /// Computes the report [`SimilarityTracker::observe`] would produce for
    /// `chunks` without recording the image — what a test or client uses
    /// to predict wire savings before a transfer actually happens.
    pub fn predict(&self, chunks: &[ChunkEntry]) -> SimilarityReport {
        let baseline: &HashSet<ChunkId> = match self.scope {
            CompareScope::Previous => &self.previous,
            CompareScope::AllHistory => &self.history,
        };
        let mut report = SimilarityReport::default();
        let mut new_distinct: HashSet<ChunkId> = HashSet::new();
        for e in chunks {
            report.total_bytes += e.size as u64;
            // A repeat of a chunk first seen earlier in this same image
            // dedups exactly like a scope hit (the store has it by the
            // time the repeat arrives); the old accounting dropped those
            // bytes from *both* buckets, so dup + new undercounted total.
            if baseline.contains(&e.id) || !new_distinct.insert(e.id) {
                report.dup_bytes += e.size as u64;
            } else {
                report.new_bytes += e.size as u64;
            }
        }
        report
    }

    /// Reports for every observed image, in order. The first image always
    /// reports zero similarity (nothing to compare against).
    pub fn reports(&self) -> &[SimilarityReport] {
        &self.reports
    }

    /// Mean similarity ratio across all images *after the first* — the
    /// paper's "average rate of detected similarity".
    pub fn mean_ratio(&self) -> f64 {
        if self.reports.len() <= 1 {
            return 0.0;
        }
        let tail = &self.reports[1..];
        tail.iter().map(|r| r.ratio()).sum::<f64>() / tail.len() as f64
    }

    /// Total bytes across all observed images.
    pub fn total_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.total_bytes).sum()
    }

    /// Total bytes that had to be stored (distinct new chunks only) — the
    /// "storage space and network effort" the paper reports savings on.
    pub fn stored_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.new_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chunker, FsChunker};

    #[test]
    fn first_image_reports_zero_similarity() {
        let c = FsChunker::new(16);
        let mut t = SimilarityTracker::new();
        // Distinct content per chunk: nothing dedups against empty history.
        let img: Vec<u8> = (0..64u32).map(|i| i as u8).collect();
        let r = t.observe(&c.split(&img));
        assert_eq!(r.dup_bytes, 0);
        assert_eq!(r.new_bytes, r.total_bytes);
        assert_eq!(t.mean_ratio(), 0.0);
    }

    #[test]
    fn identical_images_are_fully_similar() {
        let c = FsChunker::new(16);
        let img = vec![3u8; 160];
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&img));
        let r = t.observe(&c.split(&img));
        assert_eq!(r.ratio(), 1.0);
        assert_eq!(r.new_bytes, 0);
    }

    #[test]
    fn previous_scope_forgets_older_versions() {
        let c = FsChunker::new(4);
        // Distinct content per chunk so only the scope can produce dups.
        let a: Vec<u8> = (0..16u32).map(|i| i as u8).collect();
        let b: Vec<u8> = (16..32u32).map(|i| i as u8).collect();
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&a));
        t.observe(&c.split(&b));
        // `a` again: previous (=b) has no a-chunks.
        let r = t.observe(&c.split(&a));
        assert_eq!(r.dup_bytes, 0);
    }

    #[test]
    fn all_history_scope_remembers() {
        let c = FsChunker::new(4);
        let a = vec![1u8; 16];
        let b = vec![2u8; 16];
        let mut t = SimilarityTracker::with_scope(CompareScope::AllHistory);
        t.observe(&c.split(&a));
        t.observe(&c.split(&b));
        let r = t.observe(&c.split(&a));
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn intra_image_repeats_counted_once_in_new_bytes() {
        let c = FsChunker::new(4);
        // 4 identical chunks: total 16, but only 4 bytes must be stored —
        // the 3 repeats dedup against the first occurrence.
        let img = vec![7u8; 16];
        let mut t = SimilarityTracker::new();
        let r = t.observe(&c.split(&img));
        assert_eq!(r.total_bytes, 16);
        assert_eq!(r.new_bytes, 4);
        assert_eq!(r.dup_bytes, 12);
        assert_eq!(r.dup_bytes + r.new_bytes, r.total_bytes);
    }

    #[test]
    fn predict_matches_observe_without_mutating() {
        let c = FsChunker::new(4);
        let a = vec![1u8; 16];
        let mut b = a.clone();
        b[0] = 9;
        let mut t = SimilarityTracker::with_scope(CompareScope::AllHistory);
        t.observe(&c.split(&a));
        let predicted = t.predict(&c.split(&b));
        assert_eq!(predicted, t.predict(&c.split(&b)), "predict is pure");
        let observed = t.observe(&c.split(&b));
        assert_eq!(predicted, observed);
    }

    #[test]
    fn stored_bytes_accumulates_savings() {
        let c = FsChunker::new(8);
        let img = vec![5u8; 64];
        let mut t = SimilarityTracker::new();
        t.observe(&c.split(&img));
        t.observe(&c.split(&img));
        t.observe(&c.split(&img));
        assert_eq!(t.total_bytes(), 192);
        // Only the first image's single distinct chunk is ever stored.
        assert_eq!(t.stored_bytes(), 8);
    }
}
