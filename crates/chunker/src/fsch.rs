//! FsCH: fixed-size compare-by-hash.

use std::ops::Range;

use crate::Chunker;
use stdchk_util::bytesize::fmt_bytes;

/// Fixed-size chunking: boundaries every `chunk_size` bytes.
///
/// The paper evaluates 1 KB, 256 KB and 1 MB chunk sizes (Table 3) and
/// integrates FsCH into the stdchk prototype because it offers the best
/// throughput/similarity balance.
///
/// # Examples
///
/// ```
/// use stdchk_chunker::{Chunker, FsChunker};
///
/// let c = FsChunker::new(4);
/// let ranges = c.ranges(&[0u8; 10]);
/// assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsChunker {
    chunk_size: usize,
}

impl FsChunker {
    /// Creates a fixed-size chunker.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> FsChunker {
        assert!(chunk_size > 0, "chunk size must be positive");
        FsChunker { chunk_size }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Chunker for FsChunker {
    fn ranges(&self, data: &[u8]) -> Vec<Range<usize>> {
        let mut out = Vec::with_capacity(data.len() / self.chunk_size + 1);
        let mut pos = 0;
        while pos < data.len() {
            let end = (pos + self.chunk_size).min(data.len());
            out.push(pos..end);
            pos = end;
        }
        out
    }

    fn label(&self) -> String {
        format!("FsCH {}", fmt_bytes(self.chunk_size as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::assert_tiles;
    use stdchk_proto::ids::ChunkId;

    #[test]
    fn tiles_various_sizes() {
        for len in [0usize, 1, 1023, 1024, 1025, 4096] {
            let data = vec![9u8; len];
            assert_tiles(&FsChunker::new(1024), &data);
        }
    }

    #[test]
    fn identical_aligned_content_shares_ids() {
        let a = vec![1u8; 4096];
        let c = FsChunker::new(1024);
        let chunks = c.split(&a);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|e| e.id == chunks[0].id));
    }

    #[test]
    fn one_byte_insertion_destroys_alignment() {
        // The paper's stated weakness: an insertion at the front prevents
        // FsCH from detecting any similarity.
        let base: Vec<u8> = (0..8192u32).map(|i| (i % 253) as u8).collect();
        let mut shifted = vec![0xffu8];
        shifted.extend_from_slice(&base);
        let c = FsChunker::new(1024);
        let ids_a: std::collections::HashSet<ChunkId> =
            c.split(&base).into_iter().map(|e| e.id).collect();
        let dup = c
            .split(&shifted)
            .into_iter()
            .filter(|e| ids_a.contains(&e.id))
            .count();
        assert_eq!(dup, 0);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_size_panics() {
        let _ = FsChunker::new(0);
    }
}
