//! CbCH: content-based compare-by-hash (LBFS-style chunking).
//!
//! See the crate docs for the overlap / no-overlap / rolling distinction and
//! the paper's throughput implications.
//!
//! # Examples
//!
//! Content-defined boundaries survive an insertion near the start of the
//! image (exactly what breaks fixed-size chunking):
//!
//! ```
//! use stdchk_chunker::{Chunker, CbRollingChunker};
//!
//! let chunker = CbRollingChunker::new(48, 10);
//! let v1: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect();
//! let mut v2 = v1.clone();
//! v2.splice(100..100, [0xAA, 0xBB, 0xCC]); // insert 3 bytes near the front
//!
//! let ids1: std::collections::HashSet<_> =
//!     chunker.split(&v1).into_iter().map(|c| c.id).collect();
//! let shared = chunker.split(&v2).iter().filter(|c| ids1.contains(&c.id)).count();
//! assert!(shared > 0, "chunks after the insertion point re-align");
//! ```

use std::ops::Range;

use crate::Chunker;
use stdchk_util::rolling::{is_boundary, RollingHash, WindowHash};

/// How the scan window advances between boundary tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Advance {
    /// `p = 1`: test a window at every byte offset (paper's "overlap").
    /// Maximal boundary-site coverage, `m×` hashing cost per byte.
    Overlap,
    /// `p = m`: advance by the window size (paper's "no-overlap"). Each byte
    /// is hashed once; boundary sites are tested every `m` bytes.
    NoOverlap,
}

/// Paper-faithful CbCH: recomputes the full `m`-byte window hash at every
/// tested position, exactly as the ICDCS'08 prototype did — which is what
/// makes the overlap variant measure ~1 MB/s in Table 3.
///
/// A chunk boundary is declared after a window whose (whitened) hash has its
/// lowest `k` bits zero; scanning resumes with a fresh window after the cut.
/// An optional `max_chunk` cap bounds chunk size in low-entropy regions
/// where boundaries never fire (disabled by default, matching the paper).
///
/// # Examples
///
/// ```
/// use stdchk_chunker::{CbChunker, Chunker};
///
/// let data: Vec<u8> = (0..50_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
/// let c = CbChunker::no_overlap(32, 6); // expected chunk ≈ 32·2^6 = 2 KiB
/// let ranges = c.ranges(&data);
/// assert!(ranges.len() > 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbChunker {
    m: usize,
    k: u32,
    advance: Advance,
    max_chunk: usize,
}

impl CbChunker {
    /// Creates a CbCH chunker with explicit parameters and no chunk cap.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k >= 64`.
    pub fn new(m: usize, k: u32, advance: Advance) -> CbChunker {
        assert!(m > 0, "window must be non-empty");
        assert!(k < 64, "k must be < 64");
        CbChunker {
            m,
            k,
            advance,
            max_chunk: usize::MAX,
        }
    }

    /// Overlap variant (`p = 1`).
    pub fn overlap(m: usize, k: u32) -> CbChunker {
        CbChunker::new(m, k, Advance::Overlap)
    }

    /// No-overlap variant (`p = m`).
    pub fn no_overlap(m: usize, k: u32) -> CbChunker {
        CbChunker::new(m, k, Advance::NoOverlap)
    }

    /// Caps chunk size: a boundary is forced once a chunk reaches `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max < m`.
    pub fn with_max_chunk(mut self, max: usize) -> CbChunker {
        assert!(max >= self.m, "max chunk must fit a window");
        self.max_chunk = max;
        self
    }

    /// Window size `m` in bytes.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Boundary bits `k`.
    pub fn boundary_bits(&self) -> u32 {
        self.k
    }

    /// The advance regime.
    pub fn advance(&self) -> Advance {
        self.advance
    }

    fn step(&self) -> usize {
        match self.advance {
            Advance::Overlap => 1,
            Advance::NoOverlap => self.m,
        }
    }
}

impl Chunker for CbChunker {
    fn ranges(&self, data: &[u8]) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut chunk_start = 0usize;
        let mut pos = chunk_start; // window start
        let step = self.step();
        while chunk_start < data.len() {
            // Forced cut at the current window *start* keeps the cut a
            // multiple of the advance step past `chunk_start`, preserving
            // the scan phase that no-overlap's similarity detection relies
            // on for in-place modifications. The cap is therefore honoured
            // at step granularity (cut at the largest step multiple ≤ max).
            if pos - chunk_start > self.max_chunk.saturating_sub(step) {
                out.push(chunk_start..pos);
                chunk_start = pos;
                continue;
            }
            if pos + self.m > data.len() {
                // No more full windows: the tail is the final chunk.
                out.push(chunk_start..data.len());
                break;
            }
            // Paper-faithful: full window hash recomputed at each position.
            let h = WindowHash::hash(&data[pos..pos + self.m]);
            let cut = pos + self.m;
            if is_boundary(h, self.k) && cut - chunk_start <= self.max_chunk {
                out.push(chunk_start..cut);
                chunk_start = cut;
                pos = cut;
            } else {
                pos += step;
            }
        }
        if data.is_empty() {
            out.clear();
        }
        out
    }

    fn label(&self) -> String {
        let mode = match self.advance {
            Advance::Overlap => "overlap",
            Advance::NoOverlap => "no-overlap",
        };
        format!("CbCH {mode} m={}B k={}b", self.m, self.k)
    }
}

/// Extension: CbCH boundary rule evaluated with an O(1)-slide rolling hash.
///
/// Tests a boundary at *every* byte offset (like [`Advance::Overlap`]) but
/// hashes each byte only once, so it keeps overlap-grade similarity detection
/// at no-overlap-grade (better, in fact) throughput. Not part of the paper —
/// the `ablation_cbch_rolling` bench quantifies the gap this closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbRollingChunker {
    m: usize,
    k: u32,
    max_chunk: usize,
}

impl CbRollingChunker {
    /// Creates a rolling-hash CbCH chunker.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k >= 64`.
    pub fn new(m: usize, k: u32) -> CbRollingChunker {
        assert!(m > 0, "window must be non-empty");
        assert!(k < 64, "k must be < 64");
        CbRollingChunker {
            m,
            k,
            max_chunk: usize::MAX,
        }
    }

    /// Caps chunk size, as [`CbChunker::with_max_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `max < m`.
    pub fn with_max_chunk(mut self, max: usize) -> CbRollingChunker {
        assert!(max >= self.m, "max chunk must fit a window");
        self.max_chunk = max;
        self
    }
}

impl Chunker for CbRollingChunker {
    fn ranges(&self, data: &[u8]) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        if data.is_empty() {
            return out;
        }
        let mut chunk_start = 0usize;
        let mut rh = RollingHash::new(self.m);
        loop {
            // Fill the window starting at chunk_start.
            rh.reset();
            let fill_end = (chunk_start + self.m).min(data.len());
            for &b in &data[chunk_start..fill_end] {
                rh.push(b);
            }
            // Bytes [window_end - m, window_end) are in rh once full.
            let mut window_end = fill_end;
            if !rh.is_full() {
                // Tail shorter than a window: final chunk.
                out.push(chunk_start..data.len());
                return out;
            }
            // Slide until boundary or cap or end of data.
            loop {
                let cut = window_end;
                if (is_boundary(rh.value(), self.k) && cut > chunk_start)
                    || cut - chunk_start >= self.max_chunk
                {
                    out.push(chunk_start..cut);
                    chunk_start = cut;
                    if chunk_start >= data.len() {
                        return out;
                    }
                    break; // refill fresh window after the cut
                }
                if window_end >= data.len() {
                    out.push(chunk_start..data.len());
                    return out;
                }
                rh.slide(data[window_end - self.m], data[window_end]);
                window_end += 1;
            }
        }
    }

    fn label(&self) -> String {
        format!("CbCH rolling m={}B k={}b", self.m, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::assert_tiles;
    use crate::Chunker;
    use stdchk_proto::ids::ChunkId;
    use stdchk_util::mix64;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        (0..len).map(|i| mix64(seed ^ i as u64) as u8).collect()
    }

    #[test]
    fn tiles_for_all_variants_and_lengths() {
        for len in [0usize, 1, 19, 20, 21, 1000, 50_000] {
            let data = noise(len, 1);
            assert_tiles(&CbChunker::overlap(20, 6), &data);
            assert_tiles(&CbChunker::no_overlap(20, 6), &data);
            assert_tiles(&CbRollingChunker::new(20, 6), &data);
        }
    }

    #[test]
    fn expected_chunk_size_scales_with_k() {
        let data = noise(1 << 20, 2);
        let small = CbChunker::no_overlap(32, 4).ranges(&data).len();
        let large = CbChunker::no_overlap(32, 8).ranges(&data).len();
        // k=4 → ~2 KiB chunks; k=8 → ~8 KiB chunks; ratio ≈ 2^4 = 16.
        let ratio = small as f64 / large as f64;
        assert!(
            (8.0..32.0).contains(&ratio),
            "chunk count ratio {ratio} (small={small}, large={large})"
        );
    }

    #[test]
    fn insertion_only_perturbs_nearby_chunks() {
        // The paper's motivation for CbCH: inserting a few bytes should
        // leave most chunks (hence most detected similarity) intact.
        let base = noise(200_000, 3);
        let mut edited = base.clone();
        let insert_at = 100_000;
        edited.splice(insert_at..insert_at, [1u8, 2, 3].iter().copied());
        let c = CbChunker::overlap(16, 7);
        let ids_base: std::collections::HashSet<ChunkId> =
            c.split(&base).into_iter().map(|e| e.id).collect();
        let chunks_edited = c.split(&edited);
        let dup_bytes: u64 = chunks_edited
            .iter()
            .filter(|e| ids_base.contains(&e.id))
            .map(|e| e.size as u64)
            .sum();
        let ratio = dup_bytes as f64 / edited.len() as f64;
        assert!(ratio > 0.95, "similarity after insertion only {ratio}");
    }

    #[test]
    fn fsch_like_alignment_failure_does_not_happen_with_overlap() {
        // Contrast test with FsCH: prefix insertion preserves CbCH chunks
        // when every byte offset is a candidate boundary (overlap mode).
        let base = noise(100_000, 4);
        let mut shifted = vec![0u8; 5];
        shifted.extend_from_slice(&base);
        let c = CbChunker::overlap(20, 6);
        let ids_base: std::collections::HashSet<ChunkId> =
            c.split(&base).into_iter().map(|e| e.id).collect();
        let dup_bytes: u64 = c
            .split(&shifted)
            .into_iter()
            .filter(|e| ids_base.contains(&e.id))
            .map(|e| e.size as u64)
            .sum();
        let ratio = dup_bytes as f64 / shifted.len() as f64;
        assert!(ratio > 0.9, "shift-resilience too weak: {ratio}");
    }

    #[test]
    fn no_overlap_detects_in_place_modification() {
        // No-overlap only tests boundaries every m bytes from the last cut,
        // so it is phase-sensitive to insertions — but in-place page
        // mutations (the dominant change in BLCR process images) keep the
        // phase and must still be detected.
        let base = noise(200_000, 6);
        let mut edited = base.clone();
        #[allow(clippy::needless_range_loop)]
        for i in 60_000..64_096 {
            edited[i] ^= 0x5a; // dirty a 4 KiB page
        }
        let c = CbChunker::no_overlap(20, 6);
        let ids_base: std::collections::HashSet<ChunkId> =
            c.split(&base).into_iter().map(|e| e.id).collect();
        let dup_bytes: u64 = c
            .split(&edited)
            .into_iter()
            .filter(|e| ids_base.contains(&e.id))
            .map(|e| e.size as u64)
            .sum();
        let ratio = dup_bytes as f64 / edited.len() as f64;
        assert!(ratio > 0.9, "in-place resilience too weak: {ratio}");
    }

    #[test]
    fn rolling_matches_overlap_boundaries() {
        // The rolling chunker evaluates the same predicate at every byte
        // offset, so on data where overlap tests every position they agree.
        let data = noise(30_000, 5);
        let a = CbChunker::overlap(16, 6).ranges(&data);
        let b = CbRollingChunker::new(16, 6).ranges(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn max_chunk_caps_low_entropy_runs() {
        // All-zero data never fires a (non-zero-hash) boundary; the cap must
        // bound chunk size.
        let data = vec![0u8; 100_000];
        let c = CbChunker::no_overlap(20, 10).with_max_chunk(4096);
        let ranges = c.ranges(&data);
        assert!(ranges.iter().all(|r| r.end - r.start <= 4096));
        assert_tiles(&c, &data);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            CbChunker::overlap(20, 14).label(),
            "CbCH overlap m=20B k=14b"
        );
        assert_eq!(
            CbRollingChunker::new(32, 10).label(),
            "CbCH rolling m=32B k=10b"
        );
    }
}
