//! Rolling-checksum delta encoding for near-miss chunks (rsync-style).
//!
//! Have/want negotiation removes chunks that are *byte-identical* to ones
//! the pool already stores. Successive checkpoints also produce near
//! misses: a chunk at the same file offset whose content shifted or
//! mutated slightly. For those the client encodes the new chunk as a
//! delta against the previous version's chunk at the same position (the
//! *basis*), using the classic weak-then-strong scheme:
//!
//! 1. [`ChunkSignature::build`] splits the basis into fixed blocks and
//!    records a weak rolling checksum ([`RollingHash`]) plus a strong
//!    CRC-32C digest per block.
//! 2. [`delta_encode`] slides the weak hash over the new chunk one byte at
//!    a time (O(1) per position); on a weak match it confirms with the
//!    strong hash and emits a `Copy` op, otherwise the byte joins a
//!    `Literal` run. CRC-32C (hardware-accelerated where available) is
//!    strong *enough* here because the benefactor verifies the
//!    reconstructed chunk against its content-addressed id before storing
//!    it — a confirm collision costs one rejected delta and a full
//!    resend, never a corrupt store.
//! 3. [`delta_apply`] replays the ops against the basis to reconstruct
//!    the chunk byte-for-byte. The benefactor does this *before* the
//!    store append, so segments only ever hold full chunks and the read
//!    path never learns deltas exist.
//!
//! The encoding is self-delimiting and intentionally simple:
//!
//! ```text
//! op   := 0x00 len:u32le bytes[len]          literal
//!       | 0x01 offset:u64le len:u32le        copy from basis
//! delta := op*
//! ```
//!
//! Adjacent copies of consecutive basis ranges merge into one op.
//! [`delta_encode`] returns `None` when the encoding would not beat
//! sending the chunk in full — the caller then falls back to `PutChunk`.

use stdchk_util::crc32::Crc32;
use stdchk_util::rolling::RollingHash;

use std::collections::HashMap;

/// Default signature block size. Small enough to find matches after
/// sub-chunk shifts, large enough that a signature is ~1% of the basis.
pub const DEFAULT_BLOCK: usize = 2048;

/// Op-code for a literal run.
const OP_LITERAL: u8 = 0x00;
/// Op-code for a copy from the basis.
const OP_COPY: u8 = 0x01;

/// Per-block checksums of a basis chunk, the client-side half of the
/// delta handshake. Built once when a chunk ships and cached for the next
/// version of the same file.
#[derive(Clone, Debug)]
pub struct ChunkSignature {
    /// Block size the signature was built with.
    block: usize,
    /// Basis length in bytes (whole blocks + ignored tail).
    basis_len: usize,
    /// weak hash → indices of blocks with that weak hash.
    weak: HashMap<u64, Vec<u32>>,
    /// Strong digest (CRC-32C) per block, indexed by block number.
    strong: Vec<u32>,
}

impl ChunkSignature {
    /// Builds the signature of `basis` with the given block size. Only
    /// whole blocks participate; a short tail is never matched (it is
    /// cheaper to ship it literally than to special-case it).
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn build(basis: &[u8], block: usize) -> Self {
        assert!(block > 0, "block size must be non-zero");
        let blocks = basis.len() / block;
        let mut weak: HashMap<u64, Vec<u32>> = HashMap::with_capacity(blocks);
        let mut strong = Vec::with_capacity(blocks);
        for i in 0..blocks {
            let b = &basis[i * block..(i + 1) * block];
            let mut rh = RollingHash::new(block);
            for &byte in b {
                rh.push(byte);
            }
            weak.entry(rh.value()).or_default().push(i as u32);
            strong.push(Crc32::checksum(b));
        }
        ChunkSignature {
            block,
            basis_len: basis.len(),
            weak,
            strong,
        }
    }

    /// Builds the signature with [`DEFAULT_BLOCK`].
    pub fn of(basis: &[u8]) -> Self {
        Self::build(basis, DEFAULT_BLOCK)
    }

    /// The block size this signature was built with.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Length in bytes of the basis chunk.
    pub fn basis_len(&self) -> usize {
        self.basis_len
    }

    /// Finds the basis block matching `window` (weak hash pre-computed by
    /// the caller's rolling scan), confirming with the strong digest.
    fn find(&self, weak: u64, window: &[u8]) -> Option<u32> {
        let candidates = self.weak.get(&weak)?;
        let digest = Crc32::checksum(window);
        candidates
            .iter()
            .copied()
            .find(|&i| self.strong[i as usize] == digest)
    }
}

/// Encodes `new` as a delta against the chunk `sig` describes.
///
/// Returns `None` when the delta would be at least as large as `new`
/// itself (plus when the signature has no blocks at all) — the caller
/// should ship the full chunk instead, so a returned delta is always a
/// strict win on the wire.
pub fn delta_encode(sig: &ChunkSignature, new: &[u8]) -> Option<Vec<u8>> {
    if sig.strong.is_empty() || new.len() < sig.block {
        return None;
    }
    let block = sig.block;
    let mut out = DeltaWriter::new(new.len());
    let mut rh = RollingHash::new(block);
    for &b in &new[..block] {
        rh.push(b);
    }
    // `pos` is the start of the current window; bytes before `emitted`
    // are already encoded.
    let mut pos = 0usize;
    let mut emitted = 0usize;
    loop {
        if let Some(idx) = sig.find(rh.value(), &new[pos..pos + block]) {
            out.literal(&new[emitted..pos]);
            out.copy(idx as u64 * block as u64, block as u32);
            pos += block;
            emitted = pos;
            if pos + block > new.len() {
                break;
            }
            rh.reset();
            for &b in &new[pos..pos + block] {
                rh.push(b);
            }
        } else {
            if pos + block >= new.len() {
                break;
            }
            rh.slide(new[pos], new[pos + block]);
            pos += 1;
        }
        if out.len() >= new.len() {
            return None; // already losing; bail before scanning more
        }
    }
    out.literal(&new[emitted..]);
    if out.len() >= new.len() {
        None
    } else {
        Some(out.into_bytes())
    }
}

/// Error from [`delta_apply`]: the delta referenced bytes outside the
/// basis or was itself malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaError(pub String);

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad delta: {}", self.0)
    }
}

impl std::error::Error for DeltaError {}

/// Reconstructs the full chunk from `basis` and a delta ops stream.
///
/// # Errors
///
/// Returns [`DeltaError`] on truncated ops, unknown op-codes, or copy
/// ranges that fall outside the basis. Never panics on untrusted input.
pub fn delta_apply(basis: &[u8], delta: &[u8]) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::new();
    let mut d = delta;
    while !d.is_empty() {
        let op = d[0];
        d = &d[1..];
        match op {
            OP_LITERAL => {
                let len = read_u32(&mut d)? as usize;
                if d.len() < len {
                    return Err(DeltaError(format!(
                        "literal of {len} bytes but only {} remain",
                        d.len()
                    )));
                }
                out.extend_from_slice(&d[..len]);
                d = &d[len..];
            }
            OP_COPY => {
                let offset = read_u64(&mut d)? as usize;
                let len = read_u32(&mut d)? as usize;
                let end = offset
                    .checked_add(len)
                    .ok_or_else(|| DeltaError("copy range overflows".into()))?;
                if end > basis.len() {
                    return Err(DeltaError(format!(
                        "copy {offset}+{len} exceeds basis of {} bytes",
                        basis.len()
                    )));
                }
                out.extend_from_slice(&basis[offset..end]);
            }
            other => return Err(DeltaError(format!("unknown op {other:#04x}"))),
        }
    }
    Ok(out)
}

/// Builds the ops stream, merging adjacent copies of consecutive ranges.
struct DeltaWriter {
    buf: Vec<u8>,
    /// Offset in `buf` of the pending copy op, with its basis range, so a
    /// following contiguous copy can extend it in place.
    pending_copy: Option<(usize, u64, u32)>,
}

impl DeltaWriter {
    fn new(cap_hint: usize) -> Self {
        DeltaWriter {
            buf: Vec::with_capacity(cap_hint / 8),
            pending_copy: None,
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn literal(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.pending_copy = None;
        self.buf.push(OP_LITERAL);
        self.buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    fn copy(&mut self, offset: u64, len: u32) {
        if let Some((at, start, run)) = self.pending_copy {
            if start + run as u64 == offset {
                let merged = run + len;
                self.buf[at + 9..at + 13].copy_from_slice(&merged.to_le_bytes());
                self.pending_copy = Some((at, start, merged));
                return;
            }
        }
        let at = self.buf.len();
        self.buf.push(OP_COPY);
        self.buf.extend_from_slice(&offset.to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.pending_copy = Some((at, offset, len));
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

fn read_u32(d: &mut &[u8]) -> Result<u32, DeltaError> {
    if d.len() < 4 {
        return Err(DeltaError("truncated u32".into()));
    }
    let v = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
    *d = &d[4..];
    Ok(v)
}

fn read_u64(d: &mut &[u8]) -> Result<u64, DeltaError> {
    if d.len() < 8 {
        return Err(DeltaError("truncated u64".into()));
    }
    let v = u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
    *d = &d[8..];
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdchk_util::mix64;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        (0..len).map(|i| mix64(seed ^ i as u64) as u8).collect()
    }

    #[test]
    fn identical_chunk_encodes_to_one_copy() {
        let basis = noise(16 << 10, 1);
        let sig = ChunkSignature::build(&basis, 2048);
        let delta = delta_encode(&sig, &basis).expect("identical should win");
        // one merged copy op: 1 + 8 + 4 bytes
        assert_eq!(delta.len(), 13);
        assert_eq!(delta_apply(&basis, &delta).unwrap(), basis);
    }

    #[test]
    fn shifted_content_still_matches() {
        let basis = noise(16 << 10, 2);
        // Insert 100 bytes near the front: every later block shifts.
        let mut new = noise(100, 99);
        new.extend_from_slice(&basis);
        let sig = ChunkSignature::build(&basis, 2048);
        let delta = delta_encode(&sig, &new).expect("shifted content should win");
        assert!(delta.len() < new.len() / 4, "delta {} bytes", delta.len());
        assert_eq!(delta_apply(&basis, &delta).unwrap(), new);
    }

    #[test]
    fn partial_overlap_roundtrips() {
        let basis = noise(32 << 10, 3);
        let mut new = basis.clone();
        // Mutate two scattered regions.
        for b in &mut new[5_000..6_000] {
            *b ^= 0xa5;
        }
        new[20_000..20_100].fill(0);
        let sig = ChunkSignature::build(&basis, 2048);
        let delta = delta_encode(&sig, &new).expect("mostly-same should win");
        assert!(delta.len() < new.len() / 2);
        assert_eq!(delta_apply(&basis, &delta).unwrap(), new);
    }

    #[test]
    fn unrelated_content_declines() {
        let basis = noise(8 << 10, 4);
        let new = noise(8 << 10, 555);
        let sig = ChunkSignature::build(&basis, 2048);
        assert!(delta_encode(&sig, &new).is_none());
    }

    #[test]
    fn short_new_chunk_declines() {
        let basis = noise(8 << 10, 5);
        let sig = ChunkSignature::build(&basis, 2048);
        assert!(delta_encode(&sig, &noise(100, 6)).is_none());
    }

    #[test]
    fn empty_basis_declines() {
        let sig = ChunkSignature::build(&[], 2048);
        assert!(delta_encode(&sig, &noise(4096, 7)).is_none());
    }

    #[test]
    fn apply_rejects_out_of_range_copy() {
        let basis = noise(1024, 8);
        let mut delta = vec![OP_COPY];
        delta.extend_from_slice(&2048u64.to_le_bytes());
        delta.extend_from_slice(&100u32.to_le_bytes());
        assert!(delta_apply(&basis, &delta).is_err());
    }

    #[test]
    fn apply_rejects_garbage() {
        let basis = noise(1024, 9);
        assert!(delta_apply(&basis, &[0xff]).is_err());
        assert!(delta_apply(&basis, &[OP_LITERAL, 10, 0, 0, 0, 1]).is_err());
        assert!(delta_apply(&basis, &[OP_COPY, 1, 2]).is_err());
        // Empty delta reconstructs the empty chunk.
        assert_eq!(delta_apply(&basis, &[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn tail_bytes_ship_literally() {
        // Basis not a multiple of the block: tail never matches but the
        // roundtrip stays exact.
        let basis = noise(5000, 10);
        let mut new = basis.clone();
        new.extend_from_slice(&noise(300, 11));
        let sig = ChunkSignature::build(&basis, 2048);
        if let Some(delta) = delta_encode(&sig, &new) {
            assert_eq!(delta_apply(&basis, &delta).unwrap(), new);
        }
    }
}
