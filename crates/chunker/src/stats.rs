//! Chunk-size statistics for Table 4's avg/min/max columns.
//!
//! # Examples
//!
//! ```
//! use stdchk_chunker::{ChunkStats, Chunker, CbRollingChunker};
//!
//! let image: Vec<u8> = (0..100_000u32).map(|i| (i.wrapping_mul(2_654_435_761)) as u8).collect();
//! let stats = ChunkStats::of(&CbRollingChunker::new(48, 12).split(&image));
//! assert_eq!(stats.total, image.len() as u64);
//! assert!(stats.min <= stats.avg() as u64 && stats.avg() as u64 <= stats.max);
//! ```

use stdchk_proto::chunkmap::ChunkEntry;

/// Size distribution of one image's chunks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkStats {
    /// Number of chunks.
    pub count: usize,
    /// Total bytes.
    pub total: u64,
    /// Smallest chunk in bytes (0 when empty).
    pub min: u64,
    /// Largest chunk in bytes (0 when empty).
    pub max: u64,
}

impl ChunkStats {
    /// Computes stats over a chunk list.
    pub fn of(chunks: &[ChunkEntry]) -> ChunkStats {
        if chunks.is_empty() {
            return ChunkStats::default();
        }
        let mut s = ChunkStats {
            count: chunks.len(),
            total: 0,
            min: u64::MAX,
            max: 0,
        };
        for c in chunks {
            let sz = c.size as u64;
            s.total += sz;
            s.min = s.min.min(sz);
            s.max = s.max.max(sz);
        }
        s
    }

    /// Mean chunk size in bytes (0 when empty).
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Merges per-image stats into trace-level averages: returns
    /// `(avg size, avg min, avg max)` across images, the quantities Table 4
    /// reports.
    pub fn trace_averages(per_image: &[ChunkStats]) -> (f64, f64, f64) {
        if per_image.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = per_image.len() as f64;
        let avg = per_image.iter().map(|s| s.avg()).sum::<f64>() / n;
        let min = per_image.iter().map(|s| s.min as f64).sum::<f64>() / n;
        let max = per_image.iter().map(|s| s.max as f64).sum::<f64>() / n;
        (avg, min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdchk_proto::ids::ChunkId;

    fn entry(n: u64, size: u32) -> ChunkEntry {
        ChunkEntry {
            id: ChunkId::test_id(n),
            size,
        }
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ChunkStats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg(), 0.0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn min_max_avg() {
        let s = ChunkStats::of(&[entry(1, 10), entry(2, 30), entry(3, 20)]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.avg(), 20.0);
    }

    #[test]
    fn trace_averages_average_over_images() {
        let a = ChunkStats::of(&[entry(1, 10), entry(2, 30)]); // avg 20
        let b = ChunkStats::of(&[entry(3, 40)]); // avg 40
        let (avg, min, max) = ChunkStats::trace_averages(&[a, b]);
        assert_eq!(avg, 30.0);
        assert_eq!(min, 25.0); // (10+40)/2
        assert_eq!(max, 35.0); // (30+40)/2
    }
}
