//! `stdchk-analyze` CLI.
//!
//! ```text
//! cargo run -p stdchk-analyze --            # report violations
//! cargo run -p stdchk-analyze -- --deny     # exit 1 if any (CI mode)
//! cargo run -p stdchk-analyze -- --list-rules
//! cargo run -p stdchk-analyze -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => {
                for (rule, what) in stdchk_analyze::RULES {
                    println!("{rule}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (try --deny, --list-rules, --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root: this binary lives at
    // crates/analyze, so CARGO_MANIFEST_DIR/../.. is the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|e| {
                eprintln!("cannot resolve workspace root: {e}");
                std::process::exit(2);
            })
    });
    let violations = stdchk_analyze::run(&root);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!(
            "stdchk-analyze: clean ({} rules)",
            stdchk_analyze::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("stdchk-analyze: {} violation(s)", violations.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
