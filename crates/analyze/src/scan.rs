//! Lexical scrubbing: turn a Rust source file into per-line *code*
//! (string/char literals and comments blanked) and per-line *comment
//! text* (everything else blanked), plus a mask of lines inside
//! `#[cfg(test)]` modules.
//!
//! Rules match tokens against the scrubbed code — so `".unwrap()"`
//! inside a doc string or an error message never trips a rule — and
//! match `SAFETY:` / `stdchk-allow(...)` against the comment channel,
//! so commented-out code never satisfies or suppresses anything by
//! accident. The scanner is a character-level state machine, not a
//! parser: it understands `"…"` with escapes, `r#"…"#`, `'c'`
//! vs `'lifetime`, `//` and nestable `/* … */`, which is all the
//! lookalike-token problem requires.

/// One source file split into a code channel and a comment channel.
pub struct ScrubbedFile {
    /// Per line: source with literals and comments replaced by spaces.
    pub code: Vec<String>,
    /// Per line: comment text only (everything else spaces).
    pub comments: Vec<String>,
    /// Per line: true when inside a `#[cfg(test)] mod … { … }` region.
    pub test_mask: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with this many `#`s.
    RawStr(usize),
    /// Inside `'…'` (a char literal, not a lifetime).
    Char,
    /// Inside `/* … */`, at this nesting depth.
    Block(usize),
}

impl ScrubbedFile {
    pub fn new(src: &str) -> ScrubbedFile {
        let mut code = Vec::new();
        let mut comments = Vec::new();
        let mut state = State::Normal;
        for line in src.lines() {
            let (c, m, next) = scrub_line(line, state);
            state = next;
            code.push(c);
            comments.push(m);
        }
        let test_mask = test_mask(&code);
        ScrubbedFile {
            code,
            comments,
            test_mask,
        }
    }
}

/// Scrubs one line starting in `state`; returns (code, comment, state
/// carried into the next line).
fn scrub_line(line: &str, mut state: State) -> (String, String, State) {
    let chars: Vec<char> = line.chars().collect();
    let n = chars.len();
    let mut code = vec![' '; n];
    let mut comment = vec![' '; n];
    let mut i = 0;
    while i < n {
        match state {
            State::Normal => {
                let c = chars[i];
                // Line comment: the rest of the line is comment text.
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    comment[i..n].copy_from_slice(&chars[i..n]);
                    break;
                }
                if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::Block(1);
                    comment[i] = '/';
                    comment[i + 1] = '*';
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Keep the quotes in the code channel so `""` stays
                    // visibly a literal; contents are blanked.
                    code[i] = '"';
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == 'r' {
                    // r"…" / r#"…"# / br"…" — only when `r` starts a
                    // token (else `for` would match).
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    if !prev_ident {
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while j < n && chars[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < n && chars[j] == '"' {
                            code[i] = 'r';
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                }
                if c == '\'' {
                    // Lifetime (`'a`, `'static`) vs char literal
                    // (`'a'`, `'\n'`): a lifetime is quote + ident with
                    // no closing quote right after.
                    let is_lifetime = i + 1 < n
                        && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                        && !(i + 2 < n && chars[i + 2] == '\'');
                    if !is_lifetime {
                        code[i] = '\'';
                        state = State::Char;
                        i += 1;
                        continue;
                    }
                }
                code[i] = c;
                i += 1;
            }
            State::Str => {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    code[i] = '"';
                    state = State::Normal;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if chars[i] == '"' {
                    let end = i + 1 + hashes;
                    if end <= n && chars[i + 1..end].iter().all(|&c| c == '#') {
                        code[i] = '"';
                        state = State::Normal;
                        i = end;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '\'' {
                    code[i] = '\'';
                    state = State::Normal;
                }
                i += 1;
            }
            State::Block(depth) => {
                if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    comment[i] = '*';
                    comment[i + 1] = '/';
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    comment[i] = '/';
                    comment[i + 1] = '*';
                    state = State::Block(depth + 1);
                    i += 2;
                    continue;
                }
                comment[i] = chars[i];
                i += 1;
            }
        }
    }
    // A string/char literal never spans lines here (raw strings and
    // block comments do); plain `"` literals can via `\` continuation,
    // which carrying `state` across lines handles for free.
    (
        code.into_iter().collect(),
        comment.into_iter().collect(),
        state,
    )
}

/// Marks the lines belonging to `#[cfg(test)] mod … { … }` regions by
/// brace-counting on scrubbed code (so braces in strings don't skew
/// the depth).
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    // Saw `#[cfg(test)]`, waiting for the `mod`'s opening brace.
    let mut pending = false;
    // Brace depth remaining inside a test region; None = outside.
    let mut depth: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        if let Some(d) = &mut depth {
            mask[idx] = true;
            for c in line.chars() {
                match c {
                    '{' => *d += 1,
                    '}' => *d -= 1,
                    _ => {}
                }
            }
            if *d <= 0 {
                depth = None;
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending = true;
            mask[idx] = true;
            continue;
        }
        if pending {
            mask[idx] = true;
            // The attribute can gate `mod tests;` (no body) or other
            // items; only a brace on this line opens a region.
            let mut d: i64 = 0;
            let mut opened = false;
            for c in line.chars() {
                match c {
                    '{' => {
                        d += 1;
                        opened = true;
                    }
                    '}' => d -= 1,
                    _ => {}
                }
            }
            pending = false;
            if opened && d > 0 {
                depth = Some(d);
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_leave_the_code_channel() {
        let sf = ScrubbedFile::new(
            "let x = \"call .unwrap() here\"; // and .unwrap() there\n\
             let y = v.unwrap();",
        );
        assert!(!sf.code[0].contains(".unwrap()"));
        assert!(sf.comments[0].contains(".unwrap() there"));
        assert!(sf.code[1].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let sf = ScrubbedFile::new("let s = r#\"dial( stuff \"# ; dial(x);");
        let first_dial = sf.code[0].find("dial(").unwrap();
        // Only the real call survives.
        assert!(first_dial > sf.code[0].find(';').unwrap());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let sf = ScrubbedFile::new("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(sf.code[0].contains(".unwrap()"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let sf = ScrubbedFile::new("let c = '\"'; v.unwrap();");
        assert!(sf.code[0].contains(".unwrap()"));
        // The quote inside the char literal didn't open a string.
        assert_eq!(sf.code[0].matches('"').count(), 0);
    }

    #[test]
    fn block_comments_span_lines() {
        let sf = ScrubbedFile::new("/* dial(\n .unwrap()\n*/ v.unwrap();");
        assert!(!sf.code[0].contains("dial("));
        assert!(!sf.code[1].contains(".unwrap()"));
        assert!(sf.code[2].contains(".unwrap()"));
    }

    #[test]
    fn test_mod_regions_are_masked() {
        let src = "fn hot() { v.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { v.unwrap(); }\n\
                   }\n\
                   fn hot2() { v.unwrap(); }";
        let sf = ScrubbedFile::new(src);
        assert_eq!(sf.test_mask, vec![false, true, true, true, true, false]);
    }
}
