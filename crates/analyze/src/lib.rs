//! `stdchk-analyze`: the workspace's invariants as deny-by-default lints.
//!
//! Generic linters cannot know that a `sync_data` is fine on a lane
//! thread but a stall-everyone bug on a reactor worker, or that every
//! [`Msg`](../stdchk_proto/msg/enum.Msg.html) variant must be exercised
//! by a garbage-decode proptest. This crate encodes exactly those
//! project rules — each one earned by a real incident in this repo's
//! history — and `cargo run -p stdchk-analyze -- --deny` enforces them
//! in CI:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-blocking-on-pump` | modules whose code runs on reactor workers (the pump) never fsync, dial, or block on socket reads — durable work rides the I/O lane, dials ride the blocking lane (the PR 5 split) |
//! | `unsafe-needs-safety` | every `unsafe` in the FFI/intrinsics modules carries a `// SAFETY:` comment within the three lines above it |
//! | `no-unwrap-on-hot-paths` | no `.unwrap()` / `.expect(` in pump-adjacent modules: errors there must propagate or fail-stop with an actionable message, never panic a half-alive server |
//! | `wire-msg-coverage` | every `Msg` tag and every concrete `Wire` impl is referenced by the proto test suite (the garbage-decode/roundtrip proptests) |
//!
//! A violation is suppressed only by an inline justification on the
//! same or the immediately preceding line:
//!
//! ```text
//! // stdchk-allow(no-unwrap-on-hot-paths): active segment always exists — rotate inserts before publishing
//! let seg = shared.segs.get_mut(&active).expect("active segment");
//! ```
//!
//! A `stdchk-allow` without a non-empty reason is itself a violation:
//! the point is a reviewable justification, not an escape hatch.
//!
//! The scan is lexical, not syntactic — string/char literals and
//! comments are blanked before token matching, `#[cfg(test)]` modules
//! are skipped (test code may unwrap), and tokens are matched on
//! identifier boundaries — which keeps the analyzer dependency-free and
//! fast enough to run on every commit. The price is that it lints named
//! files, not call graphs: a rule's file list says "code in this module
//! can run on a pump thread", and helpers a pump-reachable module calls
//! into must either be listed too or be the blocking layer the rule is
//! protecting (see `RULES` in the source for each list and its
//! rationale).

use std::fmt;
use std::path::{Path, PathBuf};

mod scan;
pub use scan::ScrubbedFile;

/// One rule finding, pointing at a workspace-relative file and 1-based
/// line.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (the `stdchk-allow` key).
    pub rule: &'static str,
    /// Human-oriented description of what tripped.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// `no-blocking-on-pump`: modules with reactor-worker-reachable code.
///
/// These files contain code invoked from reactor worker callbacks (app
/// `on_msg`/`on_close`/`on_tick`, effects executors, the driver pump).
/// Blocking there stalls every connection the worker owns. The blocking
/// *layer itself* — `conn.rs` (dial/read primitives), `iolane.rs`,
/// `log.rs`/`store`/`metalog.rs` (the durable engines the lane runs),
/// `uring.rs` (the syscall shims) — is deliberately not listed: those
/// modules exist to block, on threads that are allowed to.
const PUMP_FILES: &[&str] = &[
    "crates/net/src/reactor.rs",
    "crates/net/src/driver.rs",
    "crates/net/src/manager_server.rs",
    "crates/net/src/benefactor_server.rs",
    "crates/net/src/client.rs",
];

/// Tokens that block: fsyncs, dials, bounded-or-not socket reads.
const BLOCKING_TOKENS: &[&str] = &[
    ".sync_data(",
    ".sync_all(",
    "dial(",
    "read_frame_timeout(",
    "read_loop(",
];

/// `unsafe-needs-safety`: the workspace's entire unsafe surface.
const UNSAFE_FILES: &[&str] = &[
    "crates/net/src/reactor.rs",
    "crates/net/src/uring.rs",
    "crates/util/src/crc32.rs",
    "crates/util/src/sha256.rs",
];

/// `no-unwrap-on-hot-paths`: pump workers plus the storage engines their
/// durable work lands in — a panic in any of these unwinds a thread the
/// rest of the server silently depends on (flusher, lane worker, pump).
const HOT_FILES: &[&str] = &[
    "crates/net/src/reactor.rs",
    "crates/net/src/iolane.rs",
    "crates/net/src/driver.rs",
    "crates/net/src/log.rs",
    "crates/net/src/metalog.rs",
    "crates/net/src/store/mod.rs",
    "crates/net/src/store/segment.rs",
];

/// Every rule this analyzer enforces (the `--list-rules` output).
pub const RULES: &[(&str, &str)] = &[
    (
        "no-blocking-on-pump",
        "no fsync/dial/blocking-read tokens in reactor-worker-reachable modules",
    ),
    (
        "unsafe-needs-safety",
        "every `unsafe` in the FFI/intrinsics modules carries a // SAFETY: comment",
    ),
    (
        "no-unwrap-on-hot-paths",
        "no .unwrap()/.expect( in pump/storage-engine modules (propagate or fail-stop)",
    ),
    (
        "wire-msg-coverage",
        "every Msg tag and concrete Wire impl is referenced by the proto test suite",
    ),
];

/// Runs every rule against the workspace rooted at `root`, returning
/// all unsuppressed violations (plus one violation per reason-less
/// `stdchk-allow`).
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for rel in PUMP_FILES {
        scan_tokens(
            root,
            rel,
            "no-blocking-on-pump",
            BLOCKING_TOKENS,
            "blocking call on a pump-reachable path; durable work rides the IoLane, dials ride the blocking lane",
            &mut out,
        );
    }
    for rel in UNSAFE_FILES {
        unsafe_needs_safety(root, rel, &mut out);
    }
    for rel in HOT_FILES {
        scan_tokens(
            root,
            rel,
            "no-unwrap-on-hot-paths",
            &[".unwrap()", ".expect("],
            "panic on a pump/flusher/lane thread leaves a half-alive server; propagate the error or fail-stop with an actionable message",
            &mut out,
        );
    }
    wire_msg_coverage(root, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// True when the token hit at `start` is not glued to a preceding
/// identifier character (so `redial(` is not a `dial(` hit). Tokens
/// that open with punctuation (`.unwrap()`) need no such check — a
/// method call is always preceded by its receiver.
fn boundary_ok(line: &str, start: usize, token: &str) -> bool {
    if !token
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return true;
    }
    match line[..start].chars().next_back() {
        Some(c) => !(c.is_alphanumeric() || c == '_'),
        None => true,
    }
}

/// Reports every occurrence of any of `tokens` in non-test code of
/// `rel`, honoring suppressions.
fn scan_tokens(
    root: &Path,
    rel: &str,
    rule: &'static str,
    tokens: &[&str],
    why: &str,
    out: &mut Vec<Violation>,
) {
    let Some(sf) = load(root, rel) else { return };
    for (idx, code) in sf.code.iter().enumerate() {
        if sf.test_mask[idx] {
            continue;
        }
        for tok in tokens {
            let mut from = 0;
            while let Some(pos) = code[from..].find(tok) {
                let at = from + pos;
                from = at + tok.len();
                if !boundary_ok(code, at, tok) {
                    continue;
                }
                push_checked(
                    &sf,
                    rel,
                    idx,
                    rule,
                    format!("`{}` — {}", tok.trim_end_matches('('), why),
                    out,
                );
            }
        }
    }
}

/// The `unsafe-needs-safety` rule: each `unsafe` keyword in non-test
/// code must have `SAFETY:` in a comment on its own line or the three
/// above it.
fn unsafe_needs_safety(root: &Path, rel: &str, out: &mut Vec<Violation>) {
    let Some(sf) = load(root, rel) else { return };
    for (idx, code) in sf.code.iter().enumerate() {
        if sf.test_mask[idx] {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = code[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            if !boundary_ok(code, at, "unsafe") {
                continue;
            }
            // Whole-token: `unsafe_op_in_unsafe_fn` and friends are
            // identifiers, not the keyword.
            if code[at + "unsafe".len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            // Accept `SAFETY:` (a block-site justification) or
            // `# Safety` (an `unsafe fn`'s doc contract) on the same
            // line or anywhere in the contiguous comment block
            // immediately above it.
            let documented = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
            let mut covered = documented(&sf.comments[idx]);
            let mut i = idx;
            while !covered && i > 0 {
                i -= 1;
                // Walk through comment lines and attributes (an
                // `unsafe fn`'s doc contract sits above its
                // `#[target_feature]` etc.).
                let code = sf.code[i].trim();
                let comment_only = !sf.comments[i].trim().is_empty() && code.is_empty();
                if !(comment_only || code.starts_with("#[")) {
                    break;
                }
                covered = documented(&sf.comments[i]);
            }
            if !covered {
                push_checked(
                    &sf,
                    rel,
                    idx,
                    "unsafe-needs-safety",
                    "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
                    out,
                );
            }
        }
    }
}

/// The `wire-msg-coverage` rule: collect every `Msg` tag name from the
/// `msg_tags!` table and every concrete `impl Wire for T` target, then
/// require each name to appear somewhere in `crates/proto/tests/`.
fn wire_msg_coverage(root: &Path, out: &mut Vec<Violation>) {
    let msg_rel = "crates/proto/src/msg.rs";
    let Some(msg_sf) = load(root, msg_rel) else {
        return;
    };
    // (name, file, line) of everything that must be exercised.
    let mut required: Vec<(String, &str, usize)> = Vec::new();
    let mut in_tags = false;
    for (idx, code) in msg_sf.code.iter().enumerate() {
        if code.contains("msg_tags!") {
            in_tags = true;
            continue;
        }
        if in_tags {
            if code.contains('}') {
                in_tags = false;
                continue;
            }
            // `    14 => CommitChunkMap,`
            if let Some((_, name)) = code.split_once("=>") {
                let name = name.trim().trim_end_matches(',').trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    required.push((name.to_string(), msg_rel, idx + 1));
                }
            }
        }
    }
    for rel in [
        "crates/proto/src/msg.rs",
        "crates/proto/src/codec.rs",
        "crates/proto/src/meta.rs",
    ] {
        let Some(sf) = load(root, rel) else { continue };
        for (idx, code) in sf.code.iter().enumerate() {
            if sf.test_mask[idx] || code.contains('$') {
                // `$` lines are macro templates (`impl Wire for $t`),
                // instantiated elsewhere; the `wire_u64_id!` id newtypes
                // they expand to are covered via the messages carrying
                // them.
                continue;
            }
            let Some(pos) = code.find("impl Wire for ") else {
                continue;
            };
            let target = code[pos + "impl Wire for ".len()..].trim();
            let name: String = target
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                required.push((name, rel, idx + 1));
            }
        }
    }
    // One haystack: every test source under crates/proto/tests.
    let mut haystack = String::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates/proto/tests")) {
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        paths.sort();
        for p in paths {
            if let Ok(s) = std::fs::read_to_string(&p) {
                // Scrubbed code only: a commented-out or stringified
                // mention is not coverage.
                for line in ScrubbedFile::new(&s).code {
                    haystack.push_str(&line);
                    haystack.push('\n');
                }
            }
        }
    }
    for (name, rel, line) in required {
        let hit = haystack.match_indices(&name).any(|(at, _)| {
            boundary_ok(&haystack, at, &name)
                && !haystack[at + name.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
        });
        if !hit {
            // Suppressions live at the declaration site.
            let sf = load(root, rel).expect("declaring file was just read");
            push_checked(
                &sf,
                rel,
                line - 1,
                "wire-msg-coverage",
                format!(
                    "`{name}` is never referenced by crates/proto/tests — add it to the \
                     garbage-decode/roundtrip proptests"
                ),
                out,
            );
        }
    }
}

/// Appends the violation unless a well-formed suppression covers
/// `idx`; a matching suppression with an empty reason is reported
/// instead (justifications are the point).
fn push_checked(
    sf: &ScrubbedFile,
    rel: &str,
    idx: usize,
    rule: &'static str,
    msg: String,
    out: &mut Vec<Violation>,
) {
    for i in [idx, idx.saturating_sub(1)] {
        if let Some(rest) = sf.comments[i].split("stdchk-allow(").nth(1) {
            if let Some((key, after)) = rest.split_once(')') {
                if key.trim() == rule {
                    let reason = after.trim_start().strip_prefix(':').unwrap_or("").trim();
                    if reason.is_empty() {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: i + 1,
                            rule,
                            msg: format!(
                                "`stdchk-allow({rule})` without a justification — write the reason after the colon"
                            ),
                        });
                    }
                    return;
                }
            }
        }
        if i == 0 {
            break;
        }
    }
    out.push(Violation {
        file: rel.to_string(),
        line: idx + 1,
        rule,
        msg,
    });
}

/// Reads and scrubs `root/rel`; `None` when the file does not exist
/// (fixture trees contain only the files a test targets).
fn load(root: &Path, rel: &str) -> Option<ScrubbedFile> {
    let src = std::fs::read_to_string(root.join(rel)).ok()?;
    Some(ScrubbedFile::new(&src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_rejects_identifier_prefixes() {
        // `redial(` must not count as a `dial(` hit.
        let line = "        self.schedule_mgr_redial(delay);";
        let at = line.find("dial(").unwrap();
        assert!(!boundary_ok(line, at, "dial("));
        let line2 = "        let s = dial(&addr, t)?;";
        assert!(boundary_ok(line2, line2.find("dial(").unwrap(), "dial("));
        // Method tokens are never glued to their receiver.
        let line3 = "        let v = conn.unwrap();";
        assert!(boundary_ok(
            line3,
            line3.find(".unwrap()").unwrap(),
            ".unwrap()"
        ));
    }
}
