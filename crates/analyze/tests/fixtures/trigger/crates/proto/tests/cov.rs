// Fixture test file: references Hello and Covered, but neither
// Forgotten nor Orphan. `HelloWorld` must not count as `Hello`.
fn uses() {
    let _ = Msg::Hello { node: 0 };
    roundtrip::<Covered>();
    let _ = HelloWorld;
}
