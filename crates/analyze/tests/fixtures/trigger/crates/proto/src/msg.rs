// Fixture: a tag table and Wire impls, some of which the fixture test
// suite never references.

msg_tags! {
    0 => Hello,
    1 => Forgotten,
}

impl Wire for Covered {}

impl Wire for Orphan {}

macro_rules! ids {
    ($t:ident) => {
        impl Wire for $t {}
    };
}
