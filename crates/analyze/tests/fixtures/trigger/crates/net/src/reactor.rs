// Fixture: trips every file-scoped rule at least once. Never compiled —
// the analyzer integration tests point `stdchk_analyze::run` at the
// tree this file lives in.

fn hot_path(stream: &TcpStream) {
    // Line 7: a blocking dial on a pump-reachable module.
    let conn = dial("127.0.0.1:1", TIMEOUT);
    // Line 9: an unwrap on a hot path.
    let v = conn.unwrap();
    // Line 11: an expect on a hot path.
    v.metadata().expect("metadata");
    // Not a violation: `redial(` is a different token.
    schedule_redial("127.0.0.1:1");
    // Not a violation: inside a string literal.
    let s = "call .unwrap() and dial( things";
    // stdchk-allow(no-blocking-on-pump):
    let late = dial("empty reason above is itself a violation", TIMEOUT);
}

fn fsyncs(f: &File) {
    f.sync_data().ok();
    f.sync_all().ok();
}

fn raw(p: *const u8) -> u8 {
    // Line 26: unsafe without a SAFETY comment.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    fn fine_here() {
        let x = maybe().unwrap();
        let y = dial("tests may block", TIMEOUT).expect("fine");
        // Test-module unsafe is also exempt.
        unsafe { poke() };
    }
}
