// Fixture: pump-module code with nothing to report — lookalike tokens
// only appear where the scrubber must ignore them.

fn pump(conn: &Conn) {
    // `redial(` is not `dial(`; `unwrap_or` is not `unwrap()`.
    schedule_redial(conn);
    let v = maybe().unwrap_or(0);
    let s = "strings may say dial( and .unwrap() freely";
    /* block comments too: .sync_data( f.sync_all( read_loop( */
    let c = 'u'; // char literals must not open strings: '"'
    let msg = format!("{v}{s}{c}");
    send(msg);
}
