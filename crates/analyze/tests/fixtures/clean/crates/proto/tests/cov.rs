fn uses() {
    let _ = Msg::Hello { node: 0 };
    let _ = Msg::Ack { req: 1 };
}
