// Fixture: every tag and every concrete Wire impl is referenced by the
// fixture test file.

msg_tags! {
    0 => Hello,
    1 => Ack,
}

impl Wire for Hello {}
