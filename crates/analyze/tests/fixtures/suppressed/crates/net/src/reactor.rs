// Fixture: the same shapes as the trigger tree, every one carrying a
// justified suppression or a SAFETY comment — the analyzer must report
// nothing.

fn hot_path(stream: &TcpStream) {
    // stdchk-allow(no-blocking-on-pump): fixture — runs on the blocking lane
    let conn = dial("127.0.0.1:1", TIMEOUT);
    // stdchk-allow(no-unwrap-on-hot-paths): fixture — invariant holds by construction
    let v = conn.unwrap();
    let w = v.metadata().expect("meta"); // stdchk-allow(no-unwrap-on-hot-paths): same-line allows also work
}

fn raw(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees p is valid.
    unsafe { *p }
}
