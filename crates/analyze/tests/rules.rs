//! Rule behavior against the checked-in fixture trees, plus the CLI
//! `--deny` contract. Each fixture reproduces the workspace path
//! layout (`crates/net/src/reactor.rs`, …) so the rules' file lists
//! resolve against it exactly as they do against the real repo.

use std::path::PathBuf;
use std::process::Command;

use stdchk_analyze::{run, Violation};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules_at(vs: &[Violation], rule: &str) -> Vec<usize> {
    vs.iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn trigger_tree_fires_every_rule() {
    let vs = run(&fixture("trigger"));
    // no-blocking-on-pump: the dial (7) and the two fsyncs (21, 22) —
    // not the redial, not the string, and the empty-reason allow (16)
    // replaces the dial under it.
    assert_eq!(rules_at(&vs, "no-blocking-on-pump"), vec![7, 16, 21, 22]);
    // no-unwrap-on-hot-paths: the unwrap and the expect.
    assert_eq!(rules_at(&vs, "no-unwrap-on-hot-paths"), vec![9, 11]);
    // unsafe-needs-safety: the raw deref, not the test-module unsafe.
    assert_eq!(rules_at(&vs, "unsafe-needs-safety"), vec![27]);
    // wire-msg-coverage: Forgotten (tag table) and Orphan (Wire impl),
    // not Covered/Hello, and not the `$t` macro template.
    let wire: Vec<&str> = vs
        .iter()
        .filter(|v| v.rule == "wire-msg-coverage")
        .map(|v| v.msg.split('`').nth(1).unwrap())
        .collect();
    assert_eq!(wire, vec!["Forgotten", "Orphan"]);
}

#[test]
fn empty_reason_allow_is_its_own_violation() {
    let vs = run(&fixture("trigger"));
    let empties: Vec<&Violation> = vs
        .iter()
        .filter(|v| v.msg.contains("without a justification"))
        .collect();
    assert_eq!(empties.len(), 1, "{vs:?}");
    assert_eq!(empties[0].line, 16);
    assert_eq!(empties[0].rule, "no-blocking-on-pump");
}

#[test]
fn suppressed_tree_is_clean() {
    let vs = run(&fixture("suppressed"));
    assert!(vs.is_empty(), "justified allows must silence rules: {vs:?}");
}

#[test]
fn clean_tree_is_clean() {
    let vs = run(&fixture("clean"));
    assert!(vs.is_empty(), "lookalike tokens must not fire: {vs:?}");
}

#[test]
fn violations_sort_and_render_stably() {
    let vs = run(&fixture("trigger"));
    let mut sorted = vs.clone();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    assert_eq!(
        vs.iter().map(ToString::to_string).collect::<Vec<_>>(),
        sorted.iter().map(ToString::to_string).collect::<Vec<_>>(),
    );
    let first = vs[0].to_string();
    assert!(
        first.starts_with("crates/net/src/reactor.rs:7: no-blocking-on-pump: "),
        "{first}"
    );
}

#[test]
fn deny_exits_nonzero_on_seeded_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_stdchk-analyze"))
        .args(["--deny", "--root"])
        .arg(fixture("trigger"))
        .output()
        .expect("run analyzer binary");
    assert!(
        !out.status.success(),
        "--deny must fail on a tree with violations"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-blocking-on-pump"), "{stdout}");
}

#[test]
fn deny_exits_zero_on_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_stdchk-analyze"))
        .args(["--deny", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("run analyzer binary");
    assert!(out.status.success(), "--deny must pass a clean tree");
}

#[test]
fn the_workspace_itself_is_clean() {
    // The repo must stay analyzer-clean: this is the same gate CI runs
    // via `cargo run -p stdchk-analyze -- --deny`, kept as a test so
    // plain `cargo test` catches a regression without the extra step.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let vs = run(&root);
    assert!(vs.is_empty(), "workspace has analyzer violations: {vs:#?}");
}
