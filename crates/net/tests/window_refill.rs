//! Repro: sliding-window write larger than the client buffer must make
//! progress (window refill paced by PutChunkOk acks) over the reactor.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::MemStore;
use stdchk_net::{
    BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, ServerOpts, WriteOptions,
};
use stdchk_util::mix64;

#[test]
fn sliding_window_refills_past_client_buffer() {
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 1 << 20;
    pool_cfg.reservation_ttl = stdchk_util::Dur::from_secs(600);
    let mut benef_cfg = BenefactorConfig::fast_for_tests();
    benef_cfg.gc_grace = stdchk_util::Dur::from_secs(600);
    let opts = ServerOpts {
        workers: 4,
        ..ServerOpts::default()
    };
    let mgr = ManagerServer::spawn_with("127.0.0.1:0", pool_cfg, opts).expect("manager");
    let _benef = BenefactorServer::spawn_with(
        BenefactorNetConfig {
            manager_addr: mgr.addr().to_string(),
            listen: "127.0.0.1:0".into(),
            total_space: 8 << 30,
            cfg: benef_cfg,
            store: Arc::new(MemStore::new()),
        },
        opts,
    )
    .expect("benefactor");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 1 {
        assert!(std::time::Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");

    let data: Vec<u8> = (0..24 << 20)
        .map(|i| mix64(0xabcd ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watchdog = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..600 {
                if done.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!("WATCHDOG: write stuck after 60s, aborting");
            std::process::exit(42);
        })
    };
    let mut w = grid
        .create(
            "/repro/window.n0",
            WriteOptions {
                session: SessionConfig {
                    protocol: WriteProtocol::SlidingWindow { buffer: 8 << 20 },
                    ..SessionConfig::default()
                },
                ..WriteOptions::default()
            },
        )
        .expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish");
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    watchdog.join().unwrap();
}
