//! End-to-end tests of the real TCP deployment on loopback: manager server,
//! benefactor servers with blob stores, and the blocking client.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::{DiskStore, MemStore, SegmentStore};
use stdchk_net::{
    Backend, BenefactorNetConfig, BenefactorServer, Grid, GridRuntime, ManagerServer, ServerOpts,
    WriteOptions,
};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_util::mix64;

struct TestPool {
    mgr: ManagerServer,
    benefactors: Vec<BenefactorServer>,
}

impl TestPool {
    fn start(n: usize) -> TestPool {
        let mut pool_cfg = PoolConfig::fast_for_tests();
        pool_cfg.chunk_size = 64 << 10;
        let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg).expect("manager");
        let mut benefactors = Vec::new();
        for _ in 0..n {
            benefactors.push(
                BenefactorServer::spawn(BenefactorNetConfig {
                    manager_addr: mgr.addr().to_string(),
                    listen: "127.0.0.1:0".into(),
                    total_space: 256 << 20,
                    cfg: BenefactorConfig::fast_for_tests(),
                    store: Arc::new(MemStore::new()),
                })
                .expect("benefactor"),
            );
        }
        let pool = TestPool { mgr, benefactors };
        pool.wait_online(n);
        pool
    }

    fn wait_online(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.mgr.online_benefactors() < n {
            assert!(Instant::now() < deadline, "pool never came online");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn grid(&self) -> Grid {
        Grid::connect(&self.mgr.addr().to_string()).expect("connect")
    }
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| mix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect()
}

fn opts(protocol: WriteProtocol) -> WriteOptions {
    WriteOptions {
        session: SessionConfig {
            protocol,
            ..SessionConfig::default()
        },
        ..WriteOptions::default()
    }
}

#[test]
fn sliding_window_roundtrip_over_tcp() {
    let pool = TestPool::start(3);
    let grid = pool.grid();
    let data = payload(300 << 10, 1); // ~5 chunks
    let mut w = grid
        .create(
            "/app/sw.n0",
            opts(WriteProtocol::SlidingWindow { buffer: 4 << 20 }),
        )
        .expect("create");
    w.write_all(&data).expect("write");
    let stats = w.finish().expect("finish");
    assert_eq!(stats.bytes_written, data.len() as u64);
    assert!(stats.oab().is_some() && stats.asb().is_some());

    let r = grid.open("/app/sw.n0", None).expect("open");
    assert_eq!(r.file_size(), data.len() as u64);
    assert_eq!(r.read_all().expect("read"), data);
    pool.mgr.check_invariants();
}

#[test]
fn complete_local_write_roundtrip_over_tcp() {
    let pool = TestPool::start(2);
    let grid = pool.grid();
    let data = payload(200 << 10, 2);
    let mut w = grid
        .create("/app/clw.n0", opts(WriteProtocol::CompleteLocal))
        .expect("create");
    for piece in data.chunks(17 << 10) {
        w.write_all(piece).expect("write");
    }
    w.finish().expect("finish");
    assert_eq!(
        grid.open("/app/clw.n0", None).unwrap().read_all().unwrap(),
        data
    );
}

#[test]
fn incremental_write_roundtrip_over_tcp() {
    let pool = TestPool::start(2);
    let grid = pool.grid();
    let data = payload(400 << 10, 3);
    let mut w = grid
        .create(
            "/app/iw.n0",
            opts(WriteProtocol::Incremental {
                temp_size: 128 << 10,
            }),
        )
        .expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish");
    assert_eq!(
        grid.open("/app/iw.n0", None).unwrap().read_all().unwrap(),
        data
    );
}

#[test]
fn session_semantics_hide_uncommitted_data() {
    let pool = TestPool::start(2);
    let grid = pool.grid();
    let mut w = grid
        .create("/app/hidden.n0", WriteOptions::default())
        .expect("create");
    w.write_all(&payload(64 << 10, 4)).expect("write");
    // Not yet finished: the file must not exist for readers.
    assert!(grid.stat("/app/hidden.n0").is_err());
    w.finish().expect("finish");
    assert_eq!(grid.stat("/app/hidden.n0").unwrap().size, 64 << 10);
}

#[test]
fn dedup_reduces_second_version_transfers() {
    let pool = TestPool::start(3);
    let grid = pool.grid();
    let data = payload(512 << 10, 5);
    let mut o = WriteOptions::default();
    o.session.dedup = true;
    let mut w = grid.create("/app/inc.n0", o.clone()).expect("v1");
    w.write_all(&data).expect("write");
    let s1 = w.finish().expect("finish v1");
    assert_eq!(s1.bytes_deduped, 0);

    // Second version: dirty one chunk worth of data.
    let mut data2 = data.clone();
    data2[200 << 10] ^= 0xff;
    let mut w = grid.create("/app/inc.n0", o).expect("v2");
    w.write_all(&data2).expect("write");
    let s2 = w.finish().expect("finish v2");
    assert!(
        s2.bytes_deduped >= s2.bytes_written * 7 / 10,
        "most bytes should dedup: {} of {}",
        s2.bytes_deduped,
        s2.bytes_written
    );
    assert_eq!(
        grid.open("/app/inc.n0", None).unwrap().read_all().unwrap(),
        data2
    );
    // Both versions retained (no policy set).
    assert_eq!(grid.versions("/app/inc.n0").unwrap().len(), 2);
    pool.mgr.check_invariants();
}

/// The wire-dedup subsystem end to end: the second, ~70%-similar version
/// of a checkpoint negotiates have/want with the manager, ships only the
/// missing chunks (full or as deltas), and both versions read back
/// byte-identical. The session's wire accounting must agree with what
/// [`SimilarityTracker`] predicts from the chunk streams.
#[test]
fn negotiation_ships_only_missing_chunks_of_similar_version() {
    use stdchk_chunker::{Chunker, FsChunker, SimilarityTracker};

    if !stdchk_net::dedup_enabled() {
        // `STDCHK_DEDUP=off` is the full-transfer A/B baseline; the other
        // roundtrip tests cover it.
        return;
    }
    const CHUNK: usize = 64 << 10;
    const CHUNKS: usize = 10;
    let pool = TestPool::start(3);
    let grid = pool.grid();

    let v1 = payload(CHUNKS * CHUNK, 21);
    // ~70% similar: dirty 3 of 10 chunks with a single flipped byte each
    // (near-miss chunks — exactly what the delta path is for).
    let mut v2 = v1.clone();
    for i in [1usize, 4, 8] {
        v2[i * CHUNK + 17] ^= 0xff;
    }
    let chunker = FsChunker::new(CHUNK);
    let mut tracker = SimilarityTracker::new();
    tracker.observe(&chunker.split(&v1));
    let report = tracker.predict(&chunker.split(&v2));
    assert_eq!(report.dup_bytes, 7 * CHUNK as u64, "test setup");

    let mut w = grid
        .create("/ckpt/img.n0", WriteOptions::default())
        .expect("v1");
    w.write_all(&v1).expect("write v1");
    let s1 = w.finish().expect("finish v1");
    // First version: everything is offered, everything is wanted.
    assert_eq!(s1.offered_chunks, CHUNKS as u64);
    assert_eq!(s1.wanted_chunks, CHUNKS as u64);
    assert_eq!(s1.wire_reused_bytes, 0);

    let mut w = grid
        .create("/ckpt/img.n0", WriteOptions::default())
        .expect("v2");
    w.write_all(&v2).expect("write v2");
    let s2 = w.finish().expect("finish v2");

    // Wanted-chunk count and bytes-on-wire match the similarity report:
    // the 7 duplicate chunks commit by reference, the 3 dirty ones ship —
    // as deltas or full, but never more than their plain size.
    assert_eq!(s2.offered_chunks, CHUNKS as u64);
    assert_eq!(s2.wanted_chunks * CHUNK as u64, report.new_bytes);
    assert_eq!(s2.wire_reused_bytes, report.dup_bytes);
    let on_wire = s2.wire_delta_bytes + s2.wire_full_bytes;
    assert!(on_wire > 0, "wanted chunks must actually travel");
    assert!(
        on_wire <= report.new_bytes,
        "bytes on wire {on_wire} exceed the similarity report's {} new bytes",
        report.new_bytes
    );
    assert!(
        s2.wire_delta_bytes > 0,
        "single-byte flips must delta-encode against the harvested signatures"
    );
    assert!(
        on_wire * 2 <= s2.bytes_written,
        "a 70%-similar version must ship under half its bytes"
    );

    // Both versions remain readable, byte for byte.
    let versions = grid.versions("/ckpt/img.n0").expect("versions");
    assert_eq!(versions.len(), 2);
    let (old, new) = (versions[0].version, versions[1].version);
    assert_eq!(
        grid.open("/ckpt/img.n0", Some(old))
            .unwrap()
            .read_all()
            .unwrap(),
        v1
    );
    assert_eq!(
        grid.open("/ckpt/img.n0", Some(new))
            .unwrap()
            .read_all()
            .unwrap(),
        v2
    );
    // Manager-side ledger saw the same traffic.
    let totals = pool.mgr.dedup_totals();
    assert_eq!(totals.commits, 2);
    assert_eq!(totals.reused_bytes, report.dup_bytes);
    pool.mgr.check_invariants();
}

#[test]
fn metadata_operations_work_over_tcp() {
    let pool = TestPool::start(2);
    let grid = pool.grid();
    grid.set_policy("/policy-dir", RetentionPolicy::REPLACE)
        .expect("set policy");
    for name in ["a.n0", "b.n0"] {
        let mut w = grid
            .create(&format!("/meta/{name}"), WriteOptions::default())
            .expect("create");
        w.write_all(&payload(32 << 10, 6)).expect("write");
        w.finish().expect("finish");
    }
    let listing = grid.list("/meta").expect("list");
    let names: Vec<&str> = listing.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["a.n0", "b.n0"]);
    let attr = grid.stat("/meta").expect("stat dir");
    assert!(attr.is_dir);

    grid.delete("/meta/a.n0").expect("delete");
    assert!(grid.stat("/meta/a.n0").is_err());
    assert_eq!(grid.list("/meta").unwrap().len(), 1);
}

#[test]
fn replication_reaches_two_copies() {
    let pool = TestPool::start(3);
    let grid = pool.grid();
    let data = payload(128 << 10, 7);
    let mut o = WriteOptions {
        replication: 2,
        ..WriteOptions::default()
    };
    o.session.pessimistic = true; // finish() returns only when replicated
    let mut w = grid.create("/app/rep.n0", o).expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish");
    // Every chunk is on two benefactors: total stored chunk instances is
    // twice the distinct count (2 chunks of 64 KiB).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let counts: Vec<usize> = pool.benefactors.iter().map(|b| b.chunk_count()).collect();
        let total: usize = counts.iter().sum();
        if total == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never settled at 4: {counts:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    pool.mgr.check_invariants();
}

#[test]
fn write_survives_benefactor_death() {
    let pool = TestPool::start(4);
    let grid = pool.grid();
    // Kill one benefactor before writing; its stripe slot must fail over.
    pool.benefactors[0].shutdown();
    std::thread::sleep(Duration::from_millis(50));
    let data = payload(256 << 10, 8);
    let mut w = grid
        .create("/app/survivor.n0", WriteOptions::default())
        .expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish despite dead benefactor");
    assert_eq!(
        grid.open("/app/survivor.n0", None)
            .unwrap()
            .read_all()
            .unwrap(),
        data
    );
}

/// Writes through a benefactor backed by `open_store(dir)`, restarts the
/// benefactor process on the same directory, and checks the restarted
/// index adopts every persisted chunk.
fn benefactor_serves_after_restart(
    tag: &str,
    open_store: impl Fn(&std::path::Path) -> Arc<dyn stdchk_net::store::ChunkStore>,
) {
    let dir = std::env::temp_dir().join(format!("stdchk-net-restart-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg).expect("manager");
    let b1 = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 64 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store: open_store(&dir),
    })
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    let data = payload(128 << 10, 9);
    let mut w = grid
        .create("/app/durable.n0", WriteOptions::default())
        .expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish");

    // Restart the benefactor process on the same directory.
    let old_chunks = b1.chunk_count();
    assert!(old_chunks > 0);
    b1.shutdown();
    drop(b1);
    let b2 = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 64 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store: open_store(&dir),
    })
    .expect("benefactor restart");
    assert_eq!(b2.chunk_count(), old_chunks, "index adopted from disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_store_benefactor_serves_after_restart() {
    benefactor_serves_after_restart("disk", |dir| Arc::new(DiskStore::open(dir).expect("store")));
}

#[test]
fn segment_store_benefactor_serves_after_restart() {
    benefactor_serves_after_restart("seg", |dir| {
        // The store directory is exclusively locked; after an in-process
        // "restart" the old server's threads may still be draining their
        // Arc, so retry until they release it.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match SegmentStore::open(dir) {
                Ok(s) => return Arc::new(s) as Arc<dyn stdchk_net::store::ChunkStore>,
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("open segment store: {e}"),
            }
        }
    });
}

/// Opens a durable manager on `meta_dir`, retrying while a just-dropped
/// predecessor still holds the log directory's `LOCK` (its threads drain
/// their `Arc`s asynchronously).
fn respawn_durable(
    pool_cfg: PoolConfig,
    meta_dir: &std::path::Path,
    log_cfg: stdchk_net::metalog::MetaLogConfig,
) -> ManagerServer {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match ManagerServer::spawn_durable_with("127.0.0.1:0", pool_cfg.clone(), meta_dir, log_cfg)
        {
            Ok(m) => return m,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("open durable manager: {e}"),
        }
    }
}

/// The tentpole acceptance test: kill and restart the manager under a
/// populated namespace. `stat`/`list`/`open` must succeed from replayed
/// WAL state *before* any benefactor re-offer is processed — here no
/// re-offer (or even heartbeat) can ever arrive, because the benefactors
/// still dial the dead manager's address and commit stashing is off.
#[test]
fn durable_manager_serves_after_restart_before_any_reoffer() {
    let meta_dir = std::env::temp_dir().join(format!("stdchk-mgr-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&meta_dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    // The restarted manager restores benefactors as online; keep them so
    // for the duration of the test even though they never heartbeat it.
    pool_cfg.benefactor_timeout = stdchk_util::Dur::from_secs(60);
    let log_cfg = stdchk_net::metalog::MetaLogConfig::default();
    let mgr =
        ManagerServer::spawn_durable_with("127.0.0.1:0", pool_cfg.clone(), &meta_dir, log_cfg)
            .expect("durable manager");
    let mut benefactors = Vec::new();
    for _ in 0..2 {
        benefactors.push(
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 256 << 20,
                cfg: BenefactorConfig::fast_for_tests(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor"),
        );
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 2 {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Populate the namespace with everything the WAL must carry: a
    // policy, two versions of one file (the policy prunes to one), a
    // second file, and a deleted file.
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    grid.set_policy("/jobs", RetentionPolicy::REPLACE)
        .expect("policy");
    let v1 = payload(130 << 10, 41);
    let v2 = payload(200 << 10, 42);
    for data in [&v1, &v2] {
        let mut w = grid
            .create("/jobs/a.n0", WriteOptions::default())
            .expect("create a");
        w.write_all(data).expect("write");
        w.finish().expect("finish");
    }
    let b_data = payload(64 << 10, 43);
    let mut w = grid
        .create("/meta/b.n0", WriteOptions::default())
        .expect("create b");
    w.write_all(&b_data).expect("write");
    w.finish().expect("finish");
    let mut w = grid
        .create("/meta/tmp.n0", WriteOptions::default())
        .expect("create tmp");
    w.write_all(&payload(32 << 10, 44)).expect("write");
    w.finish().expect("finish");
    grid.delete("/meta/tmp.n0").expect("delete");
    let stat_a = grid.stat("/jobs/a.n0").expect("stat a");
    assert_eq!(stat_a.versions, 1, "REPLACE policy keeps one version");
    mgr.check_invariants();

    // Kill the manager. The benefactors keep running but can never reach
    // the successor: no heartbeat, no re-offer.
    drop(mgr);
    let mgr2 = respawn_durable(pool_cfg, &meta_dir, log_cfg);

    // Everything observable must come back from snapshot + WAL replay.
    let grid2 = Grid::connect(&mgr2.addr().to_string()).expect("reconnect");
    let stat_a2 = grid2.stat("/jobs/a.n0").expect("stat after restart");
    assert_eq!(stat_a2, stat_a);
    assert_eq!(
        grid2.stat("/meta/b.n0").expect("stat b").size,
        b_data.len() as u64
    );
    assert!(
        grid2.stat("/meta/tmp.n0").is_err(),
        "deleted file must stay deleted"
    );
    let names: Vec<String> = grid2
        .list("/meta")
        .expect("list")
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["b.n0"]);
    assert_eq!(grid2.versions("/jobs/a.n0").expect("versions").len(), 1);
    // The read path works end to end: locations and dial addresses all
    // came from the replayed metadata, not from any re-registration.
    assert_eq!(
        grid2
            .open("/jobs/a.n0", None)
            .expect("open")
            .read_all()
            .expect("read"),
        v2
    );
    let stats = mgr2.stats();
    assert_eq!(stats.recovered_commits, 0, "no re-offer was processed");
    assert_eq!(stats.commits, 0, "replay must not count as new commits");
    mgr2.check_invariants();
    drop(mgr2);
    std::fs::remove_dir_all(&meta_dir).ok();
}

/// Snapshot cadence: with a tiny `snapshot_every` the background
/// snapshotter compacts the WAL, and a restart restores from snapshot +
/// tail instead of the full history.
#[test]
fn durable_manager_snapshots_compact_the_wal() {
    let meta_dir = std::env::temp_dir().join(format!("stdchk-mgr-snap-{}", std::process::id()));
    std::fs::remove_dir_all(&meta_dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    pool_cfg.benefactor_timeout = stdchk_util::Dur::from_secs(60);
    let log_cfg = stdchk_net::metalog::MetaLogConfig {
        snapshot_every: 4,
        ..Default::default()
    };
    let mgr =
        ManagerServer::spawn_durable_with("127.0.0.1:0", pool_cfg.clone(), &meta_dir, log_cfg)
            .expect("durable manager");
    let _benefactor = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 256 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store: Arc::new(MemStore::new()),
    })
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    let mut sizes = Vec::new();
    for i in 0..6 {
        let data = payload((16 << 10) + i * 512, 50 + i as u64);
        let mut w = grid
            .create(&format!("/many/f{i}.n0"), WriteOptions::default())
            .expect("create");
        w.write_all(&data).expect("write");
        w.finish().expect("finish");
        sizes.push(data.len() as u64);
    }
    // The snapshotter thread polls every 100 ms; wait for it to compact.
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.meta_wal_tail().expect("durable") >= 4 {
        assert!(Instant::now() < deadline, "snapshot never installed");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(mgr);
    let mgr2 = respawn_durable(pool_cfg, &meta_dir, log_cfg);
    let grid2 = Grid::connect(&mgr2.addr().to_string()).expect("reconnect");
    for (i, size) in sizes.iter().enumerate() {
        assert_eq!(
            grid2.stat(&format!("/many/f{i}.n0")).expect("stat").size,
            *size
        );
    }
    mgr2.check_invariants();
    drop(mgr2);
    std::fs::remove_dir_all(&meta_dir).ok();
}

/// Cross-version refcounts vs GC: after the retention policy prunes the
/// older version, the chunks it *shared* with the newer version must
/// survive garbage collection (the newer version still references them),
/// while the chunks only the old version used are reclaimed. A durable
/// manager restart must replay the wire-dedup ledger without inventing
/// commits.
#[test]
fn refcounted_chunks_survive_gc_after_prune_and_restart() {
    const CHUNK: usize = 64 << 10;
    const CHUNKS: usize = 10;
    let meta_dir = std::env::temp_dir().join(format!("stdchk-mgr-dedup-{}", std::process::id()));
    std::fs::remove_dir_all(&meta_dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = CHUNK as u32;
    pool_cfg.benefactor_timeout = stdchk_util::Dur::from_secs(60);
    let log_cfg = stdchk_net::metalog::MetaLogConfig::default();
    let mgr =
        ManagerServer::spawn_durable_with("127.0.0.1:0", pool_cfg.clone(), &meta_dir, log_cfg)
            .expect("durable manager");
    let benefactor = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 256 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store: Arc::new(MemStore::new()),
    })
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    grid.set_policy("/ckpt", RetentionPolicy::REPLACE)
        .expect("policy");

    let v1 = payload(CHUNKS * CHUNK, 31);
    let mut v2 = v1.clone();
    for i in [0usize, 5, 9] {
        v2[i * CHUNK + 3] ^= 0xff;
    }
    for data in [&v1, &v2] {
        let mut w = grid
            .create("/ckpt/img.n0", WriteOptions::default())
            .expect("create");
        w.write_all(data).expect("write");
        w.finish().expect("finish");
    }
    // The REPLACE policy prunes v1; GC then reclaims the 3 chunks only v1
    // used, while the 7 chunks v2 still references must survive — the
    // benefactor settles at exactly v2's distinct chunk count.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if benefactor.chunk_count() == CHUNKS && grid.stat("/ckpt/img.n0").unwrap().versions == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "GC never settled: {} chunks, {} versions",
            benefactor.chunk_count(),
            grid.stat("/ckpt/img.n0").unwrap().versions,
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        grid.open("/ckpt/img.n0", None).unwrap().read_all().unwrap(),
        v2,
        "shared chunks must survive the prune"
    );
    let totals = mgr.dedup_totals();
    if stdchk_net::dedup_enabled() {
        assert!(
            totals.commits >= 1,
            "negotiated commits must hit the ledger"
        );
        assert_eq!(totals.reused_bytes, 7 * CHUNK as u64);
    }
    mgr.check_invariants();

    // Restart: the ledger replays from the WAL; commit counters do not.
    drop(mgr);
    let mgr2 = respawn_durable(pool_cfg, &meta_dir, log_cfg);
    assert_eq!(mgr2.dedup_totals(), totals, "ledger survives restart");
    let stats = mgr2.stats();
    assert_eq!(stats.commits, 0, "replay must not count as commits");
    assert_eq!(stats.recovered_commits, 0);
    let grid2 = Grid::connect(&mgr2.addr().to_string()).expect("reconnect");
    assert_eq!(
        grid2
            .open("/ckpt/img.n0", None)
            .unwrap()
            .read_all()
            .unwrap(),
        v2
    );
    mgr2.check_invariants();
    drop(mgr2);
    std::fs::remove_dir_all(&meta_dir).ok();
}

/// OS threads of this process (from `/proc/self/status`).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .expect("read /proc/self/status")
}

/// The reactor's scalability contract: 256 concurrent client sessions —
/// each its own `Grid` with its own manager + benefactor connections —
/// complete while process thread count stays O(workers), not
/// O(connections). A thread-per-connection transport would add 500+
/// threads here; the reactor adds none per connection.
#[test]
fn reactor_stress_many_sessions_worker_bounded_threads() {
    if Backend::from_env() != Backend::Reactor {
        // The threaded backend intentionally scales threads with
        // connections; this contract is reactor-only.
        return;
    }
    const SESSIONS: usize = 256;
    const FILE_BYTES: usize = 96 << 10; // 1.5 chunks at the 64 KiB size

    // Fast heartbeats, but a realistic reservation TTL: 256 sessions are
    // deliberately held open concurrently, far longer than the 500 ms
    // fast-test TTL.
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    pool_cfg.reservation_ttl = stdchk_util::Dur::from_secs(120);
    // Likewise the GC grace: uncommitted chunks of these long-lived
    // sessions must not be reported (and reaped) as orphans mid-test.
    let mut benef_cfg = BenefactorConfig::fast_for_tests();
    benef_cfg.gc_grace = stdchk_util::Dur::from_secs(120);
    let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg).expect("manager");
    let mut benefactors = Vec::new();
    for _ in 0..3 {
        benefactors.push(
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 1 << 30,
                cfg: benef_cfg.clone(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor"),
        );
    }
    let pool = TestPool { mgr, benefactors };
    pool.wait_online(3);
    let threads_before = process_threads();

    // One shared client runtime: every grid's sockets live on it.
    let rt = GridRuntime::with_workers(2).expect("runtime");
    let addr = pool.mgr.addr().to_string();
    let grids: Vec<Grid> = (0..SESSIONS)
        .map(|_| Grid::connect_on(&rt, &addr).expect("connect"))
        .collect();
    let data = payload(FILE_BYTES, 1234);
    let mut handles = Vec::with_capacity(SESSIONS);
    for (i, grid) in grids.iter().enumerate() {
        handles.push((
            grid.create(
                &format!("/stress/ckpt{i}.n0"),
                opts(WriteProtocol::SlidingWindow { buffer: 1 << 20 }),
            )
            .expect("create"),
            0usize,
        ));
    }

    // Drive all sessions from this one thread with nonblocking writes.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut threads_mid = 0usize;
    loop {
        let mut progress = false;
        let mut all_done = true;
        for (handle, off) in handles.iter_mut() {
            if *off < data.len() {
                all_done = false;
                let upto = (*off + (16 << 10)).min(data.len());
                match handle.poll_write(&data[*off..upto]) {
                    Ok(0) => {}
                    Ok(n) => {
                        *off += n;
                        progress = true;
                        if *off == data.len() {
                            handle.start_close();
                        }
                    }
                    Err(e) => panic!("session write failed: {e}"),
                }
            }
        }
        if threads_mid == 0 {
            // All 256 sessions (and their 1000+ sockets) are now live.
            threads_mid = process_threads();
        }
        if all_done {
            break;
        }
        assert!(Instant::now() < deadline, "stress writes stalled");
        if !progress {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Poll the commits to completion (still a single driver thread).
    let mut remaining: Vec<_> = handles.into_iter().map(|(h, _)| h).collect();
    while !remaining.is_empty() {
        assert!(Instant::now() < deadline, "stress commits stalled");
        let mut still = Vec::with_capacity(remaining.len());
        for mut handle in remaining {
            match handle.try_finish() {
                Some(Ok(stats)) => assert_eq!(stats.bytes_written, FILE_BYTES as u64),
                Some(Err(e)) => panic!("session failed: {e}"),
                None => still.push(handle),
            }
        }
        remaining = still;
        if !remaining.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Connections scaled with sessions; threads did not. (Other tests run
    // concurrently in this process, so leave generous headroom — a
    // thread-per-connection transport would blow through it 10x over.)
    let conns = rt.connection_count();
    assert!(conns >= SESSIONS, "expected ≥{SESSIONS} conns, got {conns}");
    let grew = threads_mid.saturating_sub(threads_before);
    assert!(
        grew < 64,
        "thread count grew by {grew} (before={threads_before}, mid={threads_mid}) — \
         threads must not scale with the {conns} live connections"
    );

    // Spot-check durability of what was written.
    for i in (0..SESSIONS).step_by(61) {
        let r = grids[i]
            .open(&format!("/stress/ckpt{i}.n0"), None)
            .expect("open");
        assert_eq!(r.read_all().expect("read"), data, "session {i}");
    }
    pool.mgr.check_invariants();
}

/// Reactor-driven liveness bound on steady-state reads: a peer that
/// connects and then goes silent (here: a torn frame header, then
/// nothing) is reaped by the idle timeout instead of leaking its
/// connection and reader state forever.
#[test]
fn reactor_reaps_stalled_connection() {
    if Backend::from_env() != Backend::Reactor {
        return;
    }
    let mgr = ManagerServer::spawn_with(
        "127.0.0.1:0",
        PoolConfig::fast_for_tests(),
        ServerOpts {
            backend: Backend::Reactor,
            workers: 2,
            idle_timeout: Some(Duration::from_millis(400)),
            ..ServerOpts::default()
        },
    )
    .expect("manager");

    // A wedged peer: 3 of the 4 frame-header bytes, then silence. Under
    // the old blocking transport this parked a reader thread forever.
    let mut stalled = std::net::TcpStream::connect(mgr.addr()).expect("connect");
    stalled.write_all(&[7, 0, 0]).expect("partial header");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let start = Instant::now();
    let mut buf = [0u8; 8];
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "manager must close the stalled connection");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "reap took {:?}",
        start.elapsed()
    );

    // The reaper only takes silent peers: a live client still works.
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    assert!(grid.list("/").is_ok());
}

/// The disk I/O lane's contract: with a 100 ms fsync delay injected into
/// the manager's WAL flusher and durable commits churning on other
/// connections, an *unrelated* connection's transport Ping/Pong RTT must
/// stay an order of magnitude below the delay. The manager runs one
/// reactor worker, so every socket shares it — before the lane, the
/// worker ate each commit's group-commit wait and the probe's pings
/// queued behind 100 ms fsync tails.
#[test]
fn io_lane_decouples_unrelated_rtt_from_fsync_tails() {
    use stdchk_proto::frame::{read_frame, write_frame};
    use stdchk_proto::msg::Msg;

    if Backend::from_env() != Backend::Reactor || !ServerOpts::io_lane_from_env() {
        // The inline (`STDCHK_IO_LANE=off`) and threaded baselines
        // intentionally pay the tail on the delivering thread; this
        // decoupling contract is lane-only (the iolane bench measures
        // the baseline for comparison).
        return;
    }
    const DELAY: Duration = Duration::from_millis(100);
    const FILES: usize = 12;
    let meta_dir = std::env::temp_dir().join(format!("stdchk-mgr-lane-{}", std::process::id()));
    std::fs::remove_dir_all(&meta_dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn_durable_tuned(
        "127.0.0.1:0",
        pool_cfg,
        &meta_dir,
        stdchk_net::metalog::MetaLogConfig::default(),
        ServerOpts {
            backend: Backend::Reactor,
            workers: 1,
            ..ServerOpts::default()
        },
    )
    .expect("durable manager");
    let _benefactor = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 256 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store: Arc::new(MemStore::new()),
    })
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every WAL flush now waits out an injected 100 ms "slow platter".
    mgr.meta_sync_faults()
        .expect("durable manager")
        .set_delay(DELAY);

    // The probe: a raw connection whose transport pings the reactor's
    // connection layer answers on the same single worker that owns the
    // commit traffic. No handshake needed — Ping never reaches the app.
    let mut probe = std::net::TcpStream::connect(mgr.addr()).expect("probe connect");
    probe.set_nodelay(true).ok();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Commit churn: every `finish` write-ahead-logs a Commit record and
    // its ack waits out the delayed group commit (on the lane).
    let addr = mgr.addr().to_string();
    let writer = std::thread::spawn(move || {
        let grid = Grid::connect(&addr).expect("writer connect");
        let start = Instant::now();
        for i in 0..FILES {
            let data = payload(64 << 10, 7000 + i as u64);
            let mut w = grid
                .create(&format!("/lane/f{i}.n0"), WriteOptions::default())
                .expect("create");
            w.write_all(&data).expect("write");
            w.finish().expect("finish");
        }
        start.elapsed()
    });

    // Sample RTTs while the commits churn.
    std::thread::sleep(Duration::from_millis(100));
    let mut rtts = Vec::new();
    for nonce in 1..=40u64 {
        let t0 = Instant::now();
        write_frame(&mut probe, &Msg::Ping { nonce }).expect("ping");
        loop {
            match read_frame(&mut probe).expect("pong").expect("conn open") {
                Msg::Pong { nonce: n } if n == nonce => break,
                _ => {}
            }
        }
        rtts.push(t0.elapsed());
        std::thread::sleep(Duration::from_millis(15));
    }
    let commit_wall = writer.join().expect("writer");
    // The tails were real: each of the 12 commits waited out (a share
    // of) the injected delay.
    assert!(
        commit_wall >= DELAY * 4,
        "commits finished in {commit_wall:?} — the injected delay never engaged"
    );
    rtts.sort_unstable();
    let p50 = rtts[rtts.len() / 2];
    let p90 = rtts[rtts.len() * 9 / 10];
    assert!(
        p50 < DELAY / 10,
        "median probe RTT {p50:?} not an order of magnitude below the {DELAY:?} fsync delay \
         (all: {rtts:?})"
    );
    assert!(
        p90 < DELAY / 2,
        "p90 probe RTT {p90:?} still coupled to the fsync tail (all: {rtts:?})"
    );
    drop(mgr);
    std::fs::remove_dir_all(&meta_dir).ok();
}

#[test]
fn connect_to_dead_manager_fails_fast() {
    use stdchk_net::GridError;

    // Closed port: the dial errors immediately instead of hanging.
    let start = Instant::now();
    assert!(Grid::connect("127.0.0.1:1").is_err());
    assert!(
        start.elapsed() < Duration::from_secs(6),
        "dead dial must fail within the connect timeout"
    );

    // Accepting-but-silent manager: the handshake read times out instead of
    // blocking the caller forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let start = Instant::now();
    match Grid::connect(&addr) {
        Err(GridError::Timeout) => {}
        other => panic!("expected handshake timeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "silent manager must time the handshake out"
    );
    drop(listener);
}

/// Chaos: a disk-backed benefactor is killed in the middle of a
/// replicated write and restarted on the same directory moments later.
/// The client fails its in-flight puts over to surviving stripe nodes,
/// the manager expires the dead incarnation by heartbeat timeout, the
/// restarted process re-adopts its persisted chunks and re-advertises
/// them through GC reports, and the pessimistic commit converges with two
/// live copies of every chunk. The commit reply also carries the
/// churn-derived checkpoint guidance.
#[test]
fn chaos_benefactor_kill_restart_mid_write_converges() {
    let dir = std::env::temp_dir().join(format!("stdchk-net-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    // The write stalls across the kill + failover window; the eager
    // space reservation must survive that stall (the 500 ms test
    // default can expire mid-write on a slow debug run, failing the
    // session with Conflict before it can commit).
    pool_cfg.reservation_ttl = stdchk_util::Dur::from_secs(30);
    let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg).expect("manager");
    // GC grace must outlive the kill-to-commit window: the restarted
    // incarnation's early GC reports must not list the still-uncommitted
    // chunks it adopted (the manager would order them dropped), while
    // post-commit reports re-advertise them for repair.
    let bcfg = BenefactorConfig {
        gc_grace: stdchk_util::Dur::from_secs(2),
        ..BenefactorConfig::fast_for_tests()
    };
    let spawn_disk = |dir: &std::path::Path| {
        BenefactorServer::spawn(BenefactorNetConfig {
            manager_addr: mgr.addr().to_string(),
            listen: "127.0.0.1:0".into(),
            total_space: 256 << 20,
            cfg: bcfg.clone(),
            store: Arc::new(DiskStore::open(dir).expect("disk store")),
        })
        .expect("benefactor")
    };
    let mut victim = spawn_disk(&dir);
    let mut peers = Vec::new();
    for _ in 0..3 {
        peers.push(
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 256 << 20,
                cfg: bcfg.clone(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor"),
        );
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 4 {
        assert!(Instant::now() < deadline, "pool never came online");
        std::thread::sleep(Duration::from_millis(10));
    }

    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    let data = payload(2 << 20, 21); // 32 distinct 64 KiB chunks
    let mut o = WriteOptions {
        replication: 2,
        ..WriteOptions::default()
    };
    o.session.pessimistic = true; // finish() returns only when replicated
    let mut w = grid.create("/app/chaos.n0", o).expect("create");
    let (first, rest) = data.split_at(data.len() / 2);
    w.write_all(first).expect("write first half");
    // The session window may still be draining: wait until the victim
    // actually holds some of the stripe before killing it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while victim.chunk_count() == 0 {
        assert!(Instant::now() < deadline, "victim never received a chunk");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Kill the disk-backed benefactor mid-write; its lease (150 ms)
    // expires while the client keeps writing.
    victim.shutdown();
    drop(victim);
    std::thread::sleep(Duration::from_millis(400));
    w.write_all(rest)
        .expect("write second half despite the death");

    // Restart it on the same directory: the store index re-adopts every
    // persisted chunk and GC reports re-advertise them to the manager.
    victim = spawn_disk(&dir);
    assert!(victim.chunk_count() > 0, "restart must adopt disk chunks");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 4 {
        assert!(Instant::now() < deadline, "restart never came online");
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = w
        .finish()
        .expect("pessimistic finish despite mid-write kill");
    assert_eq!(stats.bytes_written, data.len() as u64);
    assert!(
        stats.suggested_interval > stdchk_util::Dur::ZERO,
        "commit must carry checkpoint-interval guidance"
    );

    // Repair converges: every distinct chunk reaches two live copies
    // (failover retries can leave stale extras, so the count alone is not
    // enough — the whole file must also become readable through the
    // manager's locations once the restarted node re-advertises).
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let total = victim.chunk_count() + peers.iter().map(|b| b.chunk_count()).sum::<usize>();
        let read_back = (total >= 64)
            .then(|| {
                grid.open("/app/chaos.n0", None)
                    .expect("open")
                    .read_all()
                    .ok()
            })
            .flatten();
        if let Some(read_back) = read_back {
            assert_eq!(read_back, data);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "repair never converged: {total} stored copies"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    mgr.check_invariants();
    drop(grid);
    victim.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Mid-`sendfile` disconnect must clean up the pending file region: the
/// `Arc<File>` the region holds is released (no fd pinned), the
/// connection leaves the reactor, and the listener keeps serving new
/// connections afterwards — no stall-sweep wedge, no leak.
#[test]
fn mid_sendfile_disconnect_releases_file_region() {
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use stdchk_net::{ConnOpts, Reactor, ReactorApp, ReactorConfig, ReactorHandle};
    use stdchk_proto::ids::{ChunkId, RequestId};
    use stdchk_proto::msg::Msg;

    const LEN: usize = 16 << 20;
    let dir = std::env::temp_dir().join(format!("stdchk-net-sendfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("region.dat");
    let data = payload(LEN, 41);
    std::fs::write(&path, &data).unwrap();
    let file = Arc::new(std::fs::File::open(&path).unwrap());

    /// Replies to any inbound frame with the whole file as one
    /// `GetChunkOk` frame head + sendfile region.
    struct ServeApp {
        handle: Mutex<Option<ReactorHandle>>,
        file: Arc<std::fs::File>,
        closed: AtomicUsize,
        sent: AtomicUsize,
    }
    impl ReactorApp for ServeApp {
        fn on_msg(&self, conn: u64, _msg: Msg) {
            let h = self.handle.lock().unwrap().clone().unwrap();
            let head = stdchk_proto::frame::get_chunk_ok_frame_head(
                RequestId(1),
                ChunkId::for_content(b"region"),
                LEN as u32,
                LEN as u32,
            );
            let _ = h.send_file_region(conn, head, Arc::clone(&self.file), 0, LEN as u64, Some(7));
        }
        fn on_close(&self, _conn: u64, _reason: stdchk_net::CloseReason) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
        fn on_sent(&self, _conn: u64, _token: u64) {
            self.sent.fetch_add(1, Ordering::SeqCst);
        }
    }

    let app = Arc::new(ServeApp {
        handle: Mutex::new(None),
        file: Arc::clone(&file),
        closed: AtomicUsize::new(0),
        sent: AtomicUsize::new(0),
    });
    let reactor = Reactor::new(
        stdchk_net::conn::Clock::new(),
        Arc::clone(&app) as Arc<dyn ReactorApp>,
        ReactorConfig { workers: 2 },
    )
    .unwrap();
    *app.handle.lock().unwrap() = Some(reactor.handle().clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    reactor
        .handle()
        .add_listener(listener, 0, ConnOpts::default())
        .unwrap();

    // Client 1: trigger the region send, sip a few KB, vanish. The
    // region is 16 MiB — far past any loopback buffering — so the
    // disconnect lands mid-sendfile with most of it still queued.
    {
        let mut c = TcpStream::connect(addr).unwrap();
        stdchk_proto::frame::write_frame(&mut c, &Msg::Ping { nonce: 1 }).unwrap();
        // Ping is transport-level; send a real message to reach on_msg.
        stdchk_proto::frame::write_frame(&mut c, &Msg::Ack { req: RequestId(1) }).unwrap();
        let mut sip = vec![0u8; 4096];
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.read_exact(&mut sip).unwrap();
        // Drop: RST/EOF while the server still owes ~16 MiB.
    }

    // The close must release the region's file handle: our Arc goes back
    // to exactly 2 owners (this test + the app), and the conn is gone.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Arc::strong_count(&file) > 2 || reactor.handle().conn_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "pending file region leaked: {} Arc owners, {} conns",
            Arc::strong_count(&file),
            reactor.handle().conn_count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(app.closed.load(Ordering::SeqCst) >= 1, "close not observed");
    assert_eq!(
        app.sent.load(Ordering::SeqCst),
        0,
        "partial send must not complete"
    );

    // Client 2: the reactor must still serve a full region, byte-exact.
    {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stdchk_proto::frame::write_frame(&mut c, &Msg::Ack { req: RequestId(2) }).unwrap();
        let head_len = stdchk_proto::frame::get_chunk_ok_frame_head(
            RequestId(1),
            ChunkId::for_content(b"region"),
            LEN as u32,
            LEN as u32,
        )
        .len();
        let mut got = vec![0u8; head_len + LEN];
        c.read_exact(&mut got).unwrap();
        assert_eq!(
            &got[head_len..],
            &data[..],
            "sendfile payload must be byte-exact"
        );
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while app.sent.load(Ordering::SeqCst) < 1 {
        assert!(Instant::now() < deadline, "tracked region never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = reactor.handle().transport_stats();
    assert!(
        stats.zerocopy_payload_tx >= LEN as u64,
        "sendfile bytes must be counted zero-copy: {stats:?}"
    );
    reactor.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end zero-copy serve: a segment-store benefactor with tiny
/// segments seals its chunks during ingest, so reads come back through
/// the `sendfile` path — byte-exact, with the transport counters showing
/// zero-copy payload traffic.
#[test]
fn sealed_chunks_serve_zero_copy_end_to_end() {
    if !stdchk_net::zerocopy_enabled() || Backend::from_env() != Backend::Reactor {
        return; // A/B baseline runs exercise the copying path instead.
    }
    let dir = std::env::temp_dir().join(format!("stdchk-net-zc-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg).expect("manager");
    let store = Arc::new(
        stdchk_net::store::SegmentStore::open_with(
            &dir,
            stdchk_net::store::SegmentStoreConfig {
                // Seal after every couple of chunks so reads hit sealed
                // segments (the sendfile-eligible case).
                segment_bytes: 96 << 10,
                ..Default::default()
            },
        )
        .expect("store"),
    );
    let benef = BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr.addr().to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 256 << 20,
        cfg: BenefactorConfig::fast_for_tests(),
        store,
    })
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    let data = payload(640 << 10, 77); // 10 chunks over ~7 segments
    let mut w = grid
        .create("/app/zc.n0", WriteOptions::default())
        .expect("create");
    w.write_all(&data).expect("write");
    w.finish().expect("finish");

    let before = benef
        .transport_stats()
        .expect("reactor backend")
        .zerocopy_payload_tx;
    let read_back = grid
        .open("/app/zc.n0", None)
        .expect("open")
        .read_all()
        .expect("read");
    assert_eq!(read_back, data, "zero-copy read must be byte-exact");
    let after = benef
        .transport_stats()
        .expect("reactor backend")
        .zerocopy_payload_tx;
    assert!(
        after > before,
        "sealed-segment reads must ride the zero-copy path: {before} -> {after}"
    );
    mgr.check_invariants();
    benef.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
