//! Crash-recovery and model-based tests of the blob-store engines.
//!
//! The durability contract under test: every chunk whose `put` returned
//! `Ok` (i.e. was *acked* to the writer) must survive a process crash —
//! including a crash that tore the record being appended at that moment —
//! and `ids()`/`entries()` after reopen must list exactly the acked,
//! undeleted chunks. The property test drives a [`SegmentStore`] through
//! random put/get/delete interleavings (with periodic reopens standing in
//! for crashes) against [`MemStore`] as the executable model.

use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::Write;

use proptest::prelude::*;

use stdchk_net::store::{ChunkStore, DiskStore, MemStore, SegmentStore, SegmentStoreConfig};
use stdchk_proto::ids::ChunkId;
use stdchk_util::mix64;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stdchk-recov-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn chunk(seed: u64, len: usize) -> (ChunkId, Vec<u8>) {
    let data: Vec<u8> = (0..len)
        .map(|i| (mix64(seed ^ i as u64) & 0xFF) as u8)
        .collect();
    (ChunkId::for_content(&data), data)
}

/// The acceptance-criterion scenario: a store holding acked chunks crashes
/// mid-append (torn tail record); on reopen every previously-acked chunk is
/// served and the torn suffix is gone.
#[test]
fn reopened_store_with_torn_tail_serves_every_acked_chunk() {
    let dir = tmp("torn-acked");
    let cfg = SegmentStoreConfig {
        segment_bytes: 256 << 10,
        ..Default::default()
    };
    let mut acked = Vec::new();
    {
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        for i in 0..40u64 {
            let (id, data) = chunk(i, 8 << 10);
            store.put(id, &data).unwrap(); // returned Ok ⇒ acked ⇒ durable
            acked.push((id, data));
        }
    }
    // Crash mid-append: a partial record (valid-looking length, truncated
    // payload, bogus CRC) at the tail of the newest segment.
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let last = segs.last().expect("at least one segment");
    let mut f = OpenOptions::new().append(true).open(last).unwrap();
    let mut torn = Vec::new();
    torn.extend_from_slice(&8192u32.to_le_bytes()); // claims 8 KiB payload
    torn.push(0u8);
    torn.extend_from_slice(&[0xCC; 37]); // id + crc + a sliver of payload
    f.write_all(&torn).unwrap();
    drop(f);

    let store = SegmentStore::open_with(&dir, cfg).unwrap();
    for (id, data) in &acked {
        assert_eq!(
            &store.get(*id).unwrap().expect("acked chunk lost")[..],
            &data[..],
            "every acked chunk must survive a torn-tail crash"
        );
    }
    let ids: BTreeSet<ChunkId> = store.ids().unwrap().into_iter().collect();
    let want: BTreeSet<ChunkId> = acked.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, want, "ids() after recovery = exactly the acked puts");
    std::fs::remove_dir_all(&dir).ok();
}

/// A successful `DiskStore::put` leaves no `.tmp-` litter, and litter from
/// a crashed process neither shows up in `ids()` nor survives a reopen.
#[test]
fn disk_store_tmp_files_are_invisible_and_swept() {
    let dir = tmp("tmp-sweep");
    let store = DiskStore::open(&dir).unwrap();
    let (id, data) = chunk(1, 4 << 10);
    store.put(id, &data).unwrap();
    let litter: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with(".tmp-")
        })
        .collect();
    assert!(litter.is_empty(), "successful put must clean its temp file");

    // A crashed process left half-written temps behind.
    std::fs::write(dir.join(".tmp-999-0"), b"half").unwrap();
    std::fs::write(dir.join(".tmp-999-1"), b"written").unwrap();
    let store = DiskStore::open(&dir).unwrap();
    assert_eq!(store.ids().unwrap(), vec![id]);
    assert!(!dir.join(".tmp-999-0").exists() && !dir.join(".tmp-999-1").exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// Garbage appended beyond the last valid record must not block new writes
/// after recovery — the log truncates and keeps going.
#[test]
fn segment_store_accepts_writes_after_torn_tail_recovery() {
    let dir = tmp("torn-write");
    let (id0, data0) = chunk(7, 2 << 10);
    {
        let store = SegmentStore::open(&dir).unwrap();
        store.put(id0, &data0).unwrap();
    }
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let clean = std::fs::metadata(&seg).unwrap().len();
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&[0xEE; 61]).unwrap();
    drop(f);

    let store = SegmentStore::open(&dir).unwrap();
    assert_eq!(std::fs::metadata(&seg).unwrap().len(), clean);
    let (id1, data1) = chunk(8, 3 << 10);
    store.put(id1, &data1).unwrap();
    drop(store);
    let store = SegmentStore::open(&dir).unwrap();
    assert_eq!(&store.get(id0).unwrap().unwrap()[..], &data0[..]);
    assert_eq!(&store.get(id1).unwrap().unwrap()[..], &data1[..]);
    std::fs::remove_dir_all(&dir).ok();
}

/// One random operation against the store pair.
#[derive(Clone, Copy, Debug)]
enum Op {
    Put { key: u8, len: u16 },
    Get { key: u8 },
    Delete { key: u8 },
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u16..2048).prop_map(|(key, len)| Op::Put { key: key % 12, len }),
        any::<u8>().prop_map(|key| Op::Get { key: key % 12 }),
        any::<u8>().prop_map(|key| Op::Delete { key: key % 12 }),
        Just(Op::Reopen),
    ]
}

// SegmentStore behaves exactly like the in-memory model under random
// put/get/delete interleavings, across rotations, compactions and reopens
// (simulated crashes after acked operations).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn segment_store_matches_mem_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let dir = std::env::temp_dir().join(format!(
            "stdchk-recov-model-{}-{}",
            std::process::id(),
            mix64(ops.len() as u64 ^ ops.iter().map(|o| matches!(o, Op::Put{..}) as u64).sum::<u64>())
        ));
        std::fs::remove_dir_all(&dir).ok();
        // Tiny segments + eager compaction so short op sequences still
        // exercise rotation and reclamation.
        let cfg = SegmentStoreConfig {
            segment_bytes: 8 << 10,
            compact_dead_ratio: 0.4,
            ..Default::default()
        };
        let model = MemStore::new();
        let mut store = SegmentStore::open_with(&dir, cfg).map_err(|e| e.to_string())?;
        for op in &ops {
            // Ids come from a small universe keyed by `key` (the store
            // never checks id-vs-content) so puts, overwrites, gets and
            // deletes genuinely collide.
            match *op {
                Op::Put { key, len } => {
                    let id = ChunkId::test_id(key as u64);
                    let (_, data) = chunk(key as u64 ^ len as u64, len as usize);
                    store.put(id, &data).map_err(|e| e.to_string())?;
                    model.put(id, &data).unwrap();
                }
                Op::Get { key } => {
                    let id = ChunkId::test_id(key as u64);
                    let got = store.get(id).map_err(|e| e.to_string())?;
                    let want = model.get(id).unwrap();
                    prop_assert_eq!(got, want);
                }
                Op::Delete { key } => {
                    let id = ChunkId::test_id(key as u64);
                    store.delete(id).map_err(|e| e.to_string())?;
                    model.delete(id).unwrap();
                }
                Op::Reopen => {
                    drop(store);
                    store = SegmentStore::open_with(&dir, cfg).map_err(|e| e.to_string())?;
                }
            }
            // Full-state equivalence after every step: same ids, same sizes.
            let mut got = store.entries().map_err(|e| e.to_string())?;
            let mut want = model.entries().unwrap();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);
        }
        // And everything the model holds reads back identically.
        for (id, data) in model.entries().unwrap().iter().flat_map(|(id, _)| {
            model.get(*id).unwrap().map(|b| (*id, b))
        }) {
            let got = store.get(id).map_err(|e| e.to_string())?;
            prop_assert_eq!(got.as_deref(), Some(&data[..]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
