//! The stdchk client: a blocking API over the session state machines.
//!
//! [`Grid`] is the entry point — connect to a manager, then:
//!
//! - [`Grid::create`] opens a [`WriteHandle`] implementing
//!   [`std::io::Write`]; `finish()` performs the session-semantics commit
//!   (data is invisible until then).
//! - [`Grid::open`] returns a [`ReadHandle`] implementing
//!   [`std::io::Read`], with read-ahead and replica failover.
//! - Metadata operations: [`Grid::stat`], [`Grid::list`],
//!   [`Grid::versions`], [`Grid::delete`], [`Grid::set_policy`].
//!
//! Both handle kinds drive their sans-IO sessions through the unified
//! [`Node`] API: one generic pump (`pump_session`) drains
//! `poll_action()`, executes sends and stage I/O against a spill file,
//! and feeds [`Completion`]s back. The write path and the read path
//! differ only in which session type sits behind the pump.
//!
//! Transport comes from [`crate::Backend`]:
//!
//! - **reactor** (default): every socket of every [`Grid`] lives on a
//!   shared [`GridRuntime`] — a small epoll [`Reactor`]
//!   (no reader threads; thread count is independent of how many grids
//!   and connections exist). Sends enqueue onto bounded per-connection
//!   buffers; `SendDone` completions arrive when the frame's last byte
//!   leaves the socket; benefactor connections are dialed lazily on the
//!   runtime's blocking lane with sends queued while the dial is in
//!   flight. Many `Grid`s can share one runtime
//!   ([`Grid::connect_on`]) — that is what lets hundreds of concurrent
//!   client sessions run from a handful of threads.
//! - **threaded** (legacy, `STDCHK_NET_BACKEND=threaded`): one reader
//!   thread per connection, blocking sends.
//!
//! All dials use connect timeouts and streams carry write timeouts
//! ([`crate::conn::dial`]); the connect handshake additionally bounds its
//! read, so a dead manager or benefactor fails fast instead of hanging a
//! client thread.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::Duration;

use crossbeam::channel;
use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

use stdchk_chunker::delta::ChunkSignature;
use stdchk_core::node::{Action, Completion, Node};
use stdchk_core::payload::Payload;
use stdchk_core::session::read::{ReadSession, ReadState};
use stdchk_core::session::write::{
    OpenGrant, SessionConfig, SessionState, WriteSession, WriteStats,
};
use stdchk_core::MANAGER_NODE;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, VersionId};
use stdchk_proto::msg::{DirEntry, FileAttr, Msg, Role, VersionInfo};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::ErrorCode;

use crate::conn::{dial, read_frame_timeout, read_loop, Clock, Link, Sender, DIAL_TIMEOUT};
use crate::driver::ACTION_BATCH;
use crate::reactor::{
    CloseReason, ConnOpts, ConnToken, Reactor, ReactorApp, ReactorConfig, ReactorHandle,
};
use crate::Backend;

/// Client-side errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum GridError {
    /// Socket or file I/O failure.
    Io(io::Error),
    /// The remote side reported a semantic error.
    Remote {
        /// Status code.
        code: ErrorCode,
        /// Context from the remote.
        detail: String,
    },
    /// No reply within the client timeout.
    Timeout,
    /// The write session failed mid-flight.
    SessionFailed(ErrorCode),
    /// Unexpected protocol behaviour.
    Protocol(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "i/o failure: {e}"),
            GridError::Remote { code, detail } => write!(f, "remote error: {code}: {detail}"),
            GridError::Timeout => write!(f, "request timed out"),
            GridError::SessionFailed(code) => write!(f, "write session failed: {code}"),
            GridError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<io::Error> for GridError {
    fn from(e: io::Error) -> Self {
        GridError::Io(e)
    }
}

/// Shared state of one client-side session (write or read): the sans-IO
/// machine, a wait condition for blocking callers, and the stage spill file
/// (used by staged write protocols; inert for reads).
struct SessionShared<N> {
    session: OrderedMutex<N>,
    cv: Condvar,
    stage: OrderedMutex<Option<std::fs::File>>,
    stage_path: PathBuf,
}

impl<N> SessionShared<N> {
    fn new(session: N, stage_path: PathBuf) -> Arc<SessionShared<N>> {
        Arc::new(SessionShared {
            session: OrderedMutex::new(ranks::CLIENT_SESSION, "client.session", session),
            cv: Condvar::new(),
            stage: OrderedMutex::new(ranks::CLIENT_STAGE, "client.stage", None),
            stage_path,
        })
    }
}

/// Type-erased handle so one reply router serves every session kind.
trait SessionSlot: Send + Sync {
    /// Feeds a correlated reply into the session and pumps its actions.
    fn deliver(self: Arc<Self>, grid: &Grid, msg: Msg);

    /// Reports a transport failure for an outstanding request (the
    /// connection it was sent on died), letting the session fail over.
    fn fail(self: Arc<Self>, grid: &Grid, req: RequestId);

    /// Reports that the frame carrying `req` fully left this host
    /// (reactor backend: ends the OAB transmit window).
    fn sent(self: Arc<Self>, grid: &Grid, req: RequestId);
}

impl<N: Node + Send + 'static> SessionSlot for SessionShared<N> {
    fn deliver(self: Arc<Self>, grid: &Grid, msg: Msg) {
        {
            let mut s = self.session.lock();
            s.handle(MANAGER_NODE, msg, grid.inner.clock.now());
            self.cv.notify_all();
        }
        pump_session(grid, &self);
    }

    fn fail(self: Arc<Self>, grid: &Grid, req: RequestId) {
        {
            let mut s = self.session.lock();
            s.handle_completion(Completion::SendFailed { req }, grid.inner.clock.now());
            self.cv.notify_all();
        }
        pump_session(grid, &self);
    }

    fn sent(self: Arc<Self>, grid: &Grid, req: RequestId) {
        {
            let mut s = self.session.lock();
            s.handle_completion(Completion::SendDone { req }, grid.inner.clock.now());
            self.cv.notify_all();
        }
        pump_session(grid, &self);
    }
}

/// Where a correlated reply should be delivered.
enum Route {
    Rpc(channel::Sender<Msg>),
    Session {
        slot: Arc<dyn SessionSlot>,
        /// Destination the request was sent to — when that connection
        /// dies, the request is failed over instead of stalling.
        to: NodeId,
    },
}

/// What a runtime connection belongs to.
#[derive(Clone, Copy, Debug)]
enum ConnKind {
    /// The grid's manager connection.
    Mgr,
    /// A benefactor data connection.
    Benef(NodeId),
}

/// A benefactor connection slot: established, or being dialed on the
/// runtime's blocking lane with sends queued behind the dial.
enum BenefEntry {
    Up(Link),
    Dialing(Vec<Msg>),
}

/// The shared client-side reactor: one worker pool + blocking dial lane
/// serving every [`Grid`] connected through it. This is what keeps client
/// thread count independent of grid/connection/session count — create one
/// runtime and [`Grid::connect_on`] as many grids as you like.
pub struct GridRuntime {
    reactor: Reactor,
    app: Arc<GridApp>,
}

impl fmt::Debug for GridRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GridRuntime").finish_non_exhaustive()
    }
}

impl GridRuntime {
    /// A runtime with one event worker (plenty for a client; sessions are
    /// pumped by their own calling threads).
    ///
    /// # Errors
    ///
    /// Fails if the reactor descriptors cannot be created.
    pub fn new() -> io::Result<Arc<GridRuntime>> {
        GridRuntime::with_workers(1)
    }

    /// A runtime with `workers` event workers.
    ///
    /// # Errors
    ///
    /// As [`GridRuntime::new`].
    pub fn with_workers(workers: usize) -> io::Result<Arc<GridRuntime>> {
        let app = Arc::new(GridApp {
            conns: OrderedMutex::new(ranks::CLIENT_APP_CONNS, "client.app.conns", HashMap::new()),
        });
        let reactor = Reactor::new(
            Clock::new(),
            Arc::clone(&app) as Arc<dyn ReactorApp>,
            ReactorConfig { workers },
        )?;
        Ok(Arc::new(GridRuntime { reactor, app }))
    }

    fn handle(&self) -> &ReactorHandle {
        self.reactor.handle()
    }

    /// Live connections across every grid on this runtime (tests assert
    /// connections ≫ threads).
    pub fn connection_count(&self) -> usize {
        self.handle().conn_count()
    }

    /// Registers a connected stream for `inner`, routing its inbound
    /// messages and closures back to that grid. The routing entry is in
    /// place before the socket is armed, so no event can race it.
    fn register(
        &self,
        inner: &Weak<GridInner>,
        kind: ConnKind,
        stream: std::net::TcpStream,
    ) -> io::Result<ConnToken> {
        let token = self.handle().prepare(stream, ConnOpts::dial_default())?;
        self.app
            .conns
            .lock()
            .insert(token, (Weak::clone(inner), kind));
        self.handle().arm(token);
        Ok(token)
    }
}

/// The client runtime's [`ReactorApp`]: routes per-connection events to
/// the owning grid. Holds only `Weak` grid references — dropping every
/// `Grid` clone tears the grid down even while the runtime lives on.
struct GridApp {
    conns: OrderedMutex<HashMap<ConnToken, (Weak<GridInner>, ConnKind)>>,
}

impl GridApp {
    fn lookup(&self, conn: ConnToken) -> Option<(Grid, ConnKind)> {
        let (weak, kind) = {
            let conns = self.conns.lock();
            let (w, k) = conns.get(&conn)?;
            (Weak::clone(w), *k)
        };
        Some((
            Grid {
                inner: weak.upgrade()?,
            },
            kind,
        ))
    }
}

impl ReactorApp for GridApp {
    fn on_msg(&self, conn: ConnToken, msg: Msg) {
        if let Some((grid, _)) = self.lookup(conn) {
            deliver_reply(&grid, msg);
        }
    }

    fn on_close(&self, conn: ConnToken, _reason: CloseReason) {
        let Some((weak, kind)) = self.conns.lock().remove(&conn) else {
            return;
        };
        let Some(inner) = weak.upgrade() else { return };
        let grid = Grid { inner };
        match kind {
            ConnKind::Benef(node) => on_benefactor_conn_down(&grid, node),
            ConnKind::Mgr => on_manager_conn_down(&grid),
        }
    }

    fn on_sent(&self, conn: ConnToken, token: u64) {
        if let Some((grid, _)) = self.lookup(conn) {
            on_frame_sent(&grid, RequestId(token));
        }
    }
}

/// Transport state of one grid.
enum ClientBackend {
    /// Legacy blocking transport (reader thread per connection).
    Threaded,
    /// Shared epoll runtime.
    Reactor {
        rt: Arc<GridRuntime>,
        mgr_token: ConnToken,
    },
}

struct GridInner {
    clock: Clock,
    mgr: Link,
    my_node: NodeId,
    next_req: AtomicU64,
    next_sid: AtomicU64,
    routes: OrderedMutex<HashMap<RequestId, Route>>,
    benefs: OrderedMutex<HashMap<NodeId, BenefEntry>>,
    addr_cache: OrderedMutex<HashMap<NodeId, String>>,
    timeout: Duration,
    stage_dir: PathBuf,
    backend: ClientBackend,
    /// Per-path delta bases harvested from finished write sessions — the
    /// chunk signatures and placements feeding the *next* version of the
    /// same file. Purely an optimization cache: a stale or missing entry
    /// only means a chunk ships in full instead of as a delta.
    signatures: OrderedMutex<HashMap<String, PathBases>>,
}

impl Drop for GridInner {
    fn drop(&mut self) {
        if let ClientBackend::Reactor { rt, mgr_token } = &self.backend {
            // Deregister this grid's connections from the shared runtime.
            rt.handle().close(*mgr_token);
            // Collect under the lock, shut down after releasing it: a
            // close runs `GridApp::on_close` inline on this thread, which
            // re-enters the grid's route/link locks (the PR 4 deadlock
            // shape — only the mid-drop failing weak upgrade masked it
            // here).
            let links: Vec<Link> = self
                .benefs
                .lock()
                .drain()
                .filter_map(|(_, entry)| match entry {
                    BenefEntry::Up(link) => Some(link),
                    BenefEntry::Dialing(_) => None,
                })
                .collect();
            for link in links {
                link.shutdown();
            }
        }
    }
}

/// Delta bases one path's last write left behind: per-chunk signatures
/// (what to diff against) and placements (where a delta can be applied).
#[derive(Default)]
struct PathBases {
    sigs: HashMap<ChunkId, ChunkSignature>,
    homes: HashMap<ChunkId, Vec<NodeId>>,
}

/// A connection to a stdchk pool.
#[derive(Clone)]
pub struct Grid {
    inner: Arc<GridInner>,
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid")
            .field("node", &self.inner.my_node)
            .finish_non_exhaustive()
    }
}

/// Options for a write session.
#[derive(Clone, Debug)]
pub struct WriteOptions {
    /// Protocol, dedup, semantics.
    pub session: SessionConfig,
    /// Stripe width (0 = pool default).
    pub stripe_width: u32,
    /// Replica target (0 = pool default).
    pub replication: u32,
    /// Initial eager reservation in chunks.
    pub expected_chunks: u32,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            session: SessionConfig::default(),
            stripe_width: 0,
            replication: 0,
            expected_chunks: 16,
        }
    }
}

impl Grid {
    /// Connects to the manager at `addr`, failing fast (connect and
    /// handshake-read timeouts) when the manager is dead. Transport comes
    /// from [`Backend::from_env`]; the reactor backend creates a private
    /// [`GridRuntime`] (use [`Grid::connect_on`] to share one across
    /// grids).
    ///
    /// # Errors
    ///
    /// Fails on dial/handshake problems; [`GridError::Timeout`] when the
    /// manager accepts but never answers the handshake.
    pub fn connect(addr: &str) -> Result<Grid, GridError> {
        match Backend::from_env() {
            Backend::Threaded => Grid::connect_threaded(addr),
            Backend::Reactor => Grid::connect_on(&GridRuntime::new()?, addr),
        }
    }

    /// Connects through a shared [`GridRuntime`]: all sockets live on the
    /// runtime's reactor, so any number of grids (and their concurrent
    /// sessions) run on a fixed handful of threads.
    ///
    /// # Errors
    ///
    /// As [`Grid::connect`].
    pub fn connect_on(rt: &Arc<GridRuntime>, addr: &str) -> Result<Grid, GridError> {
        // Bootstrap handshake stays blocking (with connect + read
        // timeouts): one frame in, one frame out, before the socket moves
        // onto the reactor.
        // stdchk-allow(no-blocking-on-pump): bootstrap handshake on the caller's thread, before the socket joins the reactor
        let stream = dial(addr, DIAL_TIMEOUT)?;
        write_hello(&stream)?;
        let mut handshake = stream;
        let my_node = read_hello_reply(&mut handshake)?;
        // Prepare the socket first (unarmed: nothing can be delivered),
        // attach the routing entry once the grid exists, then arm.
        let mgr_token = rt.handle().prepare(handshake, ConnOpts::dial_default())?;
        let inner = Arc::new(GridInner {
            clock: Clock::new(),
            mgr: Link::Event {
                handle: rt.handle().downgrade(),
                token: mgr_token,
            },
            my_node,
            next_req: AtomicU64::new(1),
            next_sid: AtomicU64::new(1),
            routes: OrderedMutex::new(ranks::CLIENT_ROUTES, "client.routes", HashMap::new()),
            benefs: OrderedMutex::new(ranks::CLIENT_BENEFS, "client.benefs", HashMap::new()),
            addr_cache: OrderedMutex::new(
                ranks::CLIENT_ADDR_CACHE,
                "client.addr_cache",
                HashMap::new(),
            ),
            timeout: Duration::from_secs(10),
            stage_dir: std::env::temp_dir(),
            backend: ClientBackend::Reactor {
                rt: Arc::clone(rt),
                mgr_token,
            },
            signatures: OrderedMutex::new(
                ranks::CLIENT_SIGNATURES,
                "client.signatures",
                HashMap::new(),
            ),
        });
        rt.app
            .conns
            .lock()
            .insert(mgr_token, (Arc::downgrade(&inner), ConnKind::Mgr));
        rt.handle().arm(mgr_token);
        Ok(Grid { inner })
    }

    /// Legacy thread-per-connection client.
    fn connect_threaded(addr: &str) -> Result<Grid, GridError> {
        // stdchk-allow(no-blocking-on-pump): threaded backend: connect runs on the caller's thread
        let stream = dial(addr, DIAL_TIMEOUT)?;
        let sender = Sender::new(stream.try_clone()?);
        sender.send(&Msg::Hello {
            role: Role::Client,
            node: NodeId(0),
        })?;
        // The manager assigns our pool identity in its Hello reply; a
        // silent peer times out instead of wedging the caller.
        let mut reader = sender.reader()?;
        let my_node = read_hello_reply(&mut reader)?;
        let inner = Arc::new(GridInner {
            clock: Clock::new(),
            mgr: Link::Thread(sender),
            my_node,
            next_req: AtomicU64::new(1),
            next_sid: AtomicU64::new(1),
            routes: OrderedMutex::new(ranks::CLIENT_ROUTES, "client.routes", HashMap::new()),
            benefs: OrderedMutex::new(ranks::CLIENT_BENEFS, "client.benefs", HashMap::new()),
            addr_cache: OrderedMutex::new(
                ranks::CLIENT_ADDR_CACHE,
                "client.addr_cache",
                HashMap::new(),
            ),
            timeout: Duration::from_secs(10),
            stage_dir: std::env::temp_dir(),
            backend: ClientBackend::Threaded,
            signatures: OrderedMutex::new(
                ranks::CLIENT_SIGNATURES,
                "client.signatures",
                HashMap::new(),
            ),
        });
        // Manager reply pump. Session-routed messages are handed to a
        // separate dispatcher thread: a session pump can issue a blocking
        // manager RPC (benefactor address resolution on a cold cache), and
        // running it inline here would park the only thread able to
        // deliver that RPC's reply — a self-deadlock. RPC replies stay
        // inline; they only unblock a channel.
        let (dispatch_tx, dispatch_rx) = channel::unbounded::<(Arc<dyn SessionSlot>, Msg)>();
        {
            let inner2 = Arc::clone(&inner);
            thread::Builder::new()
                .name("stdchk-grid-dispatch".into())
                .spawn(move || {
                    let grid = Grid { inner: inner2 };
                    // Exits when the reader drops the sender (manager EOF).
                    while let Ok((slot, msg)) = dispatch_rx.recv() {
                        slot.deliver(&grid, msg);
                    }
                })
                .expect("spawn grid dispatcher");
        }
        {
            let inner2 = Arc::clone(&inner);
            thread::Builder::new()
                .name("stdchk-grid-mgr".into())
                .spawn(move || {
                    let grid = Grid { inner: inner2 };
                    // stdchk-allow(no-blocking-on-pump): dedicated manager-reader thread (stdchk-grid-mgr), not a pump worker
                    read_loop(reader, move |msg| {
                        deliver_reply_offloaded(&grid, msg, &dispatch_tx)
                    });
                })
                .expect("spawn grid reader");
        }
        Ok(Grid { inner })
    }

    /// The node id the manager assigned this client.
    pub fn node_id(&self) -> NodeId {
        self.inner.my_node
    }

    fn req(&self) -> RequestId {
        RequestId(self.inner.next_req.fetch_add(1, Ordering::Relaxed))
    }

    /// One blocking manager RPC.
    fn rpc(&self, req: RequestId, msg: Msg) -> Result<Msg, GridError> {
        let (tx, rx) = channel::bounded(1);
        self.inner.routes.lock().insert(req, Route::Rpc(tx));
        if let Err(e) = self.inner.mgr.send(&msg) {
            self.inner.routes.lock().remove(&req);
            return Err(e.into());
        }
        match rx.recv_timeout(self.inner.timeout) {
            Ok(Msg::ErrorReply { code, detail, .. }) => Err(GridError::Remote { code, detail }),
            Ok(m) => Ok(m),
            Err(_) => {
                self.inner.routes.lock().remove(&req);
                Err(GridError::Timeout)
            }
        }
    }

    /// Stats a file or directory.
    ///
    /// # Errors
    ///
    /// [`GridError::Remote`] with [`ErrorCode::NotFound`] for absent paths.
    pub fn stat(&self, path: &str) -> Result<FileAttr, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::GetAttr {
                req,
                path: path.into(),
            },
        )? {
            Msg::AttrReply { attr, .. } => Ok(attr),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::ListDir {
                req,
                path: path.into(),
            },
        )? {
            Msg::DirListingReply { entries, .. } => Ok(entries),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Lists the retained versions of a file, oldest first.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn versions(&self, path: &str) -> Result<Vec<VersionInfo>, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::ListVersions {
                req,
                path: path.into(),
            },
        )? {
            Msg::VersionListReply { versions, .. } => Ok(versions),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Deletes a file (all versions).
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn delete(&self, path: &str) -> Result<(), GridError> {
        let req = self.req();
        self.rpc(
            req,
            Msg::DeleteFile {
                req,
                path: path.into(),
            },
        )?;
        Ok(())
    }

    /// Sets the retention policy of a directory.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn set_policy(&self, dir: &str, policy: RetentionPolicy) -> Result<(), GridError> {
        self.set_policy_with_bounds(dir, policy, None)
    }

    /// Sets the retention policy of a directory together with optional
    /// `(min, max)` bounds for churn-adaptive replication targets of files
    /// under it.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn set_policy_with_bounds(
        &self,
        dir: &str,
        policy: RetentionPolicy,
        repl_bounds: Option<(u32, u32)>,
    ) -> Result<(), GridError> {
        let req = self.req();
        self.rpc(
            req,
            Msg::SetPolicy {
                req,
                dir: dir.into(),
                policy,
                repl_bounds,
            },
        )?;
        Ok(())
    }

    /// Opens a write session on `path`.
    ///
    /// # Errors
    ///
    /// [`GridError::Remote`] with [`ErrorCode::NoSpace`] if the pool cannot
    /// host the write.
    pub fn create(&self, path: &str, opts: WriteOptions) -> Result<WriteHandle, GridError> {
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::CreateFile {
                req,
                client: self.inner.my_node,
                path: path.into(),
                stripe_width: opts.stripe_width,
                replication: opts.replication,
                expected_chunks: opts.expected_chunks,
            },
        )?;
        let Msg::CreateFileOk {
            file,
            version,
            reservation,
            stripe,
            prev_chunks,
            chunk_size,
            ..
        } = reply
        else {
            return Err(GridError::Protocol("bad CreateFile reply".into()));
        };
        let grant = OpenGrant {
            path: path.to_string(),
            file,
            version,
            reservation,
            stripe,
            prev_chunks,
            chunk_size,
            reserved_chunks: opts.expected_chunks.max(1) as u64,
        };
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        // Wire-level dedup rides on the session's have/want negotiation;
        // `STDCHK_DEDUP=off` forces full transfer (the A/B baseline).
        let mut session_cfg = opts.session;
        session_cfg.negotiate = crate::dedup_enabled();
        let negotiate = session_cfg.negotiate;
        let mut session = WriteSession::new(
            sid,
            self.inner.my_node,
            grant,
            session_cfg,
            self.inner.clock.now(),
        );
        if negotiate {
            // Seed delta bases from what the previous write of this path
            // left behind (if anything).
            if let Some(bases) = self.inner.signatures.lock().get(path) {
                session.set_basis_signatures(bases.sigs.clone());
                session.set_basis_placements(bases.homes.clone());
            }
        }
        let stage_path = self
            .inner
            .stage_dir
            .join(format!("stdchk-stage-{}-{sid}", std::process::id()));
        Ok(WriteHandle {
            grid: self.clone(),
            shared: SessionShared::new(session, stage_path),
            path: path.to_string(),
            finished: false,
        })
    }

    /// Opens the latest committed version (or `version`) of `path` for
    /// reading.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NotFound`] if nothing is committed at `path`.
    pub fn open(&self, path: &str, version: Option<VersionId>) -> Result<ReadHandle, GridError> {
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::GetFile {
                req,
                path: path.into(),
                version,
            },
        )?;
        let Msg::FileViewReply { view, .. } = reply else {
            return Err(GridError::Protocol("bad GetFile reply".into()));
        };
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        let session = ReadSession::new(sid, view, 4, true);
        let shared = SessionShared::new(session, PathBuf::new());
        let handle = ReadHandle {
            grid: self.clone(),
            shared,
            buffer: Vec::new(),
            buffer_pos: 0,
        };
        // Prime the read-ahead window (poll_action fills it lazily).
        pump_session(&handle.grid, &handle.shared);
        Ok(handle)
    }

    // -------------------------------------------------------- benefactor IO

    /// Threaded backend: inline blocking dial + reader thread.
    fn benefactor_conn(&self, node: NodeId) -> Result<Link, GridError> {
        if let Some(BenefEntry::Up(l)) = self.inner.benefs.lock().get(&node) {
            return Ok(l.clone());
        }
        let addr = self.resolve(node)?;
        // stdchk-allow(no-blocking-on-pump): threaded backend: inline dial on the caller's session thread is that backend's design
        let stream = dial(&addr, DIAL_TIMEOUT)?;
        let sender = Sender::new(stream.try_clone()?);
        sender.send(&Msg::Hello {
            role: Role::Client,
            node: self.inner.my_node,
        })?;
        let reader = sender.reader()?;
        let inner2 = Arc::clone(&self.inner);
        thread::Builder::new()
            .name("stdchk-grid-benef".into())
            .spawn(move || {
                let grid = Grid { inner: inner2 };
                // stdchk-allow(no-blocking-on-pump): dedicated benefactor-reader thread (stdchk-grid-benef), not a pump worker
                read_loop(reader, |msg| deliver_reply(&grid, msg));
                // EOF or error: the benefactor is gone. Fail everything in
                // flight on this connection so sessions retry elsewhere.
                on_benefactor_conn_down(&grid, node);
            })
            .expect("spawn benef reader");
        let link = Link::Thread(sender);
        self.inner
            .benefs
            .lock()
            .insert(node, BenefEntry::Up(link.clone()));
        Ok(link)
    }

    /// Reactor backend: sends to `node` without ever blocking the calling
    /// thread. An unestablished connection queues the message behind a
    /// blocking-lane dial job. Returns `Err` only for immediately-failed
    /// sends (the caller reports `SendFailed`); queued/sent messages
    /// complete via `on_sent` / connection-close handling.
    fn send_event(&self, node: NodeId, msg: Msg, req: Option<RequestId>) -> Result<(), ()> {
        let ClientBackend::Reactor { rt, .. } = &self.inner.backend else {
            unreachable!("send_event is reactor-only");
        };
        let track = req.map(|r| r.0);
        let mut benefs = self.inner.benefs.lock();
        match benefs.get_mut(&node) {
            Some(BenefEntry::Up(link)) => {
                let link = link.clone();
                drop(benefs);
                let sent = match track {
                    Some(t) => link.send_tracked(&msg, t),
                    None => link.send(&msg),
                };
                if sent.is_err() {
                    // The close callback fails the other in-flight
                    // requests; this one was never handed to the link.
                    return Err(());
                }
                Ok(())
            }
            Some(BenefEntry::Dialing(q)) => {
                q.push(msg);
                Ok(())
            }
            None => {
                benefs.insert(node, BenefEntry::Dialing(vec![msg]));
                drop(benefs);
                let weak = Arc::downgrade(&self.inner);
                rt.handle().spawn_blocking(move |_| {
                    if let Some(inner) = weak.upgrade() {
                        dial_benefactor(&Grid { inner }, node);
                    }
                });
                Ok(())
            }
        }
    }

    fn resolve(&self, node: NodeId) -> Result<String, GridError> {
        if let Some(a) = self.inner.addr_cache.lock().get(&node) {
            return Ok(a.clone());
        }
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::ResolveNodes {
                req,
                nodes: vec![node],
            },
        )?;
        let Msg::NodeAddrsReply { addrs, .. } = reply else {
            return Err(GridError::Protocol("bad resolve reply".into()));
        };
        let Some((_, addr)) = addrs.into_iter().next() else {
            return Err(GridError::Remote {
                code: ErrorCode::NotFound,
                detail: format!("no address for {node}"),
            });
        };
        self.inner.addr_cache.lock().insert(node, addr.clone());
        Ok(addr)
    }
}

/// Sends the client Hello on a freshly dialed bootstrap stream.
fn write_hello(stream: &std::net::TcpStream) -> Result<(), GridError> {
    stdchk_proto::frame::write_frame(
        &mut &*stream,
        &Msg::Hello {
            role: Role::Client,
            node: NodeId(0),
        },
    )?;
    Ok(())
}

/// Reads the manager's identity-assigning Hello reply, bounded by the
/// dial timeout so a silent manager cannot wedge the caller.
fn read_hello_reply(stream: &mut std::net::TcpStream) -> Result<NodeId, GridError> {
    // stdchk-allow(no-blocking-on-pump): bounded handshake read on the caller's thread, before the socket joins the reactor
    match read_frame_timeout(stream, DIAL_TIMEOUT) {
        Ok(Some(Msg::Hello { node, .. })) => Ok(node),
        Ok(other) => Err(GridError::Protocol(format!(
            "expected Hello from manager, got {other:?}"
        ))),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(GridError::Timeout)
        }
        Err(e) => Err(e.into()),
    }
}

/// Dispatches a correlated reply to its route.
fn deliver_reply(grid: &Grid, msg: Msg) {
    let Some(req) = msg.request_id() else { return };
    let route = grid.inner.routes.lock().remove(&req);
    match route {
        Some(Route::Rpc(tx)) => {
            let _ = tx.send(msg);
        }
        Some(Route::Session { slot, .. }) => slot.deliver(grid, msg),
        None => {}
    }
}

/// [`deliver_reply`] for the threaded manager reader: session deliveries
/// go to the dispatcher thread instead of running inline, because the
/// resulting pump may block on a manager RPC whose reply only the reader
/// can deliver.
fn deliver_reply_offloaded(
    grid: &Grid,
    msg: Msg,
    dispatch: &channel::Sender<(Arc<dyn SessionSlot>, Msg)>,
) {
    let Some(req) = msg.request_id() else { return };
    let route = grid.inner.routes.lock().remove(&req);
    match route {
        Some(Route::Rpc(tx)) => {
            let _ = tx.send(msg);
        }
        Some(Route::Session { slot, .. }) => {
            let _ = dispatch.send((slot, msg));
        }
        None => {}
    }
}

/// A benefactor connection died: drop it from the registries and fail every
/// session request that was in flight on it, so reads and writes fail over
/// to other replicas promptly instead of waiting out their deadlines.
fn on_benefactor_conn_down(grid: &Grid, node: NodeId) {
    grid.inner.benefs.lock().remove(&node);
    // The node may come back on a different port after a restart.
    grid.inner.addr_cache.lock().remove(&node);
    let stranded: Vec<(RequestId, Arc<dyn SessionSlot>)> = {
        let mut routes = grid.inner.routes.lock();
        let reqs: Vec<RequestId> = routes
            .iter()
            .filter(|(_, r)| matches!(r, Route::Session { to, .. } if *to == node))
            .map(|(req, _)| *req)
            .collect();
        reqs.into_iter()
            .filter_map(|req| match routes.remove(&req) {
                Some(Route::Session { slot, .. }) => Some((req, slot)),
                _ => None,
            })
            .collect()
    };
    for (req, slot) in stranded {
        slot.fail(grid, req);
    }
}

/// The manager connection died (reactor backend): fail every in-flight
/// manager request. RPC waiters see their channel close (surfacing as a
/// timeout-class error immediately); sessions get `SendFailed`.
fn on_manager_conn_down(grid: &Grid) {
    let stranded: Vec<(RequestId, Route)> = {
        let mut routes = grid.inner.routes.lock();
        let reqs: Vec<RequestId> = routes
            .iter()
            .filter(|(_, r)| match r {
                Route::Rpc(_) => true,
                Route::Session { to, .. } => *to == MANAGER_NODE,
            })
            .map(|(req, _)| *req)
            .collect();
        reqs.into_iter()
            .filter_map(|req| routes.remove(&req).map(|r| (req, r)))
            .collect()
    };
    for (req, route) in stranded {
        match route {
            // Dropping the sender wakes the blocked RPC immediately.
            Route::Rpc(tx) => drop(tx),
            Route::Session { slot, .. } => slot.fail(grid, req),
        }
    }
}

/// A tracked frame fully left this host (reactor backend): deliver the
/// `SendDone` that ends the session's transmit window. The route stays —
/// the reply is still outstanding.
fn on_frame_sent(grid: &Grid, req: RequestId) {
    let slot = {
        let routes = grid.inner.routes.lock();
        match routes.get(&req) {
            Some(Route::Session { slot, .. }) => Some(Arc::clone(slot)),
            _ => None,
        }
    };
    if let Some(slot) = slot {
        slot.sent(grid, req);
    }
}

/// Blocking-lane job: resolve + dial + handshake one benefactor
/// connection, then flush the sends that queued while dialing.
fn dial_benefactor(grid: &Grid, node: NodeId) {
    let ClientBackend::Reactor { rt, .. } = &grid.inner.backend else {
        return;
    };
    let established: Result<Link, GridError> = (|| {
        let addr = grid.resolve(node)?;
        // stdchk-allow(no-blocking-on-pump): blocking-lane job: benefactor dials run off-pump with sends queued meanwhile
        let stream = dial(&addr, DIAL_TIMEOUT)?;
        let token = rt.register(&Arc::downgrade(&grid.inner), ConnKind::Benef(node), stream)?;
        let link = Link::Event {
            handle: rt.handle().downgrade(),
            token,
        };
        link.send(&Msg::Hello {
            role: Role::Client,
            node: grid.inner.my_node,
        })?;
        Ok(link)
    })();
    match established {
        Ok(link) => {
            let queued = {
                let mut benefs = grid.inner.benefs.lock();
                match benefs.insert(node, BenefEntry::Up(link.clone())) {
                    Some(BenefEntry::Dialing(q)) => q,
                    _ => Vec::new(),
                }
            };
            for msg in queued {
                let req = msg.request_id();
                let sent = match req {
                    Some(r) => link.send_tracked(&msg, r.0),
                    None => link.send(&msg),
                };
                if sent.is_err() {
                    // Connection died mid-flush: the close callback fails
                    // the remaining in-flight requests; fail this one
                    // explicitly in case its route was just added. (The
                    // route is taken in its own statement so the lock is
                    // released before `fail` pumps the session.)
                    if let Some(r) = req {
                        let route = grid.inner.routes.lock().remove(&r);
                        if let Some(Route::Session { slot, .. }) = route {
                            slot.fail(grid, r);
                        }
                    }
                }
            }
        }
        Err(_) => {
            // Dial failed: drop the entry and fail everything queued, so
            // sessions fail over instead of waiting out deadlines.
            let queued = match grid.inner.benefs.lock().remove(&node) {
                Some(BenefEntry::Dialing(q)) => q,
                _ => Vec::new(),
            };
            grid.inner.addr_cache.lock().remove(&node);
            for msg in queued {
                if let Some(req) = msg.request_id() {
                    // Take the route in its own statement: the lock must
                    // drop before `fail` pumps the session (which inserts
                    // new routes for the failover sends).
                    let route = grid.inner.routes.lock().remove(&req);
                    if let Some(Route::Session { slot, .. }) = route {
                        slot.fail(grid, req);
                    }
                }
            }
        }
    }
}

/// The generic session pump: drains `poll_action()` in batches and executes
/// each unified action — sends over the manager or benefactor sockets with
/// reply routing, stage I/O against the spill file — feeding completions
/// straight back. Identical code drives write and read sessions.
fn pump_session<N: Node + Send + 'static>(grid: &Grid, shared: &Arc<SessionShared<N>>) {
    loop {
        let mut batch = Vec::new();
        {
            let mut s = shared.session.lock();
            while batch.len() < ACTION_BATCH {
                match s.poll_action() {
                    Some(a) => batch.push(a),
                    None => break,
                }
            }
        }
        if batch.is_empty() {
            return;
        }
        for action in batch {
            let completion = match action {
                Action::Send { to, msg } => {
                    let req = msg.request_id();
                    if let Some(req) = req {
                        grid.inner.routes.lock().insert(
                            req,
                            Route::Session {
                                slot: Arc::clone(shared) as Arc<dyn SessionSlot>,
                                to,
                            },
                        );
                    }
                    match &grid.inner.backend {
                        ClientBackend::Threaded => {
                            // Blocking transport: the send completing IS
                            // the frame leaving this host.
                            let ok = if to == MANAGER_NODE {
                                grid.inner.mgr.send(&msg).is_ok()
                            } else {
                                grid.benefactor_conn(to)
                                    .and_then(|c| c.send(&msg).map_err(GridError::from))
                                    .is_ok()
                            };
                            match (req, ok) {
                                (Some(req), true) => Some(Completion::SendDone { req }),
                                (Some(req), false) => {
                                    grid.inner.routes.lock().remove(&req);
                                    Some(Completion::SendFailed { req })
                                }
                                (None, _) => None,
                            }
                        }
                        ClientBackend::Reactor { .. } => {
                            // Nonblocking transport: `SendDone` arrives via
                            // `on_sent` when the frame's last byte is
                            // written; dial-in-flight sends queue.
                            let ok = if to == MANAGER_NODE {
                                match req {
                                    Some(r) => grid.inner.mgr.send_tracked(&msg, r.0).is_ok(),
                                    None => grid.inner.mgr.send(&msg).is_ok(),
                                }
                            } else {
                                grid.send_event(to, msg, req).is_ok()
                            };
                            match (req, ok) {
                                (Some(req), false) => {
                                    grid.inner.routes.lock().remove(&req);
                                    Some(Completion::SendFailed { req })
                                }
                                _ => None,
                            }
                        }
                    }
                }
                Action::StageAppend {
                    op,
                    offset,
                    payload,
                } => stage_write(shared, offset, &payload.bytes())
                    .is_ok()
                    .then_some(Completion::StageAppended { op }),
                Action::StageFetch { op, offset, len } => stage_read(shared, offset, len as usize)
                    .ok()
                    .map(|data| Completion::StageFetched {
                        op,
                        payload: Payload::Real(data.into()),
                    }),
                Action::StageDiscard { .. } => None,
                other => unreachable!("client sessions never emit {other:?}"),
            };
            if let Some(c) = completion {
                let now = grid.inner.clock.now();
                let mut s = shared.session.lock();
                s.handle_completion(c, now);
                shared.cv.notify_all();
            }
        }
    }
}

fn stage_write<N>(shared: &Arc<SessionShared<N>>, offset: u64, data: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let mut guard = shared.stage.lock();
    if guard.is_none() {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&shared.stage_path)?;
        *guard = Some(f);
    }
    let f = guard.as_mut().expect("just created");
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(data)
}

fn stage_read<N>(shared: &Arc<SessionShared<N>>, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    use std::io::{Seek, SeekFrom};
    let mut guard = shared.stage.lock();
    let f = guard
        .as_mut()
        .ok_or_else(|| io::Error::other("stage not created"))?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

// ------------------------------------------------------------------- write

/// A write session handle. Write data with [`std::io::Write`], then call
/// [`WriteHandle::finish`] to commit (session semantics: nothing is visible
/// until the commit).
pub struct WriteHandle {
    grid: Grid,
    shared: Arc<SessionShared<WriteSession>>,
    /// Pool path being written: keys the grid's signature cache so the
    /// next version of the same file can delta against this one.
    path: String,
    finished: bool,
}

impl fmt::Debug for WriteHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteHandle").finish_non_exhaustive()
    }
}

impl Write for WriteHandle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Respect session backpressure (the SW buffer / IW temp pipeline).
        let n;
        {
            let mut s = self.shared.session.lock();
            loop {
                match s.state() {
                    SessionState::Failed(code) => {
                        return Err(io::Error::other(GridError::SessionFailed(code)))
                    }
                    SessionState::Open => {}
                    _ => return Err(io::Error::other("write after close")),
                }
                let w = s.writable();
                if w > 0 {
                    n = (buf.len() as u64).min(w) as usize;
                    break;
                }
                self.shared.cv.wait(&mut s);
            }
            s.write(
                Payload::real(buf[..n].to_vec()),
                self.grid.inner.clock.now(),
            );
        }
        pump_session(&self.grid, &self.shared);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl WriteHandle {
    /// Nonblocking write for event-driven drivers: accepts at most what
    /// the session window allows right now and returns `Ok(0)` instead of
    /// waiting when the window is full (retry after the transport makes
    /// progress). This is what lets one thread drive hundreds of
    /// concurrent sessions.
    ///
    /// # Errors
    ///
    /// [`GridError::SessionFailed`] if the session already failed; an
    /// error on write-after-close.
    pub fn poll_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n;
        {
            let mut s = self.shared.session.lock();
            match s.state() {
                SessionState::Failed(code) => {
                    return Err(io::Error::other(GridError::SessionFailed(code)))
                }
                SessionState::Open => {}
                _ => return Err(io::Error::other("write after close")),
            }
            let w = s.writable();
            if w == 0 {
                return Ok(0);
            }
            n = (buf.len() as u64).min(w) as usize;
            s.write(
                Payload::real(buf[..n].to_vec()),
                self.grid.inner.clock.now(),
            );
        }
        pump_session(&self.grid, &self.shared);
        Ok(n)
    }

    /// Starts the session-semantics commit without blocking; poll
    /// [`WriteHandle::try_finish`] for the outcome. Idempotent.
    pub fn start_close(&mut self) {
        let closed = {
            let mut s = self.shared.session.lock();
            if s.state() == SessionState::Open {
                s.close(self.grid.inner.clock.now());
                true
            } else {
                false
            }
        };
        if closed {
            pump_session(&self.grid, &self.shared);
        }
    }

    /// Polls a closing session ([`WriteHandle::start_close`]) for its
    /// final outcome: `None` while the commit is still in flight.
    pub fn try_finish(&mut self) -> Option<Result<WriteStats, GridError>> {
        pump_session(&self.grid, &self.shared);
        let result = {
            let s = self.shared.session.lock();
            match s.state() {
                SessionState::Done => Some(Ok(s.stats())),
                SessionState::Failed(code) => Some(Err(GridError::SessionFailed(code))),
                _ => None,
            }
        };
        if let Some(outcome) = &result {
            self.finished = true;
            if outcome.is_ok() {
                self.harvest_signatures();
            }
            let _ = std::fs::remove_file(&self.shared.stage_path);
        }
        result
    }

    /// Banks this session's chunk signatures in the grid's per-path cache:
    /// the delta bases for the next write of the same path. Merged over
    /// older entries — a base pruned from the pool only costs a fallback
    /// to full transfer, never correctness.
    fn harvest_signatures(&self) {
        let (sigs, homes) = {
            let mut s = self.shared.session.lock();
            (s.take_signatures(), s.shipped_placements())
        };
        if sigs.is_empty() {
            return;
        }
        let mut cache = self.grid.inner.signatures.lock();
        let bases = cache.entry(self.path.clone()).or_default();
        bases.sigs.extend(sigs);
        bases.homes.extend(homes);
    }

    /// Closes the file: drains data, commits the chunk-map, and returns the
    /// session metrics. Blocks until the commit acknowledges (for
    /// pessimistic sessions this includes reaching the replication target).
    ///
    /// # Errors
    ///
    /// [`GridError::SessionFailed`] if any chunk could not be stored.
    pub fn finish(mut self) -> Result<WriteStats, GridError> {
        self.finished = true;
        self.shared
            .session
            .lock()
            .close(self.grid.inner.clock.now());
        pump_session(&self.grid, &self.shared);
        let deadline = std::time::Instant::now() + self.grid.inner.timeout;
        let mut s = self.shared.session.lock();
        loop {
            match s.state() {
                SessionState::Done => {
                    let stats = s.stats();
                    drop(s);
                    self.harvest_signatures();
                    let _ = std::fs::remove_file(&self.shared.stage_path);
                    return Ok(stats);
                }
                SessionState::Failed(code) => return Err(GridError::SessionFailed(code)),
                _ => {}
            }
            if std::time::Instant::now() > deadline {
                return Err(GridError::Timeout);
            }
            self.shared.cv.wait_for(&mut s, Duration::from_millis(100));
        }
    }
}

impl Drop for WriteHandle {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned write: release the reservation; GC reclaims chunks.
            let closed = {
                let mut s = self.shared.session.lock();
                if s.state() == SessionState::Open {
                    s.close(self.grid.inner.clock.now());
                    true
                } else {
                    false
                }
            };
            // Best effort: we do not wait for completion.
            if closed {
                pump_session(&self.grid, &self.shared);
            }
            let _ = std::fs::remove_file(&self.shared.stage_path);
        }
    }
}

// -------------------------------------------------------------------- read

/// A read handle over one committed version.
pub struct ReadHandle {
    grid: Grid,
    shared: Arc<SessionShared<ReadSession>>,
    buffer: Vec<u8>,
    buffer_pos: usize,
}

impl fmt::Debug for ReadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadHandle").finish_non_exhaustive()
    }
}

impl ReadHandle {
    /// Total size of the version being read.
    pub fn file_size(&self) -> u64 {
        self.shared.session.lock().file_size()
    }

    /// Reads the whole file to a vector.
    ///
    /// # Errors
    ///
    /// Propagates transport/corruption failures.
    pub fn read_all(mut self) -> Result<Vec<u8>, GridError> {
        let mut out = Vec::with_capacity(self.file_size() as usize);
        io::Read::read_to_end(&mut self, &mut out)?;
        Ok(out)
    }
}

impl Read for ReadHandle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            // Serve buffered bytes first.
            if self.buffer_pos < self.buffer.len() {
                let n = (self.buffer.len() - self.buffer_pos).min(buf.len());
                buf[..n].copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + n]);
                self.buffer_pos += n;
                return Ok(n);
            }
            let deadline = std::time::Instant::now() + self.grid.inner.timeout;
            {
                let mut s = self.shared.session.lock();
                loop {
                    if let Some((_, payload)) = s.next_ready() {
                        self.buffer = payload.bytes().to_vec();
                        self.buffer_pos = 0;
                        break;
                    }
                    match s.state() {
                        ReadState::Done => return Ok(0),
                        ReadState::Failed(code) => {
                            return Err(io::Error::other(GridError::Remote {
                                code,
                                detail: "chunk unavailable on every replica".into(),
                            }))
                        }
                        ReadState::Active => {}
                    }
                    if std::time::Instant::now() > deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read stalled"));
                    }
                    self.shared.cv.wait_for(&mut s, Duration::from_millis(100));
                }
            }
            // Delivering freed a window slot: refill the read-ahead.
            pump_session(&self.grid, &self.shared);
            if self.buffer.is_empty() {
                continue;
            }
        }
    }
}
