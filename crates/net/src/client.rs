//! The stdchk client: a blocking API over the session state machines.
//!
//! [`Grid`] is the entry point — connect to a manager, then:
//!
//! - [`Grid::create`] opens a [`WriteHandle`] implementing
//!   [`std::io::Write`]; `finish()` performs the session-semantics commit
//!   (data is invisible until then).
//! - [`Grid::open`] returns a [`ReadHandle`] implementing
//!   [`std::io::Read`], with read-ahead and replica failover.
//! - Metadata operations: [`Grid::stat`], [`Grid::list`],
//!   [`Grid::versions`], [`Grid::delete`], [`Grid::set_policy`].
//!
//! Both handle kinds drive their sans-IO sessions through the unified
//! [`Node`] API: one generic pump (`pump_session`) drains
//! `poll_action()`, executes sends over TCP and stage I/O against a spill
//! file, and feeds [`Completion`]s back. The write path and the read path
//! differ only in which session type sits behind the pump.
//!
//! All dials use connect timeouts and streams carry write timeouts
//! ([`crate::conn::dial`]), so a dead manager or benefactor fails fast
//! instead of hanging a client thread.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel;
use parking_lot::{Condvar, Mutex};

use stdchk_core::node::{Action, Completion, Node};
use stdchk_core::payload::Payload;
use stdchk_core::session::read::{ReadSession, ReadState};
use stdchk_core::session::write::{
    OpenGrant, SessionConfig, SessionState, WriteSession, WriteStats,
};
use stdchk_core::MANAGER_NODE;
use stdchk_proto::ids::{NodeId, RequestId, VersionId};
use stdchk_proto::msg::{DirEntry, FileAttr, Msg, Role, VersionInfo};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::ErrorCode;

use crate::conn::{dial, read_frame_timeout, read_loop, Clock, Sender, DIAL_TIMEOUT};
use crate::driver::ACTION_BATCH;

/// Client-side errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum GridError {
    /// Socket or file I/O failure.
    Io(io::Error),
    /// The remote side reported a semantic error.
    Remote {
        /// Status code.
        code: ErrorCode,
        /// Context from the remote.
        detail: String,
    },
    /// No reply within the client timeout.
    Timeout,
    /// The write session failed mid-flight.
    SessionFailed(ErrorCode),
    /// Unexpected protocol behaviour.
    Protocol(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "i/o failure: {e}"),
            GridError::Remote { code, detail } => write!(f, "remote error: {code}: {detail}"),
            GridError::Timeout => write!(f, "request timed out"),
            GridError::SessionFailed(code) => write!(f, "write session failed: {code}"),
            GridError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<io::Error> for GridError {
    fn from(e: io::Error) -> Self {
        GridError::Io(e)
    }
}

/// Shared state of one client-side session (write or read): the sans-IO
/// machine, a wait condition for blocking callers, and the stage spill file
/// (used by staged write protocols; inert for reads).
struct SessionShared<N> {
    session: Mutex<N>,
    cv: Condvar,
    stage: Mutex<Option<std::fs::File>>,
    stage_path: PathBuf,
}

impl<N> SessionShared<N> {
    fn new(session: N, stage_path: PathBuf) -> Arc<SessionShared<N>> {
        Arc::new(SessionShared {
            session: Mutex::new(session),
            cv: Condvar::new(),
            stage: Mutex::new(None),
            stage_path,
        })
    }
}

/// Type-erased handle so one reply router serves every session kind.
trait SessionSlot: Send + Sync {
    /// Feeds a correlated reply into the session and pumps its actions.
    fn deliver(self: Arc<Self>, grid: &Grid, msg: Msg);

    /// Reports a transport failure for an outstanding request (the
    /// connection it was sent on died), letting the session fail over.
    fn fail(self: Arc<Self>, grid: &Grid, req: RequestId);
}

impl<N: Node + Send + 'static> SessionSlot for SessionShared<N> {
    fn deliver(self: Arc<Self>, grid: &Grid, msg: Msg) {
        {
            let mut s = self.session.lock();
            s.handle(MANAGER_NODE, msg, grid.inner.clock.now());
            self.cv.notify_all();
        }
        pump_session(grid, &self);
    }

    fn fail(self: Arc<Self>, grid: &Grid, req: RequestId) {
        {
            let mut s = self.session.lock();
            s.handle_completion(Completion::SendFailed { req }, grid.inner.clock.now());
            self.cv.notify_all();
        }
        pump_session(grid, &self);
    }
}

/// Where a correlated reply should be delivered.
enum Route {
    Rpc(channel::Sender<Msg>),
    Session {
        slot: Arc<dyn SessionSlot>,
        /// Destination the request was sent to — when that connection
        /// dies, the request is failed over instead of stalling.
        to: NodeId,
    },
}

struct GridInner {
    clock: Clock,
    mgr: Sender,
    my_node: NodeId,
    next_req: AtomicU64,
    next_sid: AtomicU64,
    routes: Mutex<HashMap<RequestId, Route>>,
    benefs: Mutex<HashMap<NodeId, Sender>>,
    addr_cache: Mutex<HashMap<NodeId, String>>,
    timeout: Duration,
    stage_dir: PathBuf,
}

/// A connection to a stdchk pool.
#[derive(Clone)]
pub struct Grid {
    inner: Arc<GridInner>,
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid")
            .field("node", &self.inner.my_node)
            .finish_non_exhaustive()
    }
}

/// Options for a write session.
#[derive(Clone, Debug)]
pub struct WriteOptions {
    /// Protocol, dedup, semantics.
    pub session: SessionConfig,
    /// Stripe width (0 = pool default).
    pub stripe_width: u32,
    /// Replica target (0 = pool default).
    pub replication: u32,
    /// Initial eager reservation in chunks.
    pub expected_chunks: u32,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            session: SessionConfig::default(),
            stripe_width: 0,
            replication: 0,
            expected_chunks: 16,
        }
    }
}

impl Grid {
    /// Connects to the manager at `addr`, failing fast (connect and
    /// handshake-read timeouts) when the manager is dead.
    ///
    /// # Errors
    ///
    /// Fails on dial/handshake problems; [`GridError::Timeout`] when the
    /// manager accepts but never answers the handshake.
    pub fn connect(addr: &str) -> Result<Grid, GridError> {
        let stream = dial(addr, DIAL_TIMEOUT)?;
        let sender = Sender::new(stream.try_clone()?);
        sender.send(&Msg::Hello {
            role: Role::Client,
            node: NodeId(0),
        })?;
        // The manager assigns our pool identity in its Hello reply; a
        // silent peer times out instead of wedging the caller.
        let mut reader = sender.reader()?;
        let my_node = match read_frame_timeout(&mut reader, DIAL_TIMEOUT) {
            Ok(Some(Msg::Hello { node, .. })) => node,
            Ok(other) => {
                return Err(GridError::Protocol(format!(
                    "expected Hello from manager, got {other:?}"
                )))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(GridError::Timeout)
            }
            Err(e) => return Err(e.into()),
        };
        let inner = Arc::new(GridInner {
            clock: Clock::new(),
            mgr: sender,
            my_node,
            next_req: AtomicU64::new(1),
            next_sid: AtomicU64::new(1),
            routes: Mutex::new(HashMap::new()),
            benefs: Mutex::new(HashMap::new()),
            addr_cache: Mutex::new(HashMap::new()),
            timeout: Duration::from_secs(10),
            stage_dir: std::env::temp_dir(),
        });
        // Manager reply pump.
        {
            let inner2 = Arc::clone(&inner);
            thread::Builder::new()
                .name("stdchk-grid-mgr".into())
                .spawn(move || {
                    let grid = Grid { inner: inner2 };
                    read_loop(reader, move |msg| deliver_reply(&grid, msg));
                })
                .expect("spawn grid reader");
        }
        Ok(Grid { inner })
    }

    /// The node id the manager assigned this client.
    pub fn node_id(&self) -> NodeId {
        self.inner.my_node
    }

    fn req(&self) -> RequestId {
        RequestId(self.inner.next_req.fetch_add(1, Ordering::Relaxed))
    }

    /// One blocking manager RPC.
    fn rpc(&self, req: RequestId, msg: Msg) -> Result<Msg, GridError> {
        let (tx, rx) = channel::bounded(1);
        self.inner.routes.lock().insert(req, Route::Rpc(tx));
        if let Err(e) = self.inner.mgr.send(&msg) {
            self.inner.routes.lock().remove(&req);
            return Err(e.into());
        }
        match rx.recv_timeout(self.inner.timeout) {
            Ok(Msg::ErrorReply { code, detail, .. }) => Err(GridError::Remote { code, detail }),
            Ok(m) => Ok(m),
            Err(_) => {
                self.inner.routes.lock().remove(&req);
                Err(GridError::Timeout)
            }
        }
    }

    /// Stats a file or directory.
    ///
    /// # Errors
    ///
    /// [`GridError::Remote`] with [`ErrorCode::NotFound`] for absent paths.
    pub fn stat(&self, path: &str) -> Result<FileAttr, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::GetAttr {
                req,
                path: path.into(),
            },
        )? {
            Msg::AttrReply { attr, .. } => Ok(attr),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::ListDir {
                req,
                path: path.into(),
            },
        )? {
            Msg::DirListingReply { entries, .. } => Ok(entries),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Lists the retained versions of a file, oldest first.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn versions(&self, path: &str) -> Result<Vec<VersionInfo>, GridError> {
        let req = self.req();
        match self.rpc(
            req,
            Msg::ListVersions {
                req,
                path: path.into(),
            },
        )? {
            Msg::VersionListReply { versions, .. } => Ok(versions),
            m => Err(GridError::Protocol(format!("unexpected reply {m:?}"))),
        }
    }

    /// Deletes a file (all versions).
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn delete(&self, path: &str) -> Result<(), GridError> {
        let req = self.req();
        self.rpc(
            req,
            Msg::DeleteFile {
                req,
                path: path.into(),
            },
        )?;
        Ok(())
    }

    /// Sets the retention policy of a directory.
    ///
    /// # Errors
    ///
    /// See [`Grid::stat`].
    pub fn set_policy(&self, dir: &str, policy: RetentionPolicy) -> Result<(), GridError> {
        let req = self.req();
        self.rpc(
            req,
            Msg::SetPolicy {
                req,
                dir: dir.into(),
                policy,
            },
        )?;
        Ok(())
    }

    /// Opens a write session on `path`.
    ///
    /// # Errors
    ///
    /// [`GridError::Remote`] with [`ErrorCode::NoSpace`] if the pool cannot
    /// host the write.
    pub fn create(&self, path: &str, opts: WriteOptions) -> Result<WriteHandle, GridError> {
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::CreateFile {
                req,
                client: self.inner.my_node,
                path: path.into(),
                stripe_width: opts.stripe_width,
                replication: opts.replication,
                expected_chunks: opts.expected_chunks,
            },
        )?;
        let Msg::CreateFileOk {
            file,
            version,
            reservation,
            stripe,
            prev_chunks,
            chunk_size,
            ..
        } = reply
        else {
            return Err(GridError::Protocol("bad CreateFile reply".into()));
        };
        let grant = OpenGrant {
            path: path.to_string(),
            file,
            version,
            reservation,
            stripe,
            prev_chunks,
            chunk_size,
            reserved_chunks: opts.expected_chunks.max(1) as u64,
        };
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        let session = WriteSession::new(
            sid,
            self.inner.my_node,
            grant,
            opts.session,
            self.inner.clock.now(),
        );
        let stage_path = self
            .inner
            .stage_dir
            .join(format!("stdchk-stage-{}-{sid}", std::process::id()));
        Ok(WriteHandle {
            grid: self.clone(),
            shared: SessionShared::new(session, stage_path),
            finished: false,
        })
    }

    /// Opens the latest committed version (or `version`) of `path` for
    /// reading.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NotFound`] if nothing is committed at `path`.
    pub fn open(&self, path: &str, version: Option<VersionId>) -> Result<ReadHandle, GridError> {
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::GetFile {
                req,
                path: path.into(),
                version,
            },
        )?;
        let Msg::FileViewReply { view, .. } = reply else {
            return Err(GridError::Protocol("bad GetFile reply".into()));
        };
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        let session = ReadSession::new(sid, view, 4, true);
        let shared = SessionShared::new(session, PathBuf::new());
        let handle = ReadHandle {
            grid: self.clone(),
            shared,
            buffer: Vec::new(),
            buffer_pos: 0,
        };
        // Prime the read-ahead window (poll_action fills it lazily).
        pump_session(&handle.grid, &handle.shared);
        Ok(handle)
    }

    // -------------------------------------------------------- benefactor IO

    fn benefactor_conn(&self, node: NodeId) -> Result<Sender, GridError> {
        if let Some(s) = self.inner.benefs.lock().get(&node) {
            return Ok(s.clone());
        }
        let addr = self.resolve(node)?;
        let stream = dial(&addr, DIAL_TIMEOUT)?;
        let sender = Sender::new(stream.try_clone()?);
        sender.send(&Msg::Hello {
            role: Role::Client,
            node: self.inner.my_node,
        })?;
        let reader = sender.reader()?;
        let inner2 = Arc::clone(&self.inner);
        thread::Builder::new()
            .name("stdchk-grid-benef".into())
            .spawn(move || {
                let grid = Grid { inner: inner2 };
                read_loop(reader, |msg| deliver_reply(&grid, msg));
                // EOF or error: the benefactor is gone. Fail everything in
                // flight on this connection so sessions retry elsewhere.
                on_benefactor_conn_down(&grid, node);
            })
            .expect("spawn benef reader");
        self.inner.benefs.lock().insert(node, sender.clone());
        Ok(sender)
    }

    fn resolve(&self, node: NodeId) -> Result<String, GridError> {
        if let Some(a) = self.inner.addr_cache.lock().get(&node) {
            return Ok(a.clone());
        }
        let req = self.req();
        let reply = self.rpc(
            req,
            Msg::ResolveNodes {
                req,
                nodes: vec![node],
            },
        )?;
        let Msg::NodeAddrsReply { addrs, .. } = reply else {
            return Err(GridError::Protocol("bad resolve reply".into()));
        };
        let Some((_, addr)) = addrs.into_iter().next() else {
            return Err(GridError::Remote {
                code: ErrorCode::NotFound,
                detail: format!("no address for {node}"),
            });
        };
        self.inner.addr_cache.lock().insert(node, addr.clone());
        Ok(addr)
    }
}

/// Dispatches a correlated reply to its route.
fn deliver_reply(grid: &Grid, msg: Msg) {
    let Some(req) = msg.request_id() else { return };
    let route = grid.inner.routes.lock().remove(&req);
    match route {
        Some(Route::Rpc(tx)) => {
            let _ = tx.send(msg);
        }
        Some(Route::Session { slot, .. }) => slot.deliver(grid, msg),
        None => {}
    }
}

/// A benefactor connection died: drop it from the registries and fail every
/// session request that was in flight on it, so reads and writes fail over
/// to other replicas promptly instead of waiting out their deadlines.
fn on_benefactor_conn_down(grid: &Grid, node: NodeId) {
    grid.inner.benefs.lock().remove(&node);
    // The node may come back on a different port after a restart.
    grid.inner.addr_cache.lock().remove(&node);
    let stranded: Vec<(RequestId, Arc<dyn SessionSlot>)> = {
        let mut routes = grid.inner.routes.lock();
        let reqs: Vec<RequestId> = routes
            .iter()
            .filter(|(_, r)| matches!(r, Route::Session { to, .. } if *to == node))
            .map(|(req, _)| *req)
            .collect();
        reqs.into_iter()
            .filter_map(|req| match routes.remove(&req) {
                Some(Route::Session { slot, .. }) => Some((req, slot)),
                _ => None,
            })
            .collect()
    };
    for (req, slot) in stranded {
        slot.fail(grid, req);
    }
}

/// The generic session pump: drains `poll_action()` in batches and executes
/// each unified action — sends over the manager or benefactor sockets with
/// reply routing, stage I/O against the spill file — feeding completions
/// straight back. Identical code drives write and read sessions.
fn pump_session<N: Node + Send + 'static>(grid: &Grid, shared: &Arc<SessionShared<N>>) {
    loop {
        let mut batch = Vec::new();
        {
            let mut s = shared.session.lock();
            while batch.len() < ACTION_BATCH {
                match s.poll_action() {
                    Some(a) => batch.push(a),
                    None => break,
                }
            }
        }
        if batch.is_empty() {
            return;
        }
        for action in batch {
            let completion = match action {
                Action::Send { to, msg } => {
                    let req = msg.request_id();
                    if let Some(req) = req {
                        grid.inner.routes.lock().insert(
                            req,
                            Route::Session {
                                slot: Arc::clone(shared) as Arc<dyn SessionSlot>,
                                to,
                            },
                        );
                    }
                    let ok = if to == MANAGER_NODE {
                        grid.inner.mgr.send(&msg).is_ok()
                    } else {
                        grid.benefactor_conn(to)
                            .and_then(|c| c.send(&msg).map_err(GridError::from))
                            .is_ok()
                    };
                    match (req, ok) {
                        (Some(req), true) => Some(Completion::SendDone { req }),
                        (Some(req), false) => {
                            grid.inner.routes.lock().remove(&req);
                            Some(Completion::SendFailed { req })
                        }
                        (None, _) => None,
                    }
                }
                Action::StageAppend {
                    op,
                    offset,
                    payload,
                } => stage_write(shared, offset, &payload.bytes())
                    .is_ok()
                    .then_some(Completion::StageAppended { op }),
                Action::StageFetch { op, offset, len } => stage_read(shared, offset, len as usize)
                    .ok()
                    .map(|data| Completion::StageFetched {
                        op,
                        payload: Payload::Real(data.into()),
                    }),
                Action::StageDiscard { .. } => None,
                other => unreachable!("client sessions never emit {other:?}"),
            };
            if let Some(c) = completion {
                let now = grid.inner.clock.now();
                let mut s = shared.session.lock();
                s.handle_completion(c, now);
                shared.cv.notify_all();
            }
        }
    }
}

fn stage_write<N>(shared: &Arc<SessionShared<N>>, offset: u64, data: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let mut guard = shared.stage.lock();
    if guard.is_none() {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&shared.stage_path)?;
        *guard = Some(f);
    }
    let f = guard.as_mut().expect("just created");
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(data)
}

fn stage_read<N>(shared: &Arc<SessionShared<N>>, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    use std::io::{Seek, SeekFrom};
    let mut guard = shared.stage.lock();
    let f = guard
        .as_mut()
        .ok_or_else(|| io::Error::other("stage not created"))?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

// ------------------------------------------------------------------- write

/// A write session handle. Write data with [`std::io::Write`], then call
/// [`WriteHandle::finish`] to commit (session semantics: nothing is visible
/// until the commit).
pub struct WriteHandle {
    grid: Grid,
    shared: Arc<SessionShared<WriteSession>>,
    finished: bool,
}

impl fmt::Debug for WriteHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteHandle").finish_non_exhaustive()
    }
}

impl Write for WriteHandle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Respect session backpressure (the SW buffer / IW temp pipeline).
        let n;
        {
            let mut s = self.shared.session.lock();
            loop {
                match s.state() {
                    SessionState::Failed(code) => {
                        return Err(io::Error::other(GridError::SessionFailed(code)))
                    }
                    SessionState::Open => {}
                    _ => return Err(io::Error::other("write after close")),
                }
                let w = s.writable();
                if w > 0 {
                    n = (buf.len() as u64).min(w) as usize;
                    break;
                }
                self.shared.cv.wait(&mut s);
            }
            s.write(
                Payload::real(buf[..n].to_vec()),
                self.grid.inner.clock.now(),
            );
        }
        pump_session(&self.grid, &self.shared);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl WriteHandle {
    /// Closes the file: drains data, commits the chunk-map, and returns the
    /// session metrics. Blocks until the commit acknowledges (for
    /// pessimistic sessions this includes reaching the replication target).
    ///
    /// # Errors
    ///
    /// [`GridError::SessionFailed`] if any chunk could not be stored.
    pub fn finish(mut self) -> Result<WriteStats, GridError> {
        self.finished = true;
        self.shared
            .session
            .lock()
            .close(self.grid.inner.clock.now());
        pump_session(&self.grid, &self.shared);
        let deadline = std::time::Instant::now() + self.grid.inner.timeout;
        let mut s = self.shared.session.lock();
        loop {
            match s.state() {
                SessionState::Done => {
                    let stats = s.stats();
                    drop(s);
                    let _ = std::fs::remove_file(&self.shared.stage_path);
                    return Ok(stats);
                }
                SessionState::Failed(code) => return Err(GridError::SessionFailed(code)),
                _ => {}
            }
            if std::time::Instant::now() > deadline {
                return Err(GridError::Timeout);
            }
            self.shared.cv.wait_for(&mut s, Duration::from_millis(100));
        }
    }
}

impl Drop for WriteHandle {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned write: release the reservation; GC reclaims chunks.
            let closed = {
                let mut s = self.shared.session.lock();
                if s.state() == SessionState::Open {
                    s.close(self.grid.inner.clock.now());
                    true
                } else {
                    false
                }
            };
            // Best effort: we do not wait for completion.
            if closed {
                pump_session(&self.grid, &self.shared);
            }
            let _ = std::fs::remove_file(&self.shared.stage_path);
        }
    }
}

// -------------------------------------------------------------------- read

/// A read handle over one committed version.
pub struct ReadHandle {
    grid: Grid,
    shared: Arc<SessionShared<ReadSession>>,
    buffer: Vec<u8>,
    buffer_pos: usize,
}

impl fmt::Debug for ReadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadHandle").finish_non_exhaustive()
    }
}

impl ReadHandle {
    /// Total size of the version being read.
    pub fn file_size(&self) -> u64 {
        self.shared.session.lock().file_size()
    }

    /// Reads the whole file to a vector.
    ///
    /// # Errors
    ///
    /// Propagates transport/corruption failures.
    pub fn read_all(mut self) -> Result<Vec<u8>, GridError> {
        let mut out = Vec::with_capacity(self.file_size() as usize);
        io::Read::read_to_end(&mut self, &mut out)?;
        Ok(out)
    }
}

impl Read for ReadHandle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            // Serve buffered bytes first.
            if self.buffer_pos < self.buffer.len() {
                let n = (self.buffer.len() - self.buffer_pos).min(buf.len());
                buf[..n].copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + n]);
                self.buffer_pos += n;
                return Ok(n);
            }
            let deadline = std::time::Instant::now() + self.grid.inner.timeout;
            {
                let mut s = self.shared.session.lock();
                loop {
                    if let Some((_, payload)) = s.next_ready() {
                        self.buffer = payload.bytes().to_vec();
                        self.buffer_pos = 0;
                        break;
                    }
                    match s.state() {
                        ReadState::Done => return Ok(0),
                        ReadState::Failed(code) => {
                            return Err(io::Error::other(GridError::Remote {
                                code,
                                detail: "chunk unavailable on every replica".into(),
                            }))
                        }
                        ReadState::Active => {}
                    }
                    if std::time::Instant::now() > deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read stalled"));
                    }
                    self.shared.cv.wait_for(&mut s, Duration::from_millis(100));
                }
            }
            // Delivering freed a window slot: refill the read-ahead.
            pump_session(&self.grid, &self.shared);
            if self.buffer.is_empty() {
                continue;
            }
        }
    }
}
